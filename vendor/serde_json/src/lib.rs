//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders and parses JSON text against the in-workspace `serde`'s
//! [`Value`](serde::Value) tree.
//!
//! Covers what the workspace uses — [`to_string`], [`to_string_pretty`],
//! [`from_str`] — with RFC 8259 syntax: full string escapes (including
//! `\uXXXX` with surrogate pairs), exact integers, and `null` for
//! non-finite floats on output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Number, Serialize, Value};

pub use serde::Error;

/// Alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_json_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, level + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Rust's shortest round-trip formatting; force a `.0` on
            // integral floats so the value parses back as a float-looking
            // token (matches serde_json).
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        // JSON has no NaN/Infinity; serde_json emits null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::custom("invalid low surrogate"));
                        }
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(c).ok_or_else(|| Error::custom("invalid surrogate pair"))?
                    } else {
                        return Err(Error::custom("lone high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| Error::custom("invalid \\u escape"))?
                };
                out.push(c);
            }
            other => {
                return Err(Error::custom(format!(
                    "invalid escape `\\{}`",
                    other as char
                )))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(Number::U(1))),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(compact, r#"{"a":1,"b":[true,null]}"#);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"id":"fig00","x":[1.5,-2,1e3],"ok":true,"none":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get_field("id"), Some(&Value::Str("fig00".into())));
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\n\"quoted\"\t\\slash\u{1F600}\u{08}";
        let mut out = String::new();
        write_string(&mut out, original);
        let v = parse(&out).unwrap();
        assert_eq!(v, Value::Str(original.to_string()));
        // Explicit surrogate-pair escape decodes correctly.
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v, Value::Num(Number::U(big)));
        assert_eq!(parse("-42").unwrap(), Value::Num(Number::I(-42)));
    }

    #[test]
    fn floats_emit_decimal_point() {
        let mut out = String::new();
        write_number(&mut out, &Number::F(10.0));
        assert_eq!(out, "10.0");
        let mut out = String::new();
        write_number(&mut out, &Number::F(f64::NAN));
        assert_eq!(out, "null");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
    }
}
