//! Derive macros for the in-workspace `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the build
//! environment is offline), supporting exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields (any visibility, doc comments allowed);
//! * enums whose variants are unit or have named fields.
//!
//! Serialization follows serde's externally-tagged default: structs become
//! objects, unit variants become `"VariantName"` strings, and named-field
//! variants become `{"VariantName": {fields…}}` objects. Generics, tuple
//! structs, and container attributes are not supported and fail with a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under the derive.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant_name, named_fields)`; unit variants have no fields.
        variants: Vec<(String, Vec<String>)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`, incl. expanded doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the names of named fields inside a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("expected field name, found `{tt}`"));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Consume the type: everything until a `,` at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
    }
    Ok(fields)
}

/// Parse enum variants from a brace group's tokens.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<(String, Vec<String>)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("expected variant name, found `{tt}`"));
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push((name, parse_named_fields(&inner)?));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is not supported"));
            }
            _ => variants.push((name, Vec::new())),
        }
        // Skip an optional discriminant and the trailing comma.
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        return Err(format!("unit/tuple {kind} `{name}` is not supported"));
    };
    if g.delimiter() != Delimiter::Brace {
        return Err(format!("tuple {kind} `{name}` is not supported"));
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    Ok(if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_named_fields(&inner)?,
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(&inner)?,
        }
    })
}

/// Derive `serde::Serialize` (JSON-value form; see the crate docs for the
/// supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&format!("#[derive(Serialize)]: {e}")),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n")
                    } else {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "obj.push(({f:?}.to_string(), ::serde::Serialize::to_json_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Obj(vec![({v:?}.to_string(), ::serde::Value::Obj(obj))])\n\
                             }}\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize` (JSON-value form; see the crate docs for the
/// supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&format!("#[derive(Deserialize)]: {e}")),
    };
    let field_expr = |f: &str, ctx: &str| {
        format!(
            "{f}: ::serde::Deserialize::from_json_value(\
                 {ctx}.get_field({f:?}).ok_or_else(|| ::serde::Error::missing_field({f:?}))?\
             )?,\n"
        )
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields.iter().map(|f| field_expr(f, "v")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if !matches!(v, ::serde::Value::Obj(_)) {{\n\
                             return ::std::result::Result::Err(::serde::Error::expected(\"object\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields.iter().map(|f| field_expr(f, "inner")).collect();
                    format!("{v:?} => ::std::result::Result::Ok({name}::{v} {{\n{inits}\n}}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown unit variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::expected(\"externally tagged enum\", v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
