//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the subset of the criterion 0.5 API this workspace's benches
//! use — [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput::Elements`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a plain wall-clock harness:
//!
//! * each benchmark runs a short calibration pass, then `sample_size`
//!   timed samples;
//! * the report prints min / median / mean per-iteration time and, when a
//!   throughput was declared, median elements per second;
//! * there are no plots, no saved baselines, and no outlier analysis.
//!
//! Results are printed to stdout in a stable one-line-per-benchmark format
//! so they can be grepped or diffed across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. This harness runs one setup
/// per measured iteration regardless of the hint; the variants exist for
/// API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are small; many per batch in real criterion.
    SmallInput,
    /// Inputs are large; one per batch in real criterion.
    LargeInput,
    /// Inputs are per-iteration by construction.
    PerIteration,
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(name.as_ref(), None, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing throughput and sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once per invocation.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` value per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Target time for one measured sample. Samples shorter than this are run
/// for multiple iterations so timer resolution does not dominate.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // Calibrate: one iteration, then choose a per-sample iteration count
    // that reaches TARGET_SAMPLE (capped so slow benches still finish).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (median * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (median * 1e-9))
        }
        None => String::new(),
    };
    println!(
        "  {name:<40} min {:>12} median {:>12} mean {:>12}{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor_smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..100).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        group.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
