//! Shadow `UnsafeCell` whose accesses are vector-clock race-checked inside
//! a model. This is where the checker earns its keep: an access is legal
//! only if every conflicting access happens-before it, and happens-before
//! is only created by `Acquire`/`Release` edges, locks, spawn and join —
//! never by `Ordering::Relaxed`.

use crate::rt;

/// Shadow `UnsafeCell`. Unlike std's, access goes through [`Self::with`] /
/// [`Self::with_mut`] so the model can interpose a scheduling point and a
/// race check on every dereference.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    id: rt::ObjId,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: cross-thread access is the whole point of the shadow cell; the
// model verifies on every explored interleaving that all conflicting
// accesses are ordered by happens-before, and reports a data race (test
// failure) otherwise. That dynamic check is what stands in for the static
// guarantee these impls would normally require.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Shadow constructor.
    pub fn new(data: T) -> Self {
        Self {
            id: rt::ObjId::new(),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Immutable access. Races with any concurrent `with_mut` are reported.
    ///
    /// # Safety contract (mirrors `loom`)
    ///
    /// The pointer is valid for the duration of `f`; the caller must not
    /// let it escape.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some(ctx) = rt::ctx() {
            rt::cell_access(&ctx, &self.id, false);
        }
        f(self.data.get())
    }

    /// Mutable access. Races with any concurrent access are reported.
    ///
    /// # Safety contract (mirrors `loom`)
    ///
    /// The pointer is valid for the duration of `f`; the caller must not
    /// let it escape and must guarantee exclusivity (which the model
    /// verifies on every explored interleaving).
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some(ctx) = rt::ctx() {
            rt::cell_access(&ctx, &self.id, true);
        }
        f(self.data.get())
    }

    /// Consume the cell, returning the wrapped value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}
