//! Shadow `std::thread`: controlled inside a model, passthrough outside.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Shadow join handle. Inside a model, `join` blocks through the scheduler
/// and records the happens-before edge from the child's last operation.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        target: usize,
        result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    },
}

/// Shadow `thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::ctx() {
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some(ctx) => {
            let id = rt::register_thread(&ctx);
            let result = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let exec = Arc::clone(&ctx.exec);
            let handle = std::thread::Builder::new()
                .name(format!("loom-{id}"))
                .spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        rt::enter_thread(&exec, id);
                        f()
                    }));
                    if let Err(payload) = &out {
                        rt::record_failure(&exec, &**payload);
                    }
                    match slot.lock() {
                        Ok(mut g) => *g = Some(out),
                        Err(p) => *p.into_inner() = Some(out),
                    }
                    rt::exit_thread(&exec, id);
                })
                .expect("spawn loom shadow thread");
            match ctx.exec.handles.lock() {
                Ok(mut g) => g.push(handle),
                Err(p) => p.into_inner().push(handle),
            }
            JoinHandle {
                inner: Inner::Model { target: id, result },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Shadow `JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { target, result } => {
                let ctx = rt::ctx().expect("loom: joined a model thread outside the model");
                rt::join_thread(&ctx, target);
                let taken = match result.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                taken.expect("loom: joined thread left no result")
            }
        }
    }
}

/// Shadow `thread::yield_now`. Inside a model, a yielded thread is not
/// rescheduled while any other thread can run — this is what makes spin
/// loops explorable under a bounded scheduler.
pub fn yield_now() {
    match rt::ctx() {
        Some(ctx) => rt::yield_now(&ctx),
        None => std::thread::yield_now(),
    }
}
