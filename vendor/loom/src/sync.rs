//! Shadow `std::sync`: `Mutex`, `Condvar` and atomics that are scheduled
//! and happens-before-tracked inside a model, plain passthroughs outside.

use crate::rt;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    TryLockError,
};

pub use std::sync::Arc;

/// Shadow mutex. Inside a model the lock order is a scheduler decision and
/// the guard carries the releasing thread's vector clock.
pub struct Mutex<T> {
    pub(crate) id: rt::ObjId,
    data: StdMutex<T>,
}

/// Guard for [`Mutex`]. Dropping it releases the logical lock and wakes
/// blocked threads inside a model.
pub struct MutexGuard<'a, T> {
    inner: Option<StdMutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    ctx: Option<rt::Ctx>,
    skip_unlock: bool,
}

impl<T> Mutex<T> {
    /// Shadow `Mutex::new`.
    pub fn new(data: T) -> Self {
        Self {
            id: rt::ObjId::new(),
            data: StdMutex::new(data),
        }
    }

    fn relock(&self) -> StdMutexGuard<'_, T> {
        match self.data.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("loom: logical lock held but std mutex contended")
            }
        }
    }

    /// Shadow `Mutex::lock`. Never returns `Err` inside a model (a panic
    /// there fails the whole model instead of poisoning).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::ctx() {
            Some(ctx) => {
                rt::mutex_lock(&ctx, &self.id);
                Ok(MutexGuard {
                    inner: Some(self.relock()),
                    mutex: self,
                    ctx: Some(ctx),
                    skip_unlock: false,
                })
            }
            None => match self.data.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    mutex: self,
                    ctx: None,
                    skip_unlock: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    mutex: self,
                    ctx: None,
                    skip_unlock: false,
                })),
            },
        }
    }

    /// Shadow `Mutex::get_mut` (statically exclusive, no scheduling point).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        match self.data.get_mut() {
            Ok(v) => Ok(v),
            Err(p) => Err(PoisonError::new(p.into_inner())),
        }
    }

    /// Shadow `Mutex::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        match self.data.into_inner() {
            Ok(v) => Ok(v),
            Err(p) => Err(PoisonError::new(p.into_inner())),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.skip_unlock {
            return;
        }
        if let Some(ctx) = self.ctx.take() {
            rt::mutex_unlock(&ctx, &self.mutex.id);
        }
    }
}

/// Shadow condvar. `notify_one` wakes every waiter inside a model (a sound
/// over-approximation — std condvars may wake spuriously anyway), and a
/// waiter that is never woken is reported as a deadlock.
pub struct Condvar {
    id: rt::ObjId,
    std: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Shadow `Condvar::new`.
    pub fn new() -> Self {
        Self {
            id: rt::ObjId::new(),
            std: StdCondvar::new(),
        }
    }

    /// Shadow `Condvar::wait`.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        match guard.ctx.clone() {
            Some(ctx) => {
                guard.skip_unlock = true;
                guard.inner = None;
                drop(guard);
                rt::condvar_wait(&ctx, &self.id, &mutex.id);
                Ok(MutexGuard {
                    inner: Some(mutex.relock()),
                    mutex,
                    ctx: Some(ctx),
                    skip_unlock: false,
                })
            }
            None => {
                let std_guard = guard.inner.take().expect("guard still holds the lock");
                guard.skip_unlock = true;
                drop(guard);
                match self.std.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        mutex,
                        ctx: None,
                        skip_unlock: false,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        mutex,
                        ctx: None,
                        skip_unlock: false,
                    })),
                }
            }
        }
    }

    /// Shadow `Condvar::notify_one` (wakes all inside a model; see type docs).
    pub fn notify_one(&self) {
        match rt::ctx() {
            Some(ctx) => rt::condvar_notify(&ctx, &self.id),
            None => self.std.notify_one(),
        }
    }

    /// Shadow `Condvar::notify_all`.
    pub fn notify_all(&self) {
        match rt::ctx() {
            Some(ctx) => rt::condvar_notify(&ctx, &self.id),
            None => self.std.notify_all(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Shadow atomics with value-level weak-memory semantics.
///
/// Inside a model, every load/store/RMW routes through the runtime's
/// per-location modification order (see [`crate::rt`] module docs): which
/// store a load observes is an explored decision, constrained by
/// coherence, release/acquire synchronization and the `SeqCst` total
/// order. Outside a model the types are plain mutex-backed passthroughs.
/// Values are widened to `u64` for the runtime; all shadowed types fit.
pub mod atomic {
    use crate::rt;
    use std::sync::Mutex as StdMutex;

    pub use std::sync::atomic::Ordering;

    fn acquires(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn releases(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn seq_cst(order: Ordering) -> bool {
        matches!(order, Ordering::SeqCst)
    }

    macro_rules! shadow_atomic_int {
        ($name:ident, $ty:ty) => {
            /// Shadow atomic integer. Inside a model, loads may observe
            /// stale values exactly as the chosen `Ordering` permits
            /// (see [`crate::ValueModel`]); outside, a passthrough.
            pub struct $name {
                /// Newest value — passthrough storage and `Debug` mirror.
                /// Inside a model the runtime's modification order is
                /// authoritative; this tracks its tail.
                v: StdMutex<$ty>,
                /// Construction-time value, seeding the modification
                /// order when the location registers with an execution.
                /// Immutable so re-registration replays deterministically.
                init: $ty,
                id: rt::ObjId,
            }

            impl $name {
                /// Shadow constructor.
                pub fn new(v: $ty) -> Self {
                    Self {
                        v: StdMutex::new(v),
                        init: v,
                        id: rt::ObjId::new(),
                    }
                }

                fn value(&self) -> std::sync::MutexGuard<'_, $ty> {
                    match self.v.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    }
                }

                /// Shadow `load`.
                pub fn load(&self, order: Ordering) -> $ty {
                    assert!(
                        !matches!(order, Ordering::Release | Ordering::AcqRel),
                        "invalid ordering for load"
                    );
                    match rt::ctx() {
                        Some(ctx) => rt::atomic_load(
                            &ctx,
                            &self.id,
                            self.init as u64,
                            acquires(order),
                            seq_cst(order),
                        ) as $ty,
                        None => *self.value(),
                    }
                }

                /// Shadow `store`.
                pub fn store(&self, v: $ty, order: Ordering) {
                    assert!(
                        !matches!(order, Ordering::Acquire | Ordering::AcqRel),
                        "invalid ordering for store"
                    );
                    if let Some(ctx) = rt::ctx() {
                        rt::atomic_store(
                            &ctx,
                            &self.id,
                            self.init as u64,
                            v as u64,
                            releases(order),
                            seq_cst(order),
                        );
                    }
                    *self.value() = v;
                }

                /// Shadow `swap`.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    self.rmw(order, move |_| v)
                }

                /// Shadow `fetch_add` (wrapping, like std).
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    self.rmw(order, move |old| old.wrapping_add(v))
                }

                /// Shadow `fetch_sub` (wrapping, like std).
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    self.rmw(order, move |old| old.wrapping_sub(v))
                }

                /// Shadow `fetch_or`.
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    self.rmw(order, move |old| old | v)
                }

                /// Shadow `fetch_and`.
                pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                    self.rmw(order, move |old| old & v)
                }

                fn rmw(&self, order: Ordering, f: impl Fn($ty) -> $ty) -> $ty {
                    match rt::ctx() {
                        Some(ctx) => {
                            // Arithmetic happens in the native width, so
                            // wrapping semantics survive the u64 detour.
                            let old = rt::atomic_rmw(
                                &ctx,
                                &self.id,
                                self.init as u64,
                                acquires(order),
                                releases(order),
                                seq_cst(order),
                                |old| f(old as $ty) as u64,
                            ) as $ty;
                            *self.value() = f(old);
                            old
                        }
                        None => {
                            let mut v = self.value();
                            let old = *v;
                            *v = f(old);
                            old
                        }
                    }
                }

                /// Shadow `compare_exchange`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    assert!(
                        !matches!(failure, Ordering::Release | Ordering::AcqRel),
                        "invalid failure ordering for compare_exchange"
                    );
                    match rt::ctx() {
                        Some(ctx) => {
                            let res = rt::atomic_cas(
                                &ctx,
                                &self.id,
                                self.init as u64,
                                current as u64,
                                new as u64,
                                acquires(success),
                                releases(success),
                                seq_cst(success),
                                acquires(failure),
                            );
                            if res.is_ok() {
                                *self.value() = new;
                            }
                            res.map(|v| v as $ty).map_err(|v| v as $ty)
                        }
                        None => {
                            let mut v = self.value();
                            let old = *v;
                            if old == current {
                                *v = new;
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        }
                    }
                }

                /// Shadow `compare_exchange_weak`. Spurious failure is
                /// deliberately not modeled (documented in DESIGN.md):
                /// callers must already tolerate it, so exploring only the
                /// non-spurious outcomes under-approximates soundly for
                /// code that retries in a loop.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "{}({})", stringify!($name), *self.value())
                }
            }
        };
    }

    shadow_atomic_int!(AtomicUsize, usize);
    shadow_atomic_int!(AtomicU64, u64);
    shadow_atomic_int!(AtomicU32, u32);

    /// Shadow `AtomicBool`, routed through the same value-level runtime
    /// with `false`/`true` as `0`/`1`.
    pub struct AtomicBool {
        v: StdMutex<bool>,
        init: bool,
        id: rt::ObjId,
    }

    impl AtomicBool {
        /// Shadow constructor.
        pub fn new(v: bool) -> Self {
            Self {
                v: StdMutex::new(v),
                init: v,
                id: rt::ObjId::new(),
            }
        }

        fn value(&self) -> std::sync::MutexGuard<'_, bool> {
            match self.v.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Shadow `load`.
        pub fn load(&self, order: Ordering) -> bool {
            assert!(
                !matches!(order, Ordering::Release | Ordering::AcqRel),
                "invalid ordering for load"
            );
            match rt::ctx() {
                Some(ctx) => {
                    rt::atomic_load(
                        &ctx,
                        &self.id,
                        self.init as u64,
                        acquires(order),
                        seq_cst(order),
                    ) != 0
                }
                None => *self.value(),
            }
        }

        /// Shadow `store`.
        pub fn store(&self, v: bool, order: Ordering) {
            assert!(
                !matches!(order, Ordering::Acquire | Ordering::AcqRel),
                "invalid ordering for store"
            );
            if let Some(ctx) = rt::ctx() {
                rt::atomic_store(
                    &ctx,
                    &self.id,
                    self.init as u64,
                    v as u64,
                    releases(order),
                    seq_cst(order),
                );
            }
            *self.value() = v;
        }

        /// Shadow `swap`.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            match rt::ctx() {
                Some(ctx) => {
                    let old = rt::atomic_rmw(
                        &ctx,
                        &self.id,
                        self.init as u64,
                        acquires(order),
                        releases(order),
                        seq_cst(order),
                        move |_| v as u64,
                    ) != 0;
                    *self.value() = v;
                    old
                }
                None => {
                    let mut g = self.value();
                    let old = *g;
                    *g = v;
                    old
                }
            }
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "AtomicBool({})", *self.value())
        }
    }
}
