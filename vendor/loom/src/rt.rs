//! The deterministic scheduler and weak-memory engine behind
//! [`crate::model`].
//!
//! ## How interleavings are explored
//!
//! Every execution of the model closure runs on **real OS threads that are
//! serialized by a baton**: before each visible operation (atomic access,
//! lock, condvar op, `UnsafeCell` access, spawn, join, yield) the thread
//! enters [`step`], where exactly one runnable thread is chosen to perform
//! its next operation. Each such choice is a *decision point*; the chosen
//! alternative and the full enabled set are recorded, and after the
//! execution finishes the driver backtracks depth-first to the deepest
//! decision with an untried alternative and replays the run with that
//! prefix. The default choice is always "keep running the current thread",
//! so switching to another thread while the current one is still runnable
//! costs one unit of the **preemption bound** (CHESS-style bounding, which
//! keeps the schedule space polynomial while catching the vast majority of
//! interleaving bugs). Switches forced by blocking are free.
//!
//! ## The value model
//!
//! Under the default [`ValueModel::Weak`] semantics each atomic location
//! carries a **modification order**: the list of every store performed on
//! it, in execution order. A load does not simply observe the newest store
//! — it gets a **reads-from candidate set**, and which candidate it
//! observes is itself a decision point explored by the same depth-first
//! driver as scheduling. The candidate set is the suffix of the
//! modification order allowed by:
//!
//! * **coherence** — a thread never reads older than what it has already
//!   read or written on that location (per-thread floor), and never older
//!   than the newest store it has *seen* via happens-before;
//! * **release/acquire synchronization** — an `Acquire` load that reads
//!   from a `Release` store (or a store in its release sequence — RMWs
//!   continue the sequence, an intervening relaxed plain store breaks it)
//!   joins the releasing thread's vector clock. `Relaxed` transfers
//!   nothing, so a relaxed load can legally return a stale value *and*
//!   creates no edge for the race detector;
//! * **the SeqCst total order** — `SeqCst` operations are totally ordered
//!   (by execution order, which is well-defined because operations are
//!   serialized). A `SeqCst` load may not read a store that precedes the
//!   latest `SeqCst` store in the modification order.
//!
//! [`ValueModel::SeqCstValues`] restores the historical semantics (every
//! load reads the newest store) and exists so the weak explorer can be
//! shown to admit a strict superset of the SC-value outcomes.
//!
//! Deliberate under-approximations, all bounded and deterministic (see
//! DESIGN.md "Memory model" for the full statement): RMWs read the
//! modification-order tail (no reads-from choice), stores append to the
//! modification order (no insertion before existing stores), a failed or
//! `_weak` compare-exchange never fails spuriously, there is no load
//! buffering (a load cannot observe a store that has not executed yet),
//! and fences are not modeled. Stale reads per (thread, location) are
//! capped by [`crate::Builder::staleness_bound`] so unsynchronized spin
//! loops stay finite — the staleness analogue of the preemption bound.
//!
//! ## What else is checked
//!
//! * Happens-before is tracked precisely with vector clocks: acquire
//!   edges as above, mutexes carry the releasing thread's clock,
//!   spawn/join edges are recorded. Every [`crate::cell::UnsafeCell`]
//!   access is checked against those clocks, so publishing data through a
//!   `Relaxed` store is reported as a data race.
//! * `Condvar::notify_one` wakes *every* waiter (a sound
//!   over-approximation: std condvars may wake spuriously, so code must
//!   tolerate extra wakeups anyway). A waiter that is never notified
//!   deadlocks, and deadlocks are detected and reported with the full
//!   schedule — including which stale read led there.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A vector clock: component `i` counts the operations thread `i` has
/// performed that are visible to the clock's owner.
pub(crate) type VClock = Vec<u64>;

/// Which value semantics the explorer enumerates. See the module docs of
/// [`crate`] and the fields of [`crate::Builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueModel {
    /// C11-style weak memory: per-location modification order with
    /// reads-from candidate sets (the default).
    Weak,
    /// Historical semantics: every load observes the newest store. Kept so
    /// the superset oracle can compare the two explorations.
    SeqCstValues,
}

pub(crate) fn clock_join(into: &mut VClock, other: &VClock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (slot, &v) in into.iter_mut().zip(other.iter()) {
        if *slot < v {
            *slot = v;
        }
    }
}

/// `a ≤ b` component-wise: everything `a` has seen, `b` has seen too.
pub(crate) fn clock_leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Yielded,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadRec {
    status: Status,
    clock: VClock,
}

struct MutexRec {
    owner: Option<usize>,
    clock: VClock,
}

#[derive(Default)]
struct CellRec {
    last_write: Option<(usize, VClock)>,
    reads: Vec<(usize, VClock)>,
}

/// One store in a location's modification order. Values are widened to
/// `u64` by the shadow atomics in [`crate::sync::atomic`].
struct StoreRec {
    value: u64,
    /// The writer's clock at the store (including the store itself): a
    /// load may not read *past* a store whose `hb` it has already seen.
    hb: VClock,
    /// The release-sequence clock an acquiring reader joins. A release
    /// store starts it; an RMW continues the predecessor's sequence
    /// (joining its own clock if releasing); a relaxed plain store breaks
    /// it (empty clock — C++20 semantics).
    sync: VClock,
    /// Writer thread id (`usize::MAX` for the initial value). `SeqCst`
    /// membership is not stored per-record: [`AtomicRec::last_sc`] tracks
    /// the only index the load path needs.
    writer: usize,
}

/// One atomic location: modification order plus per-thread coherence state.
struct AtomicRec {
    /// Modification order; index 0 is the initial value.
    history: Vec<StoreRec>,
    /// Index of the latest `SeqCst` store, the floor for `SeqCst` loads.
    last_sc: Option<usize>,
    /// Per-thread coherence floor: the oldest index the thread may read.
    floor: Vec<usize>,
    /// Per-thread count of stale (non-newest) reads on this location, for
    /// the staleness bound.
    stale_reads: Vec<u64>,
}

impl AtomicRec {
    fn floor_of(&self, thread: usize) -> usize {
        self.floor.get(thread).copied().unwrap_or(0)
    }

    fn raise_floor(&mut self, thread: usize, index: usize) {
        if self.floor.len() <= thread {
            self.floor.resize(thread + 1, 0);
        }
        if self.floor[thread] < index {
            self.floor[thread] = index;
        }
    }

    fn count_stale(&mut self, thread: usize) {
        if self.stale_reads.len() <= thread {
            self.stale_reads.resize(thread + 1, 0);
        }
        self.stale_reads[thread] = self.stale_reads[thread].saturating_add(1);
    }
}

/// What a decision point chose between.
pub(crate) enum DecisionInfo {
    /// Scheduling: which thread performs the next operation.
    Schedule { enabled: Vec<usize> },
    /// Reads-from: which store in the modification order a load observed.
    ReadsFrom {
        thread: usize,
        atomic: usize,
        /// Number of admissible stores (the arity of this decision).
        candidates: usize,
        /// Modification-order length at the time of the load.
        mod_len: usize,
        /// Index actually read.
        index: usize,
        /// Value actually read.
        value: u64,
        /// Thread that performed the store read from (`usize::MAX` for
        /// the initial value).
        writer: usize,
    },
}

/// One explored decision: the alternatives and the index chosen.
pub(crate) struct Decision {
    pub info: DecisionInfo,
    pub chosen: usize,
}

impl Decision {
    /// How many alternatives this decision had (for backtracking).
    pub(crate) fn arity(&self) -> usize {
        match &self.info {
            DecisionInfo::Schedule { enabled } => enabled.len(),
            DecisionInfo::ReadsFrom { candidates, .. } => *candidates,
        }
    }
}

pub(crate) struct ExecState {
    threads: Vec<ThreadRec>,
    current: usize,
    replay: Vec<usize>,
    pub decisions: Vec<Decision>,
    preemptions: usize,
    preemption_bound: usize,
    steps: usize,
    max_steps: usize,
    value_model: ValueModel,
    staleness_bound: u64,
    pub failed: Option<String>,
    finished: usize,
    mutexes: Vec<MutexRec>,
    condvars: Vec<Vec<usize>>,
    atomics: Vec<AtomicRec>,
    cells: Vec<CellRec>,
}

pub(crate) struct Execution {
    pub serial: u64,
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    pub handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

static SERIAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub id: usize,
}

/// The calling thread's model context, or `None` outside a model run (or
/// while unwinding from a model failure, so Drop impls that touch shadow
/// primitives cannot double-panic).
pub(crate) fn ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Identity of a shadow object within one execution. Objects are usually
/// created fresh by each run of the model closure; the serial number lets a
/// stale object from a previous execution re-register instead of aliasing.
#[derive(Debug)]
pub(crate) struct ObjId {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl ObjId {
    pub(crate) const fn new() -> Self {
        Self {
            slot: StdMutex::new(None),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Mutex,
    Condvar,
    Cell,
}

/// Exploration parameters forwarded from [`crate::Builder`] to each
/// execution.
#[derive(Clone, Copy)]
pub(crate) struct RunConfig {
    pub preemption_bound: usize,
    pub max_steps: usize,
    pub value_model: ValueModel,
    pub staleness_bound: u64,
}

impl Execution {
    fn new(replay: Vec<usize>, config: RunConfig) -> Self {
        Self {
            serial: SERIAL.fetch_add(1, StdOrdering::Relaxed),
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                replay,
                decisions: Vec::new(),
                preemptions: 0,
                preemption_bound: config.preemption_bound,
                steps: 0,
                max_steps: config.max_steps,
                value_model: config.value_model,
                staleness_bound: config.staleness_bound,
                failed: None,
                finished: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

fn obj_slot(id: &ObjId) -> StdMutexGuard<'_, Option<(u64, usize)>> {
    match id.slot.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn resolve(st: &mut ExecState, exec: &Execution, id: &ObjId, kind: ObjKind) -> usize {
    let mut slot = obj_slot(id);
    if let Some((serial, idx)) = *slot {
        if serial == exec.serial {
            return idx;
        }
    }
    let idx = match kind {
        ObjKind::Mutex => {
            st.mutexes.push(MutexRec {
                owner: None,
                clock: Vec::new(),
            });
            st.mutexes.len() - 1
        }
        ObjKind::Condvar => {
            st.condvars.push(Vec::new());
            st.condvars.len() - 1
        }
        ObjKind::Cell => {
            st.cells.push(CellRec::default());
            st.cells.len() - 1
        }
    };
    *slot = Some((exec.serial, idx));
    idx
}

/// Register an atomic location on first use, seeding the modification
/// order with its construction-time value.
fn resolve_atomic(st: &mut ExecState, exec: &Execution, id: &ObjId, init: u64) -> usize {
    let mut slot = obj_slot(id);
    if let Some((serial, idx)) = *slot {
        if serial == exec.serial {
            return idx;
        }
    }
    st.atomics.push(AtomicRec {
        history: vec![StoreRec {
            value: init,
            hb: Vec::new(),
            sync: Vec::new(),
            writer: usize::MAX,
        }],
        last_sc: None,
        floor: Vec::new(),
        stale_reads: Vec::new(),
    });
    let idx = st.atomics.len() - 1;
    *slot = Some((exec.serial, idx));
    idx
}

/// The replayed-or-default choice for a decision of `arity` alternatives
/// at the current depth. The caller must push the matching [`Decision`]
/// immediately after.
fn next_choice(st: &ExecState, arity: usize) -> usize {
    let depth = st.decisions.len();
    let mut chosen = if depth < st.replay.len() {
        st.replay[depth]
    } else {
        0
    };
    if chosen >= arity {
        // A replay mismatch can only follow a nondeterministic model
        // closure; degrade to the default rather than crash the explorer.
        chosen = 0;
    }
    chosen
}

/// Choose the next thread to run. `caller` is the thread making the choice
/// (the one that just performed an operation or is about to block).
fn pick_next(st: &mut ExecState, caller: usize) -> Result<Option<usize>, String> {
    let mut enabled: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if enabled.is_empty() {
        let yielded: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Yielded)
            .map(|(i, _)| i)
            .collect();
        if yielded.is_empty() {
            if st.finished == st.threads.len() {
                return Ok(None);
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                .collect();
            return Err(format!(
                "deadlock: every live thread is blocked [{}]",
                stuck.join(", ")
            ));
        }
        for &t in &yielded {
            st.threads[t].status = Status::Runnable;
        }
        enabled = yielded;
    }
    let caller_enabled = enabled.contains(&caller);
    if caller_enabled {
        enabled.retain(|&t| t != caller);
        enabled.insert(0, caller);
        if st.preemptions >= st.preemption_bound {
            enabled.truncate(1);
        }
    }
    let chosen = next_choice(st, enabled.len());
    let next = enabled[chosen];
    if caller_enabled && next != caller {
        st.preemptions += 1;
    }
    st.decisions.push(Decision {
        info: DecisionInfo::Schedule { enabled },
        chosen,
    });
    Ok(Some(next))
}

fn fail(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, msg: String) -> ! {
    let primary = st.failed.is_none();
    if primary {
        st.failed = Some(msg.clone());
    }
    drop(st);
    exec.cv.notify_all();
    if primary {
        panic!("loom model failure: {msg}");
    } else {
        panic!("loom: unwinding after failure elsewhere");
    }
}

fn secondary_check(exec: &Execution, st: &StdMutexGuard<'_, ExecState>) {
    if st.failed.is_some() {
        exec.cv.notify_all();
        panic!("loom: unwinding after failure elsewhere");
    }
}

/// Park until this thread is scheduled, then stamp its clock.
fn wait_scheduled(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, me: usize) {
    loop {
        secondary_check(exec, &st);
        if st.current == me && st.threads[me].status == Status::Runnable {
            if st.threads[me].clock.len() <= me {
                st.threads[me].clock.resize(me + 1, 0);
            }
            st.threads[me].clock[me] += 1;
            return;
        }
        st = match exec.cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

fn schedule(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, caller: usize) {
    match pick_next(&mut st, caller) {
        Err(msg) => fail(exec, st, msg),
        Ok(None) => fail(exec, st, "scheduler ran out of threads".into()),
        Ok(Some(next)) => {
            let switch = next != st.current;
            st.current = next;
            if switch {
                exec.cv.notify_all();
            }
            wait_scheduled(exec, st, caller);
        }
    }
}

/// The pre-operation scheduling point: decide who performs the next visible
/// operation. Returns with the baton held by the caller.
pub(crate) fn step(ctx: &Ctx) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "max_steps ({}) exceeded — livelock or a model too large to explore",
            st.max_steps
        );
        fail(exec, st, msg);
    }
    schedule(exec, st, ctx.id);
}

/// Move the caller into `status` (a blocked/yielded state) and run others
/// until the caller is runnable and scheduled again.
fn block(ctx: &Ctx, status: Status) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    st.threads[ctx.id].status = status;
    schedule(exec, st, ctx.id);
}

pub(crate) fn yield_now(ctx: &Ctx) {
    block(ctx, Status::Yielded);
}

// ---------------------------------------------------------------- mutexes

pub(crate) fn mutex_lock(ctx: &Ctx, id: &ObjId) {
    step(ctx);
    loop {
        let exec = &*ctx.exec;
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let mid = resolve(&mut st, exec, id, ObjKind::Mutex);
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(ctx.id);
            let c = st.mutexes[mid].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedMutex(mid);
        schedule(exec, st, ctx.id);
    }
}

fn release_mutex_locked(st: &mut ExecState, mid: usize, me: usize) {
    let tc = st.threads[me].clock.clone();
    clock_join(&mut st.mutexes[mid].clock, &tc);
    st.mutexes[mid].owner = None;
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedMutex(mid) {
            t.status = Status::Runnable;
        }
    }
}

pub(crate) fn mutex_unlock(ctx: &Ctx, id: &ObjId) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    let mid = resolve(&mut st, exec, id, ObjKind::Mutex);
    release_mutex_locked(&mut st, mid, ctx.id);
    drop(st);
    exec.cv.notify_all();
}

// --------------------------------------------------------------- condvars

pub(crate) fn condvar_wait(ctx: &Ctx, cv: &ObjId, mx: &ObjId) {
    step(ctx);
    let exec = &*ctx.exec;
    {
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let cid = resolve(&mut st, exec, cv, ObjKind::Condvar);
        let mid = resolve(&mut st, exec, mx, ObjKind::Mutex);
        release_mutex_locked(&mut st, mid, ctx.id);
        st.condvars[cid].push(ctx.id);
        st.threads[ctx.id].status = Status::BlockedCondvar(cid);
        schedule(exec, st, ctx.id);
    }
    // Notified (or spuriously woken): re-acquire the mutex, contending.
    loop {
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let mid = resolve(&mut st, exec, mx, ObjKind::Mutex);
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(ctx.id);
            let c = st.mutexes[mid].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedMutex(mid);
        schedule(exec, st, ctx.id);
    }
}

/// `notify_one` and `notify_all` both wake every waiter: std condvars may
/// wake spuriously, so waking extra threads only explores behaviors the
/// real primitive is already allowed to produce.
pub(crate) fn condvar_notify(ctx: &Ctx, cv: &ObjId) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let cid = resolve(&mut st, exec, cv, ObjKind::Condvar);
    let waiters = std::mem::take(&mut st.condvars[cid]);
    for t in waiters {
        if st.threads[t].status == Status::BlockedCondvar(cid) {
            st.threads[t].status = Status::Runnable;
        }
    }
    drop(st);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------- atomics

/// The oldest modification-order index thread `me` may legally read:
/// its coherence floor, raised past every store it has already seen via
/// happens-before, and past the latest `SeqCst` store for `SeqCst` loads.
fn read_floor(a: &AtomicRec, me: usize, my_clock: &VClock, seq_cst: bool) -> usize {
    let mut lo = a.floor_of(me);
    for (i, s) in a.history.iter().enumerate().skip(lo + 1) {
        // `s.hb` includes the writer's tick for the store itself, so
        // `hb ≤ my_clock` means the store is in this thread's past and
        // write-read coherence forbids reading anything older.
        if clock_leq(&s.hb, my_clock) {
            lo = i;
        }
    }
    if seq_cst {
        if let Some(sc) = a.last_sc {
            lo = lo.max(sc);
        }
    }
    lo
}

/// A value-level atomic load: pick a reads-from candidate (a decision
/// point under [`ValueModel::Weak`]), apply coherence bookkeeping, and
/// join the store's release-sequence clock if `acquire`.
pub(crate) fn atomic_load(ctx: &Ctx, id: &ObjId, init: u64, acquire: bool, seq_cst: bool) -> u64 {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let aid = resolve_atomic(&mut st, exec, id, init);
    let me = ctx.id;
    let my_clock = st.threads[me].clock.clone();
    let (lo, hi, stale_spent) = {
        let a = &st.atomics[aid];
        let lo = read_floor(a, me, &my_clock, seq_cst);
        let spent = a.stale_reads.get(me).copied().unwrap_or(0);
        (lo, a.history.len() - 1, spent)
    };
    // Candidates are ordered newest-first, so choice 0 (the default DFS
    // path) behaves exactly like the SC-value explorer. The staleness
    // bound keeps unsynchronized spin loops finite.
    let candidates =
        if st.value_model == ValueModel::SeqCstValues || stale_spent >= st.staleness_bound {
            1
        } else {
            hi - lo + 1
        };
    let chosen = next_choice(&st, candidates);
    let index = hi - chosen;
    let (value, writer) = {
        let s = &st.atomics[aid].history[index];
        (s.value, s.writer)
    };
    st.decisions.push(Decision {
        info: DecisionInfo::ReadsFrom {
            thread: me,
            atomic: aid,
            candidates,
            mod_len: hi + 1,
            index,
            value,
            writer,
        },
        chosen,
    });
    if acquire {
        let sync = st.atomics[aid].history[index].sync.clone();
        clock_join(&mut st.threads[me].clock, &sync);
    }
    let a = &mut st.atomics[aid];
    if index < hi {
        a.count_stale(me);
    }
    a.raise_floor(me, index);
    value
}

/// A value-level atomic store: appends to the modification order
/// (insertion before existing stores is deliberately not modeled).
pub(crate) fn atomic_store(
    ctx: &Ctx,
    id: &ObjId,
    init: u64,
    value: u64,
    release: bool,
    seq_cst: bool,
) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let aid = resolve_atomic(&mut st, exec, id, init);
    let me = ctx.id;
    let my_clock = st.threads[me].clock.clone();
    // A plain relaxed store *breaks* any release sequence headed earlier
    // in the modification order (empty sync clock).
    let sync = if release {
        my_clock.clone()
    } else {
        Vec::new()
    };
    let a = &mut st.atomics[aid];
    a.history.push(StoreRec {
        value,
        hb: my_clock,
        sync,
        writer: me,
    });
    let index = a.history.len() - 1;
    a.raise_floor(me, index);
    if seq_cst {
        a.last_sc = Some(index);
    }
}

/// A value-level read-modify-write. RMWs read the modification-order tail
/// (a documented under-approximation: no reads-from choice) and continue
/// the tail store's release sequence.
pub(crate) fn atomic_rmw(
    ctx: &Ctx,
    id: &ObjId,
    init: u64,
    acquire: bool,
    release: bool,
    seq_cst: bool,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let aid = resolve_atomic(&mut st, exec, id, init);
    let me = ctx.id;
    let (old, tail_sync) = {
        let tail = st.atomics[aid].history.last().expect("non-empty history");
        (tail.value, tail.sync.clone())
    };
    if acquire {
        clock_join(&mut st.threads[me].clock, &tail_sync);
    }
    let my_clock = st.threads[me].clock.clone();
    // C++20 release sequences: an RMW continues the sequence of the store
    // it reads from, adding its own clock if it is itself releasing.
    let mut sync = tail_sync;
    if release {
        clock_join(&mut sync, &my_clock);
    }
    let a = &mut st.atomics[aid];
    a.history.push(StoreRec {
        value: f(old),
        hb: my_clock,
        sync,
        writer: me,
    });
    let index = a.history.len() - 1;
    a.raise_floor(me, index);
    if seq_cst {
        a.last_sc = Some(index);
    }
    old
}

/// A value-level compare-exchange. Both the comparison and a failed
/// exchange read the modification-order tail (documented
/// under-approximation: a failed CAS never observes a stale value, and
/// the `_weak` variant never fails spuriously).
#[allow(clippy::too_many_arguments)]
pub(crate) fn atomic_cas(
    ctx: &Ctx,
    id: &ObjId,
    init: u64,
    current: u64,
    new: u64,
    acq_success: bool,
    rel_success: bool,
    sc_success: bool,
    acq_failure: bool,
) -> Result<u64, u64> {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let aid = resolve_atomic(&mut st, exec, id, init);
    let me = ctx.id;
    let (old, tail_sync, tail_index) = {
        let a = &st.atomics[aid];
        let tail = a.history.last().expect("non-empty history");
        (tail.value, tail.sync.clone(), a.history.len() - 1)
    };
    if old == current {
        if acq_success {
            clock_join(&mut st.threads[me].clock, &tail_sync);
        }
        let my_clock = st.threads[me].clock.clone();
        let mut sync = tail_sync;
        if rel_success {
            clock_join(&mut sync, &my_clock);
        }
        let a = &mut st.atomics[aid];
        a.history.push(StoreRec {
            value: new,
            hb: my_clock,
            sync,
            writer: me,
        });
        let index = a.history.len() - 1;
        a.raise_floor(me, index);
        if sc_success {
            a.last_sc = Some(index);
        }
        Ok(old)
    } else {
        if acq_failure {
            clock_join(&mut st.threads[me].clock, &tail_sync);
        }
        st.atomics[aid].raise_floor(me, tail_index);
        Err(old)
    }
}

// ------------------------------------------------------------ UnsafeCell

/// Scheduling point + vector-clock race check for one `UnsafeCell` access.
pub(crate) fn cell_access(ctx: &Ctx, id: &ObjId, write: bool) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let cid = resolve(&mut st, exec, id, ObjKind::Cell);
    let me = ctx.id;
    let my_clock = st.threads[me].clock.clone();
    let rec = &mut st.cells[cid];
    let mut race: Option<String> = None;
    if let Some((writer, wc)) = &rec.last_write {
        if *writer != me && !clock_leq(wc, &my_clock) {
            race = Some(format!(
                "data race on UnsafeCell: thread {me} {} concurrently with thread {writer}'s write",
                if write { "writes" } else { "reads" }
            ));
        }
    }
    if write && race.is_none() {
        for (reader, rc) in &rec.reads {
            if *reader != me && !clock_leq(rc, &my_clock) {
                race = Some(format!(
                    "data race on UnsafeCell: thread {me} writes concurrently with thread {reader}'s read"
                ));
                break;
            }
        }
    }
    if let Some(msg) = race {
        fail(exec, st, msg);
    }
    if write {
        rec.reads.clear();
        rec.last_write = Some((me, my_clock));
    } else {
        rec.reads.retain(|(t, _)| *t != me);
        rec.reads.push((me, my_clock));
    }
}

// ---------------------------------------------------------------- threads

/// Register a child thread (happens-before edge from the parent) and
/// return its id. The caller then spawns the real thread.
pub(crate) fn register_thread(ctx: &Ctx) -> usize {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let id = st.threads.len();
    let mut clock = st.threads[ctx.id].clock.clone();
    if clock.len() <= id {
        clock.resize(id + 1, 0);
    }
    clock[id] = 1;
    st.threads.push(ThreadRec {
        status: Status::Runnable,
        clock,
    });
    id
}

/// Entry point of a controlled child thread: install the context and park
/// until first scheduled.
pub(crate) fn enter_thread(exec: &Arc<Execution>, id: usize) {
    set_ctx(Some(Ctx {
        exec: Arc::clone(exec),
        id,
    }));
    let st = exec.lock();
    wait_scheduled(exec, st, id);
}

/// Exit path of a controlled thread (also runs after a panic, so it must
/// never panic itself): mark finished, wake joiners, hand the baton on.
pub(crate) fn exit_thread(exec: &Arc<Execution>, id: usize) {
    set_ctx(None);
    let mut st = exec.lock();
    st.threads[id].status = Status::Finished;
    st.finished += 1;
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedJoin(id) {
            t.status = Status::Runnable;
        }
    }
    if st.finished == st.threads.len() || st.failed.is_some() {
        drop(st);
        exec.cv.notify_all();
        return;
    }
    match pick_next(&mut st, id) {
        Err(msg) => {
            if st.failed.is_none() {
                st.failed = Some(msg);
            }
        }
        Ok(Some(next)) => st.current = next,
        Ok(None) => {}
    }
    drop(st);
    exec.cv.notify_all();
}

/// Block until `target` finishes, then join its clock into the caller's.
pub(crate) fn join_thread(ctx: &Ctx, target: usize) {
    step(ctx);
    loop {
        let exec = &*ctx.exec;
        let mut st = exec.lock();
        secondary_check(exec, &st);
        if st.threads[target].status == Status::Finished {
            let c = st.threads[target].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedJoin(target);
        schedule(exec, st, ctx.id);
    }
}

// ----------------------------------------------------------------- driver

/// Record a panic payload as the primary model failure, unless a failure
/// is already recorded or the payload is the secondary-unwind marker.
pub(crate) fn record_failure(exec: &Execution, payload: &(dyn std::any::Any + Send)) {
    let msg = panic_message(payload);
    let mut st = exec.lock();
    if st.failed.is_none() && !msg.starts_with("loom: unwinding") {
        st.failed = Some(msg);
    }
    drop(st);
    exec.cv.notify_all();
}

pub(crate) struct RunOutcome {
    /// `(arity, chosen)` per decision, in order — scheduling and
    /// reads-from choices in one backtracking list.
    pub decisions: Vec<(usize, usize)>,
    /// Human-readable line per decision; built only for failed runs.
    pub trace: Vec<String>,
    pub failed: Option<String>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Render a failed run's decision list as one readable line per decision,
/// so a counterexample names the stale reads that produced it.
fn render_trace(decisions: &[Decision]) -> Vec<String> {
    decisions
        .iter()
        .enumerate()
        .map(|(i, d)| match &d.info {
            DecisionInfo::Schedule { enabled } => {
                format!(
                    "#{i}: run thread {} (enabled: {enabled:?})",
                    enabled.get(d.chosen).copied().unwrap_or(usize::MAX)
                )
            }
            DecisionInfo::ReadsFrom {
                thread,
                atomic,
                candidates,
                mod_len,
                index,
                value,
                writer,
            } => {
                let source = if *writer == usize::MAX {
                    "the initial value".to_string()
                } else {
                    format!("thread {writer}'s store")
                };
                let staleness = if index + 1 < *mod_len {
                    format!(" [STALE: store {} of {}]", index + 1, mod_len)
                } else {
                    String::new()
                };
                format!(
                    "#{i}: thread {thread} reads atomic a{atomic} = {value} from {source}\
                     {staleness} ({candidates} candidate(s))"
                )
            }
        })
        .collect()
}

pub(crate) fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    replay: Vec<usize>,
    config: RunConfig,
) -> RunOutcome {
    let exec = Arc::new(Execution::new(replay, config));
    {
        let mut st = exec.lock();
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock: vec![1],
        });
        st.current = 0;
    }
    let exec0 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("loom-root".into())
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec0),
                id: 0,
            }));
            let result = catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(payload) = result {
                let msg = panic_message(&*payload);
                let mut st = exec0.lock();
                if st.failed.is_none() && !msg.starts_with("loom: unwinding") {
                    st.failed = Some(msg);
                }
                drop(st);
                exec0.cv.notify_all();
            }
            exit_thread(&exec0, 0);
        })
        .expect("spawn loom root thread");
    let _ = root.join();
    // Child wrapper threads may still be draining; join them all so the
    // next execution starts from a quiescent process.
    loop {
        let drained: Vec<std::thread::JoinHandle<()>> = {
            let mut h = match exec.handles.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            h.drain(..).collect()
        };
        if drained.is_empty() {
            break;
        }
        for h in drained {
            let _ = h.join();
        }
    }
    let st = exec.lock();
    RunOutcome {
        decisions: st.decisions.iter().map(|d| (d.arity(), d.chosen)).collect(),
        trace: if st.failed.is_some() {
            render_trace(&st.decisions)
        } else {
            Vec::new()
        },
        failed: st.failed.clone(),
    }
}
