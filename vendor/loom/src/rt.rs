//! The deterministic scheduler behind [`crate::model`].
//!
//! ## How interleavings are explored
//!
//! Every execution of the model closure runs on **real OS threads that are
//! serialized by a baton**: before each visible operation (atomic access,
//! lock, condvar op, `UnsafeCell` access, spawn, join, yield) the thread
//! enters [`step`], where exactly one runnable thread is chosen to perform
//! its next operation. Each such choice is a *decision point*; the chosen
//! alternative and the full enabled set are recorded, and after the
//! execution finishes the driver backtracks depth-first to the deepest
//! decision with an untried alternative and replays the run with that
//! prefix. The default choice is always "keep running the current thread",
//! so switching to another thread while the current one is still runnable
//! costs one unit of the **preemption bound** (CHESS-style bounding, which
//! keeps the schedule space polynomial while catching the vast majority of
//! interleaving bugs). Switches forced by blocking are free.
//!
//! ## What is and is not modeled
//!
//! * Values are **sequentially consistent**: a load always observes the
//!   most recent store in the executed interleaving. Store-buffer style
//!   weak-memory reorderings are *not* enumerated.
//! * Happens-before **is** tracked precisely with vector clocks: `Acquire`
//!   loads join the clock released by `Release` stores, mutexes carry the
//!   releasing thread's clock, spawn/join edges are recorded, and
//!   `Ordering::Relaxed` transfers *nothing*. Every [`crate::cell::UnsafeCell`]
//!   access is checked against those clocks, so publishing data through a
//!   `Relaxed` store (or reading it through a `Relaxed` load) is reported
//!   as a data race even though the value itself would have been "correct"
//!   under SC.
//! * `Condvar::notify_one` wakes *every* waiter (a sound over-approximation:
//!   std condvars may wake spuriously, so code must tolerate extra wakeups
//!   anyway). A waiter that is never notified deadlocks, and deadlocks are
//!   detected and reported with the full schedule.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A vector clock: component `i` counts the operations thread `i` has
/// performed that are visible to the clock's owner.
pub(crate) type VClock = Vec<u64>;

pub(crate) fn clock_join(into: &mut VClock, other: &VClock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (slot, &v) in into.iter_mut().zip(other.iter()) {
        if *slot < v {
            *slot = v;
        }
    }
}

/// `a ≤ b` component-wise: everything `a` has seen, `b` has seen too.
pub(crate) fn clock_leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Yielded,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadRec {
    status: Status,
    clock: VClock,
}

struct MutexRec {
    owner: Option<usize>,
    clock: VClock,
}

#[derive(Default)]
struct CellRec {
    last_write: Option<(usize, VClock)>,
    reads: Vec<(usize, VClock)>,
}

/// One scheduling decision: the ordered enabled set and the index chosen.
pub(crate) struct Decision {
    pub enabled: Vec<usize>,
    pub chosen: usize,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadRec>,
    current: usize,
    replay: Vec<usize>,
    pub decisions: Vec<Decision>,
    preemptions: usize,
    preemption_bound: usize,
    steps: usize,
    max_steps: usize,
    pub failed: Option<String>,
    finished: usize,
    mutexes: Vec<MutexRec>,
    condvars: Vec<Vec<usize>>,
    atomics: Vec<VClock>,
    cells: Vec<CellRec>,
}

pub(crate) struct Execution {
    pub serial: u64,
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    pub handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

static SERIAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub id: usize,
}

/// The calling thread's model context, or `None` outside a model run (or
/// while unwinding from a model failure, so Drop impls that touch shadow
/// primitives cannot double-panic).
pub(crate) fn ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Identity of a shadow object within one execution. Objects are usually
/// created fresh by each run of the model closure; the serial number lets a
/// stale object from a previous execution re-register instead of aliasing.
#[derive(Debug)]
pub(crate) struct ObjId {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl ObjId {
    pub(crate) const fn new() -> Self {
        Self {
            slot: StdMutex::new(None),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Mutex,
    Condvar,
    Atomic,
    Cell,
}

impl Execution {
    fn new(replay: Vec<usize>, preemption_bound: usize, max_steps: usize) -> Self {
        Self {
            serial: SERIAL.fetch_add(1, StdOrdering::Relaxed),
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                replay,
                decisions: Vec::new(),
                preemptions: 0,
                preemption_bound,
                steps: 0,
                max_steps,
                failed: None,
                finished: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

fn resolve(st: &mut ExecState, exec: &Execution, id: &ObjId, kind: ObjKind) -> usize {
    let mut slot = match id.slot.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some((serial, idx)) = *slot {
        if serial == exec.serial {
            return idx;
        }
    }
    let idx = match kind {
        ObjKind::Mutex => {
            st.mutexes.push(MutexRec {
                owner: None,
                clock: Vec::new(),
            });
            st.mutexes.len() - 1
        }
        ObjKind::Condvar => {
            st.condvars.push(Vec::new());
            st.condvars.len() - 1
        }
        ObjKind::Atomic => {
            st.atomics.push(Vec::new());
            st.atomics.len() - 1
        }
        ObjKind::Cell => {
            st.cells.push(CellRec::default());
            st.cells.len() - 1
        }
    };
    *slot = Some((exec.serial, idx));
    idx
}

/// Choose the next thread to run. `caller` is the thread making the choice
/// (the one that just performed an operation or is about to block).
fn pick_next(st: &mut ExecState, caller: usize) -> Result<Option<usize>, String> {
    let mut enabled: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if enabled.is_empty() {
        let yielded: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Yielded)
            .map(|(i, _)| i)
            .collect();
        if yielded.is_empty() {
            if st.finished == st.threads.len() {
                return Ok(None);
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                .collect();
            return Err(format!(
                "deadlock: every live thread is blocked [{}]",
                stuck.join(", ")
            ));
        }
        for &t in &yielded {
            st.threads[t].status = Status::Runnable;
        }
        enabled = yielded;
    }
    let caller_enabled = enabled.contains(&caller);
    if caller_enabled {
        enabled.retain(|&t| t != caller);
        enabled.insert(0, caller);
        if st.preemptions >= st.preemption_bound {
            enabled.truncate(1);
        }
    }
    let depth = st.decisions.len();
    let mut chosen = if depth < st.replay.len() {
        st.replay[depth]
    } else {
        0
    };
    if chosen >= enabled.len() {
        // A replay mismatch can only follow a nondeterministic model
        // closure; degrade to the default rather than crash the explorer.
        chosen = 0;
    }
    let next = enabled[chosen];
    if caller_enabled && next != caller {
        st.preemptions += 1;
    }
    st.decisions.push(Decision { enabled, chosen });
    Ok(Some(next))
}

fn fail(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, msg: String) -> ! {
    let primary = st.failed.is_none();
    if primary {
        st.failed = Some(msg.clone());
    }
    drop(st);
    exec.cv.notify_all();
    if primary {
        panic!("loom model failure: {msg}");
    } else {
        panic!("loom: unwinding after failure elsewhere");
    }
}

fn secondary_check(exec: &Execution, st: &StdMutexGuard<'_, ExecState>) {
    if st.failed.is_some() {
        exec.cv.notify_all();
        panic!("loom: unwinding after failure elsewhere");
    }
}

/// Park until this thread is scheduled, then stamp its clock.
fn wait_scheduled(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, me: usize) {
    loop {
        secondary_check(exec, &st);
        if st.current == me && st.threads[me].status == Status::Runnable {
            if st.threads[me].clock.len() <= me {
                st.threads[me].clock.resize(me + 1, 0);
            }
            st.threads[me].clock[me] += 1;
            return;
        }
        st = match exec.cv.wait(st) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

fn schedule(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, caller: usize) {
    match pick_next(&mut st, caller) {
        Err(msg) => fail(exec, st, msg),
        Ok(None) => fail(exec, st, "scheduler ran out of threads".into()),
        Ok(Some(next)) => {
            let switch = next != st.current;
            st.current = next;
            if switch {
                exec.cv.notify_all();
            }
            wait_scheduled(exec, st, caller);
        }
    }
}

/// The pre-operation scheduling point: decide who performs the next visible
/// operation. Returns with the baton held by the caller.
pub(crate) fn step(ctx: &Ctx) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "max_steps ({}) exceeded — livelock or a model too large to explore",
            st.max_steps
        );
        fail(exec, st, msg);
    }
    schedule(exec, st, ctx.id);
}

/// Move the caller into `status` (a blocked/yielded state) and run others
/// until the caller is runnable and scheduled again.
fn block(ctx: &Ctx, status: Status) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    st.threads[ctx.id].status = status;
    schedule(exec, st, ctx.id);
}

pub(crate) fn yield_now(ctx: &Ctx) {
    block(ctx, Status::Yielded);
}

// ---------------------------------------------------------------- mutexes

pub(crate) fn mutex_lock(ctx: &Ctx, id: &ObjId) {
    step(ctx);
    loop {
        let exec = &*ctx.exec;
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let mid = resolve(&mut st, exec, id, ObjKind::Mutex);
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(ctx.id);
            let c = st.mutexes[mid].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedMutex(mid);
        schedule(exec, st, ctx.id);
    }
}

fn release_mutex_locked(st: &mut ExecState, mid: usize, me: usize) {
    let tc = st.threads[me].clock.clone();
    clock_join(&mut st.mutexes[mid].clock, &tc);
    st.mutexes[mid].owner = None;
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedMutex(mid) {
            t.status = Status::Runnable;
        }
    }
}

pub(crate) fn mutex_unlock(ctx: &Ctx, id: &ObjId) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    let mid = resolve(&mut st, exec, id, ObjKind::Mutex);
    release_mutex_locked(&mut st, mid, ctx.id);
    drop(st);
    exec.cv.notify_all();
}

// --------------------------------------------------------------- condvars

pub(crate) fn condvar_wait(ctx: &Ctx, cv: &ObjId, mx: &ObjId) {
    step(ctx);
    let exec = &*ctx.exec;
    {
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let cid = resolve(&mut st, exec, cv, ObjKind::Condvar);
        let mid = resolve(&mut st, exec, mx, ObjKind::Mutex);
        release_mutex_locked(&mut st, mid, ctx.id);
        st.condvars[cid].push(ctx.id);
        st.threads[ctx.id].status = Status::BlockedCondvar(cid);
        schedule(exec, st, ctx.id);
    }
    // Notified (or spuriously woken): re-acquire the mutex, contending.
    loop {
        let mut st = exec.lock();
        secondary_check(exec, &st);
        let mid = resolve(&mut st, exec, mx, ObjKind::Mutex);
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(ctx.id);
            let c = st.mutexes[mid].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedMutex(mid);
        schedule(exec, st, ctx.id);
    }
}

/// `notify_one` and `notify_all` both wake every waiter: std condvars may
/// wake spuriously, so waking extra threads only explores behaviors the
/// real primitive is already allowed to produce.
pub(crate) fn condvar_notify(ctx: &Ctx, cv: &ObjId) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let cid = resolve(&mut st, exec, cv, ObjKind::Condvar);
    let waiters = std::mem::take(&mut st.condvars[cid]);
    for t in waiters {
        if st.threads[t].status == Status::BlockedCondvar(cid) {
            st.threads[t].status = Status::Runnable;
        }
    }
    drop(st);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------- atomics

/// Scheduling point + happens-before bookkeeping for one atomic access.
/// `acquire`/`release` reflect the user's `Ordering`; `Relaxed` transfers
/// no clock, which is exactly what lets the race detector flag it.
pub(crate) fn atomic_access(ctx: &Ctx, id: &ObjId, acquire: bool, release: bool) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let aid = resolve(&mut st, exec, id, ObjKind::Atomic);
    if acquire {
        let c = st.atomics[aid].clone();
        clock_join(&mut st.threads[ctx.id].clock, &c);
    }
    if release {
        let tc = st.threads[ctx.id].clock.clone();
        clock_join(&mut st.atomics[aid], &tc);
    }
}

/// Happens-before bookkeeping only, no scheduling point. Used by RMW ops
/// that already took their [`step`] and apply the success/failure ordering
/// once the outcome is known.
pub(crate) fn atomic_hb(ctx: &Ctx, id: &ObjId, acquire: bool, release: bool) {
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    let aid = resolve(&mut st, exec, id, ObjKind::Atomic);
    if acquire {
        let c = st.atomics[aid].clone();
        clock_join(&mut st.threads[ctx.id].clock, &c);
    }
    if release {
        let tc = st.threads[ctx.id].clock.clone();
        clock_join(&mut st.atomics[aid], &tc);
    }
}

// ------------------------------------------------------------ UnsafeCell

/// Scheduling point + vector-clock race check for one `UnsafeCell` access.
pub(crate) fn cell_access(ctx: &Ctx, id: &ObjId, write: bool) {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let cid = resolve(&mut st, exec, id, ObjKind::Cell);
    let me = ctx.id;
    let my_clock = st.threads[me].clock.clone();
    let rec = &mut st.cells[cid];
    let mut race: Option<String> = None;
    if let Some((writer, wc)) = &rec.last_write {
        if *writer != me && !clock_leq(wc, &my_clock) {
            race = Some(format!(
                "data race on UnsafeCell: thread {me} {} concurrently with thread {writer}'s write",
                if write { "writes" } else { "reads" }
            ));
        }
    }
    if write && race.is_none() {
        for (reader, rc) in &rec.reads {
            if *reader != me && !clock_leq(rc, &my_clock) {
                race = Some(format!(
                    "data race on UnsafeCell: thread {me} writes concurrently with thread {reader}'s read"
                ));
                break;
            }
        }
    }
    if let Some(msg) = race {
        fail(exec, st, msg);
    }
    if write {
        rec.reads.clear();
        rec.last_write = Some((me, my_clock));
    } else {
        rec.reads.retain(|(t, _)| *t != me);
        rec.reads.push((me, my_clock));
    }
}

// ---------------------------------------------------------------- threads

/// Register a child thread (happens-before edge from the parent) and
/// return its id. The caller then spawns the real thread.
pub(crate) fn register_thread(ctx: &Ctx) -> usize {
    step(ctx);
    let exec = &*ctx.exec;
    let mut st = exec.lock();
    secondary_check(exec, &st);
    let id = st.threads.len();
    let mut clock = st.threads[ctx.id].clock.clone();
    if clock.len() <= id {
        clock.resize(id + 1, 0);
    }
    clock[id] = 1;
    st.threads.push(ThreadRec {
        status: Status::Runnable,
        clock,
    });
    id
}

/// Entry point of a controlled child thread: install the context and park
/// until first scheduled.
pub(crate) fn enter_thread(exec: &Arc<Execution>, id: usize) {
    set_ctx(Some(Ctx {
        exec: Arc::clone(exec),
        id,
    }));
    let st = exec.lock();
    wait_scheduled(exec, st, id);
}

/// Exit path of a controlled thread (also runs after a panic, so it must
/// never panic itself): mark finished, wake joiners, hand the baton on.
pub(crate) fn exit_thread(exec: &Arc<Execution>, id: usize) {
    set_ctx(None);
    let mut st = exec.lock();
    st.threads[id].status = Status::Finished;
    st.finished += 1;
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedJoin(id) {
            t.status = Status::Runnable;
        }
    }
    if st.finished == st.threads.len() || st.failed.is_some() {
        drop(st);
        exec.cv.notify_all();
        return;
    }
    match pick_next(&mut st, id) {
        Err(msg) => {
            if st.failed.is_none() {
                st.failed = Some(msg);
            }
        }
        Ok(Some(next)) => st.current = next,
        Ok(None) => {}
    }
    drop(st);
    exec.cv.notify_all();
}

/// Block until `target` finishes, then join its clock into the caller's.
pub(crate) fn join_thread(ctx: &Ctx, target: usize) {
    step(ctx);
    loop {
        let exec = &*ctx.exec;
        let mut st = exec.lock();
        secondary_check(exec, &st);
        if st.threads[target].status == Status::Finished {
            let c = st.threads[target].clock.clone();
            clock_join(&mut st.threads[ctx.id].clock, &c);
            return;
        }
        st.threads[ctx.id].status = Status::BlockedJoin(target);
        schedule(exec, st, ctx.id);
    }
}

// ----------------------------------------------------------------- driver

/// Record a panic payload as the primary model failure, unless a failure
/// is already recorded or the payload is the secondary-unwind marker.
pub(crate) fn record_failure(exec: &Execution, payload: &(dyn std::any::Any + Send)) {
    let msg = panic_message(payload);
    let mut st = exec.lock();
    if st.failed.is_none() && !msg.starts_with("loom: unwinding") {
        st.failed = Some(msg);
    }
    drop(st);
    exec.cv.notify_all();
}

pub(crate) struct RunOutcome {
    /// `(enabled_len, chosen)` per decision, in order.
    pub decisions: Vec<(usize, usize)>,
    /// Chosen thread id per decision (for failure traces).
    pub trace: Vec<usize>,
    pub failed: Option<String>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

pub(crate) fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    replay: Vec<usize>,
    preemption_bound: usize,
    max_steps: usize,
) -> RunOutcome {
    let exec = Arc::new(Execution::new(replay, preemption_bound, max_steps));
    {
        let mut st = exec.lock();
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock: vec![1],
        });
        st.current = 0;
    }
    let exec0 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("loom-root".into())
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec0),
                id: 0,
            }));
            let result = catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(payload) = result {
                let msg = panic_message(&*payload);
                let mut st = exec0.lock();
                if st.failed.is_none() && !msg.starts_with("loom: unwinding") {
                    st.failed = Some(msg);
                }
                drop(st);
                exec0.cv.notify_all();
            }
            exit_thread(&exec0, 0);
        })
        .expect("spawn loom root thread");
    let _ = root.join();
    // Child wrapper threads may still be draining; join them all so the
    // next execution starts from a quiescent process.
    loop {
        let drained: Vec<std::thread::JoinHandle<()>> = {
            let mut h = match exec.handles.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            h.drain(..).collect()
        };
        if drained.is_empty() {
            break;
        }
        for h in drained {
            let _ = h.join();
        }
    }
    let st = exec.lock();
    RunOutcome {
        decisions: st
            .decisions
            .iter()
            .map(|d| (d.enabled.len(), d.chosen))
            .collect(),
        trace: st.decisions.iter().map(|d| d.enabled[d.chosen]).collect(),
        failed: st.failed.clone(),
    }
}
