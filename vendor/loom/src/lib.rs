//! Offline, in-workspace stand-in for the [`loom`] concurrency model
//! checker.
//!
//! [`model`] runs a closure under a deterministic scheduler that
//! systematically enumerates thread interleavings (depth-first over
//! scheduling decisions, with CHESS-style preemption bounding) and checks
//! every explored execution for:
//!
//! * **data races** on [`cell::UnsafeCell`] accesses, via vector-clock
//!   happens-before tracking in which `Ordering::Relaxed` establishes no
//!   edge — so an under-synchronized publish is caught even though the
//!   observed *value* would be correct under sequential consistency;
//! * **deadlocks** (every live thread blocked on a mutex, condvar wait
//!   with no future notify, or join) — this is also how lost wakeups
//!   surface;
//! * **assertion failures / panics** in the model closure on *any*
//!   explored interleaving, reported with the failing schedule.
//!
//! ## The value model
//!
//! Under the default [`ValueModel::Weak`] semantics, atomic *values* are
//! weak-memory: each location carries a modification order, and which
//! store a load observes is itself an explored decision, constrained by
//! coherence, release/acquire synchronization and the `SeqCst` total
//! order — so a `Relaxed` load can legally return a stale value, exactly
//! as real hardware permits. [`ValueModel::SeqCstValues`] restores the
//! historical every-load-sees-the-newest-store semantics (useful for
//! comparing the two explorations; the weak space is a strict superset).
//! See the crate's `rt` module docs and DESIGN.md "Memory model" for the
//! precise statement of what is and is not modeled.
//!
//! ## Fidelity limits (vs. real `loom`)
//!
//! The exploration is bounded (preemption bound + staleness bound +
//! interleaving cap) rather than exhaustive-with-reduction;
//! [`Report::complete`] says whether the bounded space was fully
//! enumerated. RMWs always read the modification-order tail, stores are
//! never inserted before existing stores, `compare_exchange_weak` never
//! fails spuriously, loads cannot observe stores that have not executed
//! yet (no load buffering), and fences are not modeled.
//!
//! ## Usage
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let a2 = Arc::clone(&a);
//!     let t = loom::thread::spawn(move || {
//!         a2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```
//!
//! [`loom`]: https://docs.rs/loom

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::ValueModel;

use std::sync::Arc;

/// Spin-loop hints map to scheduler yields so that spin-wait loops make
/// progress visible to the bounded explorer instead of livelocking it.
pub mod hint {
    /// Shadow `std::hint::spin_loop`: yields to the model scheduler.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

/// What an exploration did. Returned by [`model`] / [`Builder::check`]
/// when no interleaving failed (failures panic instead).
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub interleavings: usize,
    /// `true` if the bounded schedule space was exhausted; `false` if the
    /// run stopped at [`Builder::max_interleavings`] first.
    pub complete: bool,
}

/// Exploration configuration. [`model`] uses the defaults.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per execution
    /// (switches away from a thread that could have kept running).
    /// Switches forced by blocking are always free. CHESS-style results
    /// show most concurrency bugs need very few preemptions.
    pub preemption_bound: usize,
    /// Stop after this many interleavings even if alternatives remain
    /// (the [`Report`] then has `complete == false`).
    pub max_interleavings: usize,
    /// Per-execution step limit; exceeding it fails the model (livelock
    /// guard).
    pub max_steps: usize,
    /// Which atomic value semantics to enumerate (default
    /// [`ValueModel::Weak`]).
    pub value_model: ValueModel,
    /// Per-(thread, location) cap on *stale* reads (reads that do not
    /// observe the newest store). Without it an unsynchronized spin loop
    /// could legally read stale forever and the depth-first exploration
    /// would diverge — this is the staleness analogue of the preemption
    /// bound. Only meaningful under [`ValueModel::Weak`].
    pub staleness_bound: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: 3,
            max_interleavings: 20_000,
            max_steps: 100_000,
            value_model: ValueModel::Weak,
            staleness_bound: 2,
        }
    }
}

impl Builder {
    /// A builder with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explore `f` under every schedule within the bounds, depth-first.
    ///
    /// Replays work by re-running `f` from scratch with a recorded prefix
    /// of decisions, then taking the first untried alternative at the
    /// deepest decision point — the classic stateless model-checking loop,
    /// which requires `f` to be deterministic apart from scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any explored interleaving fails (data race, deadlock,
    /// over-long execution, or a panic inside `f`), with the failing
    /// schedule in the message.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let config = rt::RunConfig {
            preemption_bound: self.preemption_bound,
            max_steps: self.max_steps,
            value_model: self.value_model,
            staleness_bound: self.staleness_bound,
        };
        let mut replay: Vec<usize> = Vec::new();
        let mut interleavings = 0usize;
        loop {
            let outcome = rt::run_once(Arc::clone(&f), std::mem::take(&mut replay), config);
            interleavings += 1;
            if let Some(msg) = outcome.failed {
                panic!(
                    "loom: model failed on interleaving #{interleavings}: {msg}\n\
                     failing schedule:\n{}",
                    outcome.trace.join("\n")
                );
            }
            if interleavings >= self.max_interleavings {
                return Report {
                    interleavings,
                    complete: false,
                };
            }
            // Backtrack to the deepest decision on this path that still
            // has an untried alternative; DFS order guarantees everything
            // deeper is exhausted.
            let mut next: Option<Vec<usize>> = None;
            for i in (0..outcome.decisions.len()).rev() {
                let (enabled_len, chosen) = outcome.decisions[i];
                if chosen + 1 < enabled_len {
                    let mut prefix: Vec<usize> =
                        outcome.decisions[..i].iter().map(|&(_, c)| c).collect();
                    prefix.push(chosen + 1);
                    next = Some(prefix);
                    break;
                }
            }
            match next {
                Some(prefix) => replay = prefix,
                None => {
                    return Report {
                        interleavings,
                        complete: true,
                    }
                }
            }
        }
    }
}

/// Explore `f` under the default [`Builder`] bounds. See [`Builder::check`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
