//! Self-tests for the vendored model checker: each known-good pattern must
//! pass, and each seeded concurrency bug must be caught with the right
//! diagnostic.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

#[test]
fn concurrent_increments_explore_multiple_interleavings() {
    let report = loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = loom::thread::spawn(move || {
            a2.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete, "bounded space should be exhausted");
    assert!(
        report.interleavings > 1,
        "two racing threads must produce several schedules, got {}",
        report.interleavings
    );
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        loom::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = loom::thread::spawn(move || {
                a2.fetch_add(2, Ordering::SeqCst);
            });
            a.fetch_add(3, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 5);
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first.interleavings, second.interleavings);
    assert_eq!(first.complete, second.complete);
}

#[test]
#[should_panic(expected = "data race")]
fn relaxed_publish_is_a_data_race() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 42 });
            // BUG: Relaxed creates no happens-before edge for the write.
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            let v = cell.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
}

#[test]
fn release_acquire_publish_is_clean() {
    let report = loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            let v = cell.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_order_deadlocks() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        drop(_gb);
        drop(_ga);
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_is_detected_as_deadlock() {
    loom::model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            // BUG: the predicate check and the wait are separate critical
            // sections. A notify landing in between is lost, and the wait
            // then sleeps forever.
            let ready = { *s2.0.lock().unwrap() };
            if !ready {
                let guard = s2.0.lock().unwrap();
                let _guard = s2.1.wait(guard).unwrap();
            }
        });
        {
            let mut done = state.0.lock().unwrap();
            *done = true;
        }
        // BUG: notify after releasing the lock, racing the waiter's check.
        state.1.notify_one();
        t.join().unwrap();
    });
}

#[test]
fn predicate_loop_wait_is_clean() {
    let report = loom::model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut guard = s2.0.lock().unwrap();
            while !*guard {
                guard = s2.1.wait(guard).unwrap();
            }
        });
        {
            let mut done = state.0.lock().unwrap();
            *done = true;
            drop(done);
            state.1.notify_one();
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn spawn_and_join_create_happens_before() {
    let report = loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        cell.with_mut(|p| unsafe { *p = 7 });
        let c2 = Arc::clone(&cell);
        let t = loom::thread::spawn(move || {
            // Visible via the spawn edge; no atomics needed.
            let v = c2.with(|p| unsafe { *p });
            assert_eq!(v, 7);
            c2.with_mut(|p| unsafe { *p = 8 });
        });
        t.join().unwrap();
        // Visible via the join edge.
        let v = cell.with(|p| unsafe { *p });
        assert_eq!(v, 8);
    });
    assert!(report.complete);
}

#[test]
fn yielding_spin_loop_terminates() {
    let report = loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        while flag.load(Ordering::SeqCst) == 0 {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
    assert!(report.interleavings >= 1);
}

#[test]
#[should_panic(expected = "assertion")]
fn model_assertions_are_checked_on_every_interleaving() {
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = loom::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
        });
        // BUG: holds only on schedules where the child has not run yet.
        assert_eq!(a.load(Ordering::SeqCst), 0);
        t.join().unwrap();
    });
}

#[test]
fn passthrough_outside_model_behaves_like_std() {
    // Outside loom::model the shadow types must act like the std ones so a
    // `--features loom-check` build still passes the regular test suite.
    let m = Mutex::new(5u32);
    *m.lock().unwrap() = 6;
    assert_eq!(*m.lock().unwrap(), 6);

    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(1, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Acquire), 2);

    let c = UnsafeCell::new(3u32);
    c.with_mut(|p| unsafe { *p = 4 });
    assert_eq!(c.with(|p| unsafe { *p }), 4);

    let t = loom::thread::spawn(|| 41 + 1);
    assert_eq!(t.join().unwrap(), 42);
}
