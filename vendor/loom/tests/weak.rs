//! Value-model oracle tests: the weak-memory explorer must admit every
//! outcome the SC-value explorer admits (strict-superset oracle), must
//! admit strictly more on the classic store-buffering litmus, and must
//! still respect coherence and release/acquire synchronization at the
//! value level. Failure traces are deterministic and name stale reads.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::ValueModel;
use std::collections::BTreeSet;
use std::sync::Arc as StdArc;
use std::sync::Mutex as StdMutex;

/// Explore the classic store-buffering shape —
///
/// ```text
/// T1: x.store(1, store); r1 = y.load(load)
/// T2: y.store(1, store); r2 = x.load(load)
/// ```
///
/// — and collect every `(r1, r2)` outcome observed across the bounded
/// exploration. The sink lives outside the model (its contents never feed
/// back into the closure, so determinism is preserved).
fn sb_outcomes(store: Ordering, load: Ordering, model: ValueModel) -> BTreeSet<(u64, u64)> {
    let outcomes: StdArc<StdMutex<BTreeSet<(u64, u64)>>> =
        StdArc::new(StdMutex::new(BTreeSet::new()));
    let sink = StdArc::clone(&outcomes);
    let mut builder = loom::Builder::new();
    builder.value_model = model;
    let report = builder.check(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, store);
            y2.load(load)
        });
        y.store(1, store);
        let r2 = x.load(load);
        let r1 = t.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    assert!(report.complete, "litmus exploration must be exhaustive");
    let set = outcomes.lock().unwrap().clone();
    set
}

/// Message passing: `T1: x.store(42, Relaxed); flag.store(1, flag_store)`,
/// `T2: if flag.load(flag_load) == 1 { record x.load(Relaxed) }`. Returns
/// the set of payload values observed after seeing the flag.
fn mp_payloads(flag_store: Ordering, flag_load: Ordering) -> BTreeSet<u64> {
    let outcomes: StdArc<StdMutex<BTreeSet<u64>>> = StdArc::new(StdMutex::new(BTreeSet::new()));
    let sink = StdArc::clone(&outcomes);
    let report = loom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (x2, flag2) = (Arc::clone(&x), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            x2.store(42, Ordering::Relaxed);
            flag2.store(1, flag_store);
        });
        if flag.load(flag_load) == 1 {
            sink.lock().unwrap().insert(x.load(Ordering::Relaxed));
        }
        t.join().unwrap();
    });
    assert!(report.complete);
    let set = outcomes.lock().unwrap().clone();
    set
}

#[test]
fn weak_admits_every_sc_value_outcome_on_store_buffering() {
    // Strict-superset oracle over the litmus family: whatever the old
    // SC-value semantics admitted, the weak semantics must admit too.
    for (store, load) in [
        (Ordering::Relaxed, Ordering::Relaxed),
        (Ordering::Release, Ordering::Relaxed),
        (Ordering::Release, Ordering::Acquire),
        (Ordering::SeqCst, Ordering::SeqCst),
    ] {
        let sc = sb_outcomes(store, load, ValueModel::SeqCstValues);
        let weak = sb_outcomes(store, load, ValueModel::Weak);
        assert!(
            sc.is_subset(&weak),
            "({store:?}, {load:?}): SC admits {sc:?} but weak admits only {weak:?}"
        );
    }
}

#[test]
fn weak_admits_strictly_more_on_store_buffering() {
    // Release/acquire does not forbid store buffering: both loads may
    // legally miss the other thread's store. The SC-value explorer can
    // never produce (0, 0) — an interleaving cycle would be required.
    let sc = sb_outcomes(
        Ordering::Release,
        Ordering::Acquire,
        ValueModel::SeqCstValues,
    );
    let weak = sb_outcomes(Ordering::Release, Ordering::Acquire, ValueModel::Weak);
    assert!(!sc.contains(&(0, 0)), "SC values must forbid (0,0): {sc:?}");
    assert!(
        weak.contains(&(0, 0)),
        "weak memory must admit store buffering: {weak:?}"
    );
    assert!(sc.is_subset(&weak) && sc != weak, "strictly more: {weak:?}");
}

#[test]
fn seq_cst_forbids_store_buffering_even_under_weak_values() {
    // The SeqCst total order is what rules (0,0) out — and only SeqCst.
    let weak = sb_outcomes(Ordering::SeqCst, Ordering::SeqCst, ValueModel::Weak);
    assert!(
        !weak.contains(&(0, 0)),
        "SeqCst litmus leaked (0,0): {weak:?}"
    );
    assert_eq!(
        weak,
        sb_outcomes(Ordering::SeqCst, Ordering::SeqCst, ValueModel::SeqCstValues),
        "all-SeqCst weak exploration must collapse to the SC-value outcomes"
    );
}

#[test]
fn acquire_flag_makes_the_payload_visible() {
    // Message passing with a Release→Acquire flag edge: once the flag is
    // seen, coherence + the synchronized clock force the payload read to
    // observe the store, never the stale initial value.
    assert_eq!(
        mp_payloads(Ordering::Release, Ordering::Acquire),
        [42].into_iter().collect::<BTreeSet<u64>>()
    );
}

#[test]
fn relaxed_flag_leaks_the_stale_payload() {
    // Demote the flag edge to Relaxed and the stale payload is reachable:
    // this is exactly the class of bug the SC-value explorer missed.
    let seen = mp_payloads(Ordering::Relaxed, Ordering::Relaxed);
    assert!(
        seen.contains(&0),
        "stale payload must be reachable: {seen:?}"
    );
    assert!(
        seen.contains(&42),
        "fresh payload must stay reachable: {seen:?}"
    );
}

#[test]
fn coherence_forbids_backwards_reads() {
    // CoRR: two same-thread reads may both be stale, but never *go back*
    // in the modification order.
    let outcomes: StdArc<StdMutex<BTreeSet<(u64, u64)>>> =
        StdArc::new(StdMutex::new(BTreeSet::new()));
    let sink = StdArc::clone(&outcomes);
    let report = loom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = loom::thread::spawn(move || {
            let r1 = x2.load(Ordering::Relaxed);
            let r2 = x2.load(Ordering::Relaxed);
            (r1, r2)
        });
        x.store(1, Ordering::Relaxed);
        let pair = t.join().unwrap();
        sink.lock().unwrap().insert(pair);
    });
    assert!(report.complete);
    let seen = outcomes.lock().unwrap().clone();
    assert!(!seen.contains(&(1, 0)), "coherence violated: {seen:?}");
    assert!(seen.contains(&(0, 0)) && seen.contains(&(1, 1)), "{seen:?}");
}

#[test]
fn rmw_reads_the_tail_and_never_loses_increments() {
    // Concurrent relaxed fetch_adds still sum exactly: RMWs read the
    // modification-order tail (documented under-approximation), so
    // atomicity of the increment is preserved even with no ordering.
    let report = loom::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = loom::thread::spawn(move || {
            a2.fetch_add(1, Ordering::Relaxed);
        });
        a.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        // The final load must see both increments: it happens-after both
        // threads via join, so coherence pins it to the tail.
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    assert!(report.complete);
}

/// Run a model that fails under weak semantics and return the panic
/// message (which embeds the rendered counterexample schedule).
fn failing_sb_message() -> String {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = loom::thread::spawn(move || {
                x2.store(1, Ordering::Release);
                y2.load(Ordering::Acquire)
            });
            y.store(1, Ordering::Release);
            let r2 = x.load(Ordering::Acquire);
            let r1 = t.join().unwrap();
            assert!(
                r1 != 0 || r2 != 0,
                "store buffering observed: both loads stale"
            );
        });
    });
    let payload = result.expect_err("the store-buffering assertion must be refuted");
    payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic message is a string")
}

#[test]
fn counterexample_traces_are_deterministic_and_name_the_stale_read() {
    let first = failing_sb_message();
    let second = failing_sb_message();
    assert_eq!(first, second, "counterexample must replay identically");
    assert!(
        first.contains("store buffering observed"),
        "message must carry the assertion: {first}"
    );
    assert!(
        first.contains("STALE"),
        "trace must name the stale read that produced the outcome: {first}"
    );
    assert!(
        first.contains("failing schedule"),
        "trace must include the schedule: {first}"
    );
}
