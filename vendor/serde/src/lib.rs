//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs with named fields and on enums with unit or named-field
//! variants, with JSON as the (only) data format. The traits serialize into
//! and out of an in-memory [`Value`] tree; the companion `serde_json` crate
//! renders and parses the JSON text.
//!
//! Unlike real serde there is no format abstraction (no `Serializer` /
//! `Deserializer` dance) — every consumer in this workspace is JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: integer forms are kept exact rather than routed through
/// `f64`, so 64-bit item ids survive a round-trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers, like JSON itself).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer (floats with
    /// zero fraction are accepted — JSON does not distinguish `1` and `1.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// An in-memory JSON document. Object keys keep insertion order so emitted
/// JSON matches field declaration order (like serde's derive).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered into a JSON [`Value`].
pub trait Serialize {
    /// Build the JSON value tree for `self`.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value tree.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

// A `Value` round-trips as itself, so code can parse a document, edit the
// tree in place and re-serialize it.
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Num(Number::U(i as u64)) } else { Value::Num(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            _ => Err(Error::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()), Ok(42));
        assert_eq!(i64::from_json_value(&(-7i64).to_json_value()), Ok(-7));
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()), Ok(1.5));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_json_value(&vec![1u32, 2, 3].to_json_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn number_coercions() {
        assert_eq!(Number::F(3.0).as_u64(), Some(3));
        assert_eq!(Number::F(3.5).as_u64(), None);
        assert_eq!(Number::U(u64::MAX).as_i64(), None);
        assert_eq!(Number::I(-1).as_u64(), None);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_json_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_json_value(&Value::Num(Number::U(1))).is_err());
        assert!(u8::from_json_value(&Value::Num(Number::U(300))).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json_value(), Value::Null);
        assert_eq!(Option::<u32>::from_json_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<u32>::from_json_value(&Value::Num(Number::U(5))),
            Ok(Some(5))
        );
    }
}
