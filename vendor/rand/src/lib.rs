//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the *minimal* subset of the `rand` 0.8 API that the
//! workspace actually uses: [`rngs::SmallRng`] (an xoshiro256++ generator),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic in the seed and platform-independent, which is
//! all the workload generators require. The exact values differ from the
//! real `rand` crate (different PRNG constants), but no test or experiment
//! in this workspace depends on `rand`'s specific stream — only on
//! determinism and on uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types that [`Rng::gen_range`] can sample from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `high > low` is the caller's duty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                debug_assert!(span > 0, "gen_range: empty range");
                // Multiply-shift (Lemire) rejection-free mapping; the bias is
                // ≤ span/2^64, far below anything the workloads can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample_range(rng, lo, hi); // full span, bias immaterial
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), the
    /// stand-in for `rand`'s `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling, as an extension trait.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` equivalent: the traits plus the bundled generators.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let x = rng.gen_range(0usize..10);
            counts[x] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
