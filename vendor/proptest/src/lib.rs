//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`Strategy`] trait over ranges, tuples and collections,
//! [`arbitrary::any`], `prop::collection::vec`, the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; re-run
//!   with the printed inputs to debug.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   module path and name, so failures reproduce across runs (similar to
//!   running proptest with a fixed `ProptestConfig::rng_seed`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: how to generate random values of a type.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate with a strategy derived from each value (dependent
        /// generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `f`; generation retries (up to a
        /// cap) until one passes.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()`: the canonical full-range strategy per type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            // Finite values only: uniform in sign and magnitude-of-exponent,
            // which is what the workspace's tests want from `any::<f64>()`.
            let m: f64 = rng.gen();
            let e: i32 = rng.gen_range(0u32..64) as i32 - 32;
            let s = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            s * m * 2f64.powi(e)
        }
    }

    /// Strategy for [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `len` elements of `elem`, `len` drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-running machinery used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Deterministic RNG for a named test: failures reproduce across runs.
    pub fn rng_for(test_name: &str) -> SmallRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// The macro-facing prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u32..10, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            // Evaluate each strategy expression once, up front.
            $(let $arg = $strat;)+
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
            while __passed < __cfg.cases {
                __attempts += 1;
                if __attempts > __max_attempts {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} attempts for {} passes)",
                        stringify!($name), __attempts, __passed
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let __outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __passed += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed: {}\ninputs:{}",
                            stringify!($name), msg, __inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for &x in &v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn tuples_and_map(
            pair in (0u32..5, 10u32..20),
            mapped in (0u64..100).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("some::test");
        let mut b = crate::test_runner::rng_for("some::test");
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
