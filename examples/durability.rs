//! Crash-safe ingest: a background durability service checkpoints the
//! pipeline while it streams, the process "dies", and a fresh process
//! restores the newest generation and replays only the unacknowledged tail.
//!
//! The service writes **delta frames** (only buckets dirtied since the last
//! full frame) on a timer and compacts the chain back into a full frame
//! every few deltas, so the hot path never stops for a full snapshot. Every
//! delta carries the CRC of its base frame; restore verifies the chain and
//! falls back a generation if any link is torn.
//!
//! ```sh
//! cargo run --release --example durability
//! ```

use significant_items::core_::checkpoint::Checkpointer;
use significant_items::core_::durability::{DurabilityPolicy, DurabilityService};
use significant_items::prelude::*;
use significant_items::workloads::{generate, StreamSpec};
use std::time::Duration;

const SHARDS: usize = 2;
const CRASH_AFTER: usize = 18; // periods ingested before the "crash"

fn main() {
    let spec = StreamSpec {
        name: "billing-stream",
        total_records: 240_000,
        distinct_items: 20_000,
        periods: 24,
        zipf_skew: 1.1,
        burst_fraction: 0.2,
        periodic_fraction: 0.1,
        seed: 4242,
    };
    let stream = generate(&spec);
    let n_per_period = stream.layout.records_per_period().unwrap();
    let config = LtcConfig::builder()
        .buckets(1_024)
        .cells_per_bucket(8)
        .weights(Weights::new(1.0, 10.0))
        .records_per_period(n_per_period / SHARDS as u64)
        .build();

    let dir = std::env::temp_dir().join(format!("ltc-durability-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // ---- Phase 1: ingest with background checkpoints ---------------------
    let mut pipeline = ParallelLtc::new(config, SHARDS);
    let service = DurabilityService::attach(
        &pipeline,
        Checkpointer::new(&dir).expect("store"),
        DurabilityPolicy {
            interval: Duration::from_millis(20), // background tick cadence
            full_every: 4,                       // compact after 4 deltas
            ..DurabilityPolicy::default()
        },
    )
    .expect("durability service");

    // The upstream log is the stream itself: a checkpoint acknowledges a
    // period prefix, and after a crash the operator replays the rest. We
    // quiesce at each boundary and ask for one explicit checkpoint so the
    // acknowledged prefix is exact; the timer keeps saving between them.
    let mut acked_period = None;
    for (period, records) in stream.periods().take(CRASH_AFTER).enumerate() {
        pipeline.insert_batch(records);
        pipeline.end_period().expect("healthy pipeline");
        pipeline.sync().expect("healthy pipeline");
        let generation = service.checkpoint_now().expect("checkpoint");
        acked_period = Some(period);
        if period % 6 == 5 {
            println!("period {period:>2}: acknowledged as generation {generation}");
        }
    }
    let status = service.status();
    println!(
        "\nservice at crash time: {} full frames, {} deltas, {} compactions, chain length {}",
        status.full_saves, status.delta_saves, status.compactions, status.chain_length,
    );

    // ---- Phase 2: crash --------------------------------------------------
    // The service dies with the process; nothing below this line sees the
    // old pipeline. Whatever reached the store directory is all that
    // survives.
    drop(service);
    drop(pipeline);
    let acked = acked_period.expect("at least one checkpoint");
    println!("simulated crash after period {}\n", CRASH_AFTER - 1);

    // ---- Phase 3: restore + replay the unacknowledged tail ---------------
    let mut recovered = ParallelLtc::new(config, SHARDS);
    let generation = recovered
        .restore_from(&Checkpointer::new(&dir).expect("store"))
        .expect("a durable generation");
    println!("restored generation {generation} (periods 0..={acked})");
    for records in stream.periods().skip(acked + 1) {
        recovered.insert_batch(records);
        recovered.end_period().expect("healthy pipeline");
    }
    recovered.finish().expect("healthy pipeline");

    // ---- Phase 4: verify top-k continuity --------------------------------
    // An uninterrupted run over the same stream must agree: restore is
    // bit-exact and the replay is deterministic.
    let mut reference = ParallelLtc::new(config, SHARDS);
    for records in stream.periods() {
        reference.insert_batch(records);
        reference.end_period().expect("healthy pipeline");
    }
    reference.finish().expect("healthy pipeline");

    let recovered_top = recovered.top_k(10);
    let reference_top = reference.top_k(10);
    println!("\ntop-10 after crash + recovery vs uninterrupted run:");
    for (rank, (r, u)) in recovered_top.iter().zip(&reference_top).enumerate() {
        println!(
            "  #{:<2} recovered: item {:<12} ŝ = {:<8} uninterrupted: item {:<12} ŝ = {}",
            rank + 1,
            r.id,
            r.value,
            u.id,
            u.value
        );
    }
    assert_eq!(
        recovered_top, reference_top,
        "recovery must preserve the query state"
    );
    println!("\ntop-k identical: crash + restore + replay lost nothing.");
    let _ = std::fs::remove_dir_all(&dir);
}
