//! Dump the parallel runtime's observability surface: stream a workload,
//! then print the Prometheus text exposition, the JSON document, the
//! drained event journal, the per-shard health report, and write a
//! Chrome trace-event file plus a folded-stack dump from the drained
//! span rings.
//!
//! ```sh
//! cargo run --example obs_dump
//! # With a seeded worker panic, to see fault events and recovery metrics:
//! cargo run --example obs_dump --features failpoints
//! ```
//!
//! The exposition is checked with
//! [`ltc_core::obs::validate_exposition`] and the trace file with
//! [`ltc_core::obs::validate_chrome_trace`] +
//! [`ltc_core::obs::trace_export::single_causal_tree`] before printing,
//! so this binary doubles as an end-to-end format check: it proves at
//! least one batch's enqueue → worker process → barrier-wait →
//! checkpoint-publish spans form a single causal tree across the SPSC
//! boundary.

use ltc_common::{SignificanceQuery, Weights};
use ltc_core::checkpoint::Checkpointer;
use ltc_core::obs::trace::names;
use ltc_core::obs::trace_export::single_causal_tree;
use ltc_core::obs::{
    render_chrome_trace, render_events_json, render_folded, validate_chrome_trace,
    validate_exposition,
};
use ltc_core::{LtcConfig, ParallelLtc};

fn main() {
    let config = LtcConfig::builder()
        .buckets(256)
        .cells_per_bucket(8)
        .weights(Weights::BALANCED)
        .records_per_period(10_000)
        .seed(42)
        .build();
    let mut runtime = ParallelLtc::new(config, 4);

    // With `--features failpoints`, the second period's first batch panics
    // its worker: the dump then shows the fault event, the restart counter
    // and the rollback — the exact trail an operator would follow.
    #[cfg(feature = "failpoints")]
    {
        use ltc_core::failpoint::{self, FailAction, FireSpec};
        failpoint::configure("worker::batch", FailAction::Panic, FireSpec::nth(60));
        eprintln!("[failpoints] worker::batch will panic once mid-stream");
    }

    // Three periods of a skewed synthetic stream: a few heavy items on top
    // of a long tail of one-off ids.
    let mut tail = 1_000_000u64;
    for period in 0..3u64 {
        for i in 0..10_000u64 {
            let id = if i % 5 == 0 {
                i % 40 // heavy ids recur every period
            } else {
                tail = tail.wrapping_add(1);
                tail
            };
            runtime.insert(id);
        }
        runtime
            .end_period()
            .unwrap_or_else(|e| panic!("period {period}: {e}"));
    }
    runtime.finish().expect("healthy runtime");

    // Checkpoint once so the save-latency metrics are populated too.
    let dir = std::env::temp_dir().join(format!("ltc-obs-dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = Checkpointer::new(&dir).expect("checkpointer");
    let generation = runtime.checkpoint_to(&store).expect("checkpoint");

    let obs = runtime.obs().expect("observability is on by default");

    let text = obs.render_prometheus();
    validate_exposition(&text).expect("exposition must be well-formed");
    println!("==== Prometheus text exposition (validated) ====");
    print!("{text}");

    println!("\n==== JSON document ====");
    println!("{}", obs.render_json());

    println!("\n==== Drained journal events ====");
    println!("{}", render_events_json(&obs.journal().drain()));

    println!("\n==== Per-shard health ====");
    for (shard, health) in runtime.health().iter().enumerate() {
        println!("shard {shard}: {health:?}");
    }

    println!("\n==== Merged stats ====");
    println!("{}", runtime.stats());

    // Drain the span rings and publish them two ways: Chrome trace-event
    // JSON (load in chrome://tracing or Perfetto) and folded stacks (feed
    // to flamegraph.pl). Both are validated before they are written.
    let spans = obs.drain_spans();
    let tracks = obs.tracer().map(|t| t.tracks()).unwrap_or_default();
    let chrome = render_chrome_trace(&spans, &tracks);
    validate_chrome_trace(&chrome).expect("chrome trace must be well-formed");
    let tree = single_causal_tree(
        &spans,
        &[
            names::BATCH_ENQUEUE,
            names::BATCH_PROCESS,
            names::BARRIER_WAIT,
            names::CHECKPOINT_SAVE,
        ],
    )
    .expect("one batch must form a causal tree through the checkpoint");
    let folded = render_folded(&spans);
    let trace_path =
        std::env::temp_dir().join(format!("ltc-obs-dump-{}.trace.json", std::process::id()));
    let folded_path =
        std::env::temp_dir().join(format!("ltc-obs-dump-{}.folded", std::process::id()));
    std::fs::write(&trace_path, &chrome).expect("write chrome trace");
    std::fs::write(&folded_path, &folded).expect("write folded stacks");

    println!("\n==== Span trace ====");
    println!(
        "{} spans drained; trace {tree} forms a causal tree enqueue -> process -> barrier -> checkpoint",
        spans.len()
    );
    println!("chrome trace (validated): {}", trace_path.display());
    println!("folded stacks:            {}", folded_path.display());

    println!(
        "\ncheckpoint generation {generation} published to {}",
        dir.display()
    );
    println!("top-3: {:?}", runtime.top_k(3));
    let _ = std::fs::remove_dir_all(&dir);
}
