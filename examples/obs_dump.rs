//! Dump the parallel runtime's observability surface: stream a workload,
//! then print the Prometheus text exposition, the JSON document, the
//! drained event journal, and the per-shard health report.
//!
//! ```sh
//! cargo run --example obs_dump
//! # With a seeded worker panic, to see fault events and recovery metrics:
//! cargo run --example obs_dump --features failpoints
//! ```
//!
//! The exposition is checked with
//! [`ltc_core::obs::validate_exposition`] before printing, so this binary
//! doubles as an end-to-end format check.

use ltc_common::{SignificanceQuery, Weights};
use ltc_core::checkpoint::Checkpointer;
use ltc_core::obs::{render_events_json, validate_exposition};
use ltc_core::{LtcConfig, ParallelLtc};

fn main() {
    let config = LtcConfig::builder()
        .buckets(256)
        .cells_per_bucket(8)
        .weights(Weights::BALANCED)
        .records_per_period(10_000)
        .seed(42)
        .build();
    let mut runtime = ParallelLtc::new(config, 4);

    // With `--features failpoints`, the second period's first batch panics
    // its worker: the dump then shows the fault event, the restart counter
    // and the rollback — the exact trail an operator would follow.
    #[cfg(feature = "failpoints")]
    {
        use ltc_core::failpoint::{self, FailAction, FireSpec};
        failpoint::configure("worker::batch", FailAction::Panic, FireSpec::nth(60));
        eprintln!("[failpoints] worker::batch will panic once mid-stream");
    }

    // Three periods of a skewed synthetic stream: a few heavy items on top
    // of a long tail of one-off ids.
    let mut tail = 1_000_000u64;
    for period in 0..3u64 {
        for i in 0..10_000u64 {
            let id = if i % 5 == 0 {
                i % 40 // heavy ids recur every period
            } else {
                tail = tail.wrapping_add(1);
                tail
            };
            runtime.insert(id);
        }
        runtime
            .end_period()
            .unwrap_or_else(|e| panic!("period {period}: {e}"));
    }
    runtime.finish().expect("healthy runtime");

    // Checkpoint once so the save-latency metrics are populated too.
    let dir = std::env::temp_dir().join(format!("ltc-obs-dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = Checkpointer::new(&dir).expect("checkpointer");
    let generation = runtime.checkpoint_to(&store).expect("checkpoint");

    let obs = runtime.obs().expect("observability is on by default");

    let text = obs.render_prometheus();
    validate_exposition(&text).expect("exposition must be well-formed");
    println!("==== Prometheus text exposition (validated) ====");
    print!("{text}");

    println!("\n==== JSON document ====");
    println!("{}", obs.render_json());

    println!("\n==== Drained journal events ====");
    println!("{}", render_events_json(&obs.journal().drain()));

    println!("\n==== Per-shard health ====");
    for (shard, health) in runtime.health().iter().enumerate() {
        println!("shard {shard}: {health:?}");
    }

    println!("\n==== Merged stats ====");
    println!("{}", runtime.stats());

    println!(
        "\ncheckpoint generation {generation} published to {}",
        dir.display()
    );
    println!("top-3: {:?}", runtime.top_k(3));
    let _ = std::fs::remove_dir_all(&dir);
}
