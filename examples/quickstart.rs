//! Quickstart: track the top-k significant items of a stream with LTC.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The stream mixes three behaviours so frequency and persistency diverge:
//! a *steady* item (modest rate, every period), a *burst* item (huge rate,
//! one period), and background noise. Watch how the α:β weights decide
//! which of the two "interesting" items ranks first.

use significant_items::prelude::*;

fn build_ltc(weights: Weights) -> Ltc {
    Ltc::new(
        LtcConfig::builder()
            .buckets(256) // 256×8 cells ≈ 32 KB under the paper's model
            .cells_per_bucket(8)
            .weights(weights)
            .records_per_period(1_000)
            .build(),
    )
}

fn run(weights: Weights) -> Vec<Estimate> {
    let mut ltc = build_ltc(weights);
    let periods = 20u64;
    for period in 0..periods {
        for i in 0..1_000u64 {
            let id = match i {
                // STEADY (id 1): 30 occurrences in every period → f=600, p=20.
                0..=29 => 1,
                // BURST (id 2): 800 occurrences, period 7 only → f=800, p=1.
                30..=829 if period == 7 => 2,
                // Noise: fresh ids, one occurrence each.
                _ => 1_000_000 + period * 1_000 + i,
            };
            ltc.insert(id);
        }
        ltc.end_period();
    }
    ltc.finalize();
    ltc.top_k(2)
}

fn name_of(id: u64) -> &'static str {
    match id {
        1 => "STEADY (600 total, 20 periods)",
        2 => "BURST  (800 total,  1 period)",
        _ => "noise",
    }
}

fn main() {
    println!("LTC quickstart: significance s = α·frequency + β·persistency\n");
    for (label, weights) in [
        ("α:β = 1:0  (pure frequency)", Weights::FREQUENT),
        ("α:β = 1:1  (balanced)", Weights::BALANCED),
        ("α:β = 1:50 (persistency-heavy)", Weights::new(1.0, 50.0)),
    ] {
        println!("{label}");
        for (rank, e) in run(weights).iter().enumerate() {
            println!(
                "  #{rank} id={id:<9} ŝ={v:<8} {name}",
                rank = rank + 1,
                id = e.id,
                v = e.value,
                name = name_of(e.id)
            );
        }
        println!();
    }
    println!("The burst wins on raw frequency; the steady item wins once");
    println!("persistency carries weight — the distinction the significant-");
    println!("items problem exists to make.");
}
