//! Use case 1 of the paper (§I-A): DDoS-attack detection.
//!
//! "The attack traffic is often not only frequent but also persistent.
//! Therefore, finding significant items can somehow separate attack traffic
//! from normal traffic more accurately."
//!
//! We simulate a packet stream at a victim:
//! * a handful of **attack sources** sending steadily in every period;
//! * several **flash-crowd sources** (legitimate spikes) that send *more*
//!   packets than any attacker, but only for a couple of periods;
//! * a long tail of normal clients.
//!
//! A pure heavy-hitter detector (α:β = 1:0) flags the flash crowd; the
//! significance detector (α:β = 1:10) pins the attackers. We print both
//! confusion summaries.
//!
//! ```sh
//! cargo run --release --example ddos_detection
//! ```

use significant_items::prelude::*;
use std::collections::HashSet;

const PERIODS: u64 = 50;
const PACKETS_PER_PERIOD: u64 = 5_000;
const ATTACKERS: u64 = 8; // ids 1..=8
const FLASH_CROWD: u64 = 8; // ids 101..=108, active 2 periods each

fn simulate(weights: Weights) -> Vec<Estimate> {
    let mut ltc = Ltc::new(
        LtcConfig::builder()
            .buckets(512)
            .cells_per_bucket(8)
            .weights(weights)
            .records_per_period(PACKETS_PER_PERIOD)
            .build(),
    );

    // Simple deterministic LCG so the example needs no RNG dependency.
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    for period in 0..PERIODS {
        for i in 0..PACKETS_PER_PERIOD {
            let id = if i % 100 < 4 {
                // Attackers: 4% of traffic split over 8 sources, every period.
                1 + (rng() % ATTACKERS)
            } else if i % 100 < 24 && (period % 12) < 2 {
                // Flash crowd: 20% of traffic, but only 2 of every 12
                // periods — locally heavier than the attackers.
                101 + (rng() % FLASH_CROWD)
            } else {
                // Normal clients.
                10_000 + rng() % 50_000
            };
            ltc.insert(id);
        }
        ltc.end_period();
    }
    ltc.finalize();
    ltc.top_k(ATTACKERS as usize)
}

fn classify(reported: &[Estimate]) -> (usize, usize, usize) {
    let attackers: HashSet<u64> = (1..=ATTACKERS).collect();
    let crowd: HashSet<u64> = (101..=100 + FLASH_CROWD).collect();
    let mut hit = 0;
    let mut flash = 0;
    let mut other = 0;
    for e in reported {
        if attackers.contains(&e.id) {
            hit += 1;
        } else if crowd.contains(&e.id) {
            flash += 1;
        } else {
            other += 1;
        }
    }
    (hit, flash, other)
}

fn main() {
    println!(
        "DDoS detection: {ATTACKERS} persistent attackers vs {FLASH_CROWD} flash-crowd sources\n"
    );
    for (label, weights) in [
        ("heavy hitters only (α:β = 1:0)", Weights::FREQUENT),
        ("significance       (α:β = 1:10)", Weights::new(1.0, 10.0)),
    ] {
        let reported = simulate(weights);
        let (hit, flash, other) = classify(&reported);
        println!("{label}: top-{} report", reported.len());
        println!("  attackers caught : {hit}/{ATTACKERS}");
        println!("  flash-crowd false positives: {flash}");
        println!("  other false positives      : {other}\n");
    }
    println!("Frequency alone confuses the louder flash crowd with the attack;");
    println!("weighting persistency isolates the sources that never go away.");
}
