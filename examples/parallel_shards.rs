//! Scale-out: drive hash-partitioned LTC shards from worker threads and
//! merge a global top-k — the paper's data-center scenario ("if persistent
//! flows all over the data center can be efficiently identified, we can
//! make a global solution", use case 3) in miniature.
//!
//! Each worker owns one shard (an independent LTC) and one sub-stream; the
//! partition is by *item hash*, so all occurrences of a flow land in the
//! same shard and per-flow counts stay exact-ish. At the end, shards are
//! reassembled and queried globally.
//!
//! ```sh
//! cargo run --release --example parallel_shards
//! ```

use significant_items::core_::sharded::{shard_of_id, ShardedLtc};
use significant_items::core_::{Ltc, LtcConfig};
use significant_items::prelude::*;
use significant_items::workloads::{generate, StreamSpec};
use std::time::Instant;

const SHARDS: usize = 4;

fn main() {
    // One synthetic "data-center day": 2M packets, 100 periods.
    let spec = StreamSpec {
        name: "dc-day",
        total_records: 2_000_000,
        distinct_items: 200_000,
        periods: 100,
        zipf_skew: 1.05,
        burst_fraction: 0.35,
        periodic_fraction: 0.05,
        seed: 99,
    };
    println!("generating {} records…", spec.total_records);
    let stream = generate(&spec);
    let n_per_period = stream.layout.records_per_period().unwrap();

    let config = LtcConfig::builder()
        .buckets(1_024)
        .cells_per_bucket(8)
        .weights(Weights::new(1.0, 100.0))
        .records_per_period(n_per_period / SHARDS as u64)
        .build();

    // Pre-partition each period's records by owning shard.
    println!("partitioning into {SHARDS} shards…");
    let mut sub_streams: Vec<Vec<Vec<u64>>> = vec![Vec::new(); SHARDS];
    for period in stream.periods() {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
        for &id in period {
            buckets[shard_of_id(id, SHARDS)].push(id);
        }
        for (s, b) in buckets.into_iter().enumerate() {
            sub_streams[s].push(b);
        }
    }

    // Feed each shard in its own thread.
    let start = Instant::now();
    let sharded = ShardedLtc::new(config, SHARDS);
    let mut shards: Vec<Ltc> = sharded.into_shards();
    std::thread::scope(|scope| {
        for (shard, sub) in shards.iter_mut().zip(&sub_streams) {
            scope.spawn(move || {
                for period in sub {
                    for &id in period {
                        shard.insert(id);
                    }
                    shard.end_period();
                }
                shard.finalize();
            });
        }
    });
    let elapsed = start.elapsed();
    let sharded = ShardedLtc::from_shards(shards);

    println!(
        "processed {} records on {SHARDS} threads in {:.2?} ({:.1} Mops aggregate)\n",
        stream.len(),
        elapsed,
        stream.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("global top-10 significant flows (α=1, β=100):");
    for (rank, e) in sharded.top_k(10).iter().enumerate() {
        println!(
            "  #{:<2} flow {:<20} ŝ = {:>8}   (shard {})",
            rank + 1,
            e.id,
            e.value,
            shard_of_id(e.id, SHARDS)
        );
    }
    println!(
        "\ntotal memory across shards: {} KB",
        significant_items::common::MemoryUsage::memory_bytes(&sharded) / 1024
    );
}
