//! Scale-out: drive hash-partitioned LTC shards from worker threads and
//! merge a global top-k — the paper's data-center scenario ("if persistent
//! flows all over the data center can be efficiently identified, we can
//! make a global solution", use case 3) in miniature.
//!
//! `ParallelLtc` does the plumbing that used to live in this example by
//! hand: it owns one worker thread per shard, routes every record to the
//! shard owning its item hash (so per-flow counts stay exact-ish), hands
//! batches over bounded queues, and broadcasts `end_period` through an
//! epoch barrier so every shard closes the same period on the same records.
//! The result is bit-identical to feeding a single-threaded `ShardedLtc`.
//!
//! ```sh
//! cargo run --release --example parallel_shards
//! ```

use significant_items::core_::sharded::shard_of_id;
use significant_items::core_::{LtcConfig, ParallelLtc};
use significant_items::prelude::*;
use significant_items::workloads::{generate, StreamSpec};
use std::time::Instant;

const SHARDS: usize = 4;

fn main() {
    // One synthetic "data-center day": 2M packets, 100 periods.
    let spec = StreamSpec {
        name: "dc-day",
        total_records: 2_000_000,
        distinct_items: 200_000,
        periods: 100,
        zipf_skew: 1.05,
        burst_fraction: 0.35,
        periodic_fraction: 0.05,
        seed: 99,
    };
    println!("generating {} records…", spec.total_records);
    let stream = generate(&spec);
    let n_per_period = stream.layout.records_per_period().unwrap();

    let config = LtcConfig::builder()
        .buckets(1_024)
        .cells_per_bucket(8)
        .weights(Weights::new(1.0, 100.0))
        .records_per_period(n_per_period / SHARDS as u64)
        .build();

    // The ingest loop has the same shape as the single-threaded one: batch
    // in, period boundary, repeat. Routing, thread hand-off, and the
    // period barrier all happen behind `insert_batch`/`end_period`.
    let start = Instant::now();
    let mut pipeline = ParallelLtc::new(config, SHARDS);
    for period in stream.periods() {
        pipeline.insert_batch(period);
        pipeline.end_period().expect("no shard faults");
    }
    pipeline.finish().expect("no shard faults");
    let elapsed = start.elapsed();

    println!(
        "processed {} records on {SHARDS} worker threads in {:.2?} ({:.1} Mops)\n",
        stream.len(),
        elapsed,
        stream.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("global top-10 significant flows (α=1, β=100):");
    let live_top10 = pipeline.top_k(10);
    for (rank, e) in live_top10.iter().enumerate() {
        println!(
            "  #{:<2} flow {:<20} ŝ = {:>8}   (shard {})",
            rank + 1,
            e.id,
            e.value,
            shard_of_id(e.id, SHARDS)
        );
    }
    println!(
        "\ntotal memory across shards: {} KB",
        significant_items::common::MemoryUsage::memory_bytes(&pipeline) / 1024
    );

    // Workers join here; the reassembled single-threaded `ShardedLtc`
    // answers the same queries with no threads left running.
    let sharded = pipeline.into_sharded().expect("no shard faults");
    assert_eq!(sharded.top_k(10), live_top10);
    println!("reassembled ShardedLtc agrees with the live pipeline ✓");
}
