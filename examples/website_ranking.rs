//! Use case 2 of the paper (§I-A): website popularity ranking.
//!
//! "There are two key metrics of popularity: frequency and persistency …
//! both … should be considered in ranking the popularity/significance of a
//! website."
//!
//! This example exercises the **string-keyed** facade ([`KeyedLtc`]) and the
//! **time-driven** CLOCK: page-view events arrive with millisecond
//! timestamps, a period is one "day" (the pointer advances `(x−y)/t·m` slots
//! between events, §III-B1), and the ranking is queried live at the end of
//! every week.
//!
//! ```sh
//! cargo run --release --example website_ranking
//! ```

use significant_items::core_::LtcConfig;
use significant_items::prelude::*;

const DAY_MS: u64 = 86_400_000;
const DAYS: u64 = 28;

/// (site, daily views, active-day predicate).
type Site = (&'static str, u64, fn(u64) -> bool);

/// A tiny catalogue of sites.
fn catalogue() -> Vec<Site> {
    vec![
        ("evergreen.example", 400, |_| true),
        ("news-spike.example", 4_000, |d| (7..9).contains(&d)),
        ("weekly-zine.example", 900, |d| d % 7 == 0),
        ("steady-blog.example", 250, |_| true),
        ("flash-sale.example", 6_000, |d| d == 20),
    ]
}

fn main() {
    let ltc = Ltc::new(
        LtcConfig::builder()
            .buckets(256)
            .cells_per_bucket(8)
            .weights(Weights::new(1.0, 300.0)) // a persistent day ≈ 300 views
            .time_units_per_period(DAY_MS)
            .build(),
    );
    let mut ranking = KeyedLtc::new(ltc, 7);

    println!("Ranking websites by significance, one period = one day\n");
    for day in 0..DAYS {
        // Interleave the sites' views through the day in timestamp order.
        let mut events: Vec<(u64, &'static str)> = Vec::new();
        for (site, daily_views, active) in catalogue() {
            if active(day) {
                let step = DAY_MS / daily_views;
                events.extend((0..daily_views).map(|v| (day * DAY_MS + v * step, site)));
            }
        }
        events.sort_unstable_by_key(|&(t, _)| t);
        for (t, site) in events {
            ranking.insert_at(&site.to_string(), t);
        }
        ranking.end_period();

        if (day + 1) % 7 == 0 {
            println!("after week {}:", (day + 1) / 7);
            for (i, e) in ranking.top_k(3).iter().enumerate() {
                println!("  #{} {:<22} ŝ = {:.0}", i + 1, e.key, e.value);
            }
            println!();
        }
    }

    println!("Spikes (news, flash sale) out-shout everyone for a day or two,");
    println!("but the evergreen site re-takes the top as persistency accrues.");
}
