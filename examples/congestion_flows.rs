//! Use case 3 of the paper (§I-A): choosing which flows to reroute under
//! network congestion.
//!
//! "The current large flows could be a burst … changing the forwarding
//! entry of such large flows is in vain. A better choice is to detect the
//! significant flows … with high probability they will be large flows in a
//! long period later."
//!
//! We simulate a switch: during an **observation window** we track flows two
//! ways — by pure size (α:β = 1:0) and by significance (α:β = 1:20) — then
//! replay a **future window** of the same trace and measure how much of the
//! rerouted traffic actually materialises. Rerouting significant flows
//! should pay off; rerouting bursts should not.
//!
//! ```sh
//! cargo run --release --example congestion_flows
//! ```

use significant_items::prelude::*;
use significant_items::workloads::{generate, StreamSpec};
use std::collections::{HashMap, HashSet};

const REROUTE_BUDGET: usize = 40; // forwarding entries we may touch

fn main() {
    // A bursty, skewed flow trace: 60 periods; we observe the first 30.
    let spec = StreamSpec {
        name: "switch-trace",
        total_records: 600_000,
        distinct_items: 60_000,
        periods: 60,
        zipf_skew: 1.0,
        burst_fraction: 0.5, // congestion regime: lots of bursts
        periodic_fraction: 0.1,
        seed: 2026,
    };
    let stream = generate(&spec);
    let split = 30usize;

    let observe: Vec<&[u64]> = stream.periods().take(split).collect();
    let future: Vec<&[u64]> = stream.periods().skip(split).collect();
    let n_per_period = stream.layout.records_per_period().unwrap();

    let mut by_size = Ltc::new(
        LtcConfig::builder()
            .buckets(1_024)
            .weights(Weights::FREQUENT)
            .records_per_period(n_per_period)
            .build(),
    );
    let mut by_significance = Ltc::new(
        LtcConfig::builder()
            .buckets(1_024)
            .weights(Weights::new(1.0, 20.0))
            .records_per_period(n_per_period)
            .build(),
    );

    for period in &observe {
        for &flow in *period {
            by_size.insert(flow);
            by_significance.insert(flow);
        }
        by_size.end_period();
        by_significance.end_period();
    }
    by_size.finalize();
    by_significance.finalize();

    // Future traffic per flow — what rerouting would actually capture.
    let mut future_traffic: HashMap<u64, u64> = HashMap::new();
    let mut future_total = 0u64;
    for period in &future {
        for &flow in *period {
            *future_traffic.entry(flow).or_insert(0) += 1;
            future_total += 1;
        }
    }

    println!("Congestion control: pick {REROUTE_BUDGET} flows to reroute\n");
    for (label, ltc) in [
        ("largest flows      (α:β = 1:0) ", &by_size),
        ("significant flows  (α:β = 1:20)", &by_significance),
    ] {
        let picked: HashSet<u64> = ltc.top_k(REROUTE_BUDGET).iter().map(|e| e.id).collect();
        let captured: u64 = picked
            .iter()
            .map(|f| future_traffic.get(f).copied().unwrap_or(0))
            .sum();
        let still_alive = picked
            .iter()
            .filter(|f| future_traffic.contains_key(*f))
            .count();
        println!("{label}:");
        println!(
            "  future traffic captured : {captured:>7} packets ({:.1}% of all future traffic)",
            100.0 * captured as f64 / future_total as f64
        );
        println!("  rerouted entries still carrying traffic: {still_alive}/{REROUTE_BUDGET}\n");
    }
    println!("Burst flows vanish after the observation window — table entries");
    println!("spent on them are wasted. Significance-selected flows keep");
    println!("carrying traffic, so the same reroute budget moves more load.");
}
