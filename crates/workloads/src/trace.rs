//! Trace file I/O: persist generated streams and ingest external traces.
//!
//! Two formats:
//!
//! * **Binary trace** (`.ltct`) — the exact `GeneratedStream` (records +
//!   period boundaries), so experiments can be re-run bit-identically or a
//!   slow-to-generate stream shared between benchmark processes. Compact:
//!   varint-free fixed `u64`s, one pass, no dependencies.
//! * **CSV/TSV ingestion** — `key[,timestamp]` lines, the shape of real
//!   exports (a CAIDA packet dump reduced to source IPs, a message log
//!   reduced to senders). Keys that parse as `u64` are taken verbatim;
//!   anything else is Bob-hashed to an id. With timestamps, periods are cut
//!   time-driven; without, count-driven.

use crate::generator::GeneratedStream;
use crate::spec::StreamSpec;
use ltc_common::{ItemId, PeriodLayout};
use ltc_hash::bob_hash_bytes;
use std::io::{self, BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"LTCT";

/// Errors reading a binary trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace file / unsupported version.
    BadMagic,
    /// Structurally invalid (counts don't add up).
    Corrupt(&'static str),
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not an LTC trace file"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Write a stream as a binary trace.
///
/// Layout: magic, record count `u64`, period count `u64`, period sizes
/// (`u64` each), records (`u64` each). Little-endian throughout.
pub fn write_trace<W: Write>(stream: &GeneratedStream, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&(stream.records.len() as u64).to_le_bytes())?;
    out.write_all(&(stream.period_sizes.len() as u64).to_le_bytes())?;
    for &n in &stream.period_sizes {
        out.write_all(&(n as u64).to_le_bytes())?;
    }
    for &id in &stream.records {
        out.write_all(&id.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read a binary trace written by [`write_trace`]. The returned stream's
/// `spec` is a placeholder describing the trace file (the original spec is
/// not stored; layouts and records are).
pub fn read_trace<R: Read>(mut input: R) -> Result<GeneratedStream, TraceError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let total = read_u64(&mut input)? as usize;
    let periods = read_u64(&mut input)? as usize;
    if periods == 0 {
        return Err(TraceError::Corrupt("zero periods"));
    }
    let mut period_sizes = Vec::with_capacity(periods);
    let mut sum = 0usize;
    for _ in 0..periods {
        let n = read_u64(&mut input)? as usize;
        sum += n;
        period_sizes.push(n);
    }
    if sum != total {
        return Err(TraceError::Corrupt("period sizes do not sum to total"));
    }
    let mut records = Vec::with_capacity(total);
    for _ in 0..total {
        records.push(read_u64(&mut input)?);
    }
    let spec = StreamSpec {
        name: "trace-file",
        total_records: total as u64,
        distinct_items: 0, // unknown without a scan; oracle recomputes
        periods: periods as u64,
        zipf_skew: f64::NAN,
        burst_fraction: f64::NAN,
        periodic_fraction: f64::NAN,
        seed: 0,
    };
    Ok(GeneratedStream {
        records,
        period_sizes,
        layout: PeriodLayout::split_evenly(total.max(1) as u64, periods as u64),
        spec,
    })
}

/// Parse one CSV/TSV field into an item id: decimal `u64`s verbatim,
/// anything else Bob-hashed (seeded so distinct keys collide only at the
/// 2⁻⁶⁴ birthday level).
pub fn key_to_id(field: &str) -> ItemId {
    let field = field.trim();
    field
        .parse::<u64>()
        .unwrap_or_else(|_| bob_hash_bytes(field.as_bytes(), 0x1d5e))
}

/// One parsed ingestion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvRecord {
    /// The item id (parsed or hashed).
    pub id: ItemId,
    /// Timestamp, if the line had a second field.
    pub time: Option<u64>,
}

/// Ingest `key[,timestamp]` lines (comma, tab or whitespace separated).
/// Empty lines and `#` comments are skipped. Returns an error message with
/// line number for malformed timestamps.
pub fn read_csv<R: BufRead>(input: R) -> Result<Vec<CsvRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, [',', '\t', ' ']);
        let key = parts.next().expect("splitn yields at least one part");
        let time = match parts.next() {
            Some(t) if !t.trim().is_empty() => Some(
                t.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad timestamp {t:?}: {e}", lineno + 1))?,
            ),
            _ => None,
        };
        out.push(CsvRecord {
            id: key_to_id(key),
            time,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    fn small() -> GeneratedStream {
        generate(&StreamSpec {
            name: "t",
            total_records: 5_000,
            distinct_items: 500,
            periods: 10,
            zipf_skew: 1.0,
            burst_fraction: 0.2,
            periodic_fraction: 0.1,
            seed: 3,
        })
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let stream = small();
        let mut buf = Vec::new();
        write_trace(&stream, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.records, stream.records);
        assert_eq!(back.period_sizes, stream.period_sizes);
        assert_eq!(back.layout.total_periods(), 10);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            read_trace(&b"NOPE            "[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn truncation_detected() {
        let stream = small();
        let mut buf = Vec::new();
        write_trace(&stream, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_trace(&buf[..]), Err(TraceError::Io(_))));
    }

    #[test]
    fn inconsistent_sizes_detected() {
        // Hand-craft a header whose period sizes exceed the record count.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTCT");
        buf.extend_from_slice(&2u64.to_le_bytes()); // total = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // periods = 1
        buf.extend_from_slice(&5u64.to_le_bytes()); // size 5 != 2
        assert!(matches!(read_trace(&buf[..]), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn csv_parses_keys_and_timestamps() {
        let input = "42,100\nalice,200\n# comment\n\n7\t300\nbare-key\n";
        let recs = read_csv(io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs[0],
            CsvRecord {
                id: 42,
                time: Some(100)
            }
        );
        assert_eq!(recs[1].time, Some(200));
        assert_ne!(recs[1].id, 0, "string key hashed");
        assert_eq!(
            recs[2],
            CsvRecord {
                id: 7,
                time: Some(300)
            },
            "tab sep"
        );
        assert_eq!(recs[3].time, None, "timestamp optional");
    }

    #[test]
    fn csv_bad_timestamp_is_error_with_line() {
        let input = "a,xyz\n";
        let err = read_csv(io::BufReader::new(input.as_bytes())).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn string_keys_stable_and_distinct() {
        assert_eq!(key_to_id("alice"), key_to_id("alice"));
        assert_ne!(key_to_id("alice"), key_to_id("bob"));
        assert_eq!(key_to_id(" 17 "), 17);
    }
}
