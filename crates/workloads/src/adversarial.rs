//! Adversarial stream patterns — stress shapes the Zipf generator cannot
//! produce, used by the differential tests to probe the algorithms where
//! their assumptions are weakest.
//!
//! Long-tail Replacement explicitly *assumes* a long tail (§III-D,
//! "Shortcoming: … may not work well for other distributions, such as the
//! uniform distribution"); these patterns let tests and ablations measure
//! exactly that edge:
//!
//! * [`round_robin`] — perfectly uniform frequencies, maximum eviction churn
//!   (every bucket's cells tie, the worst case for "second smallest − 1");
//! * [`all_distinct`] — every record is a new item: nothing is significant,
//!   a structure must not invent heavy hitters;
//! * [`sawtooth`] — items ramp up and vanish, so the recent loudest item is
//!   never the most significant;
//! * [`two_phase`] — the item population flips completely at half-stream
//!   (a regime change: persistency splits into before/after cohorts).

use crate::generator::GeneratedStream;
use crate::spec::StreamSpec;
use ltc_common::{ItemId, PeriodLayout};

fn assemble(
    name: &'static str,
    period_bags: Vec<Vec<ItemId>>,
    distinct_hint: u64,
) -> GeneratedStream {
    let total: usize = period_bags.iter().map(|b| b.len()).sum();
    let periods = period_bags.len() as u64;
    let mut records = Vec::with_capacity(total);
    let mut period_sizes = Vec::with_capacity(period_bags.len());
    for bag in period_bags {
        period_sizes.push(bag.len());
        records.extend(bag);
    }
    GeneratedStream {
        records,
        period_sizes,
        layout: PeriodLayout::split_evenly(total.max(1) as u64, periods.max(1)),
        spec: StreamSpec {
            name,
            total_records: total as u64,
            distinct_items: distinct_hint,
            periods,
            zipf_skew: 0.0,
            burst_fraction: 0.0,
            periodic_fraction: 0.0,
            seed: 0,
        },
    }
}

/// `items` ids cycled in order, `per_period` records per period for
/// `periods` periods. Every item has (near-)identical frequency and
/// persistency — the uniform distribution §III-D warns about.
pub fn round_robin(items: u64, per_period: usize, periods: u64) -> GeneratedStream {
    assert!(items > 0 && per_period > 0 && periods > 0);
    let mut next = 0u64;
    let bags = (0..periods)
        .map(|_| {
            (0..per_period)
                .map(|_| {
                    let id = next % items;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    assemble("round-robin", bags, items)
}

/// Every record a brand-new id.
pub fn all_distinct(per_period: usize, periods: u64) -> GeneratedStream {
    assert!(per_period > 0 && periods > 0);
    let mut next = 0u64;
    let bags = (0..periods)
        .map(|_| {
            (0..per_period)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect()
        })
        .collect();
    assemble("all-distinct", bags, per_period as u64 * periods)
}

/// Each period, one "tooth" item floods `ramp` records then never returns;
/// a quiet `anchor` item appears `anchor_rate` times every period. The
/// anchor is the only persistent item; every tooth outshouts it locally.
pub fn sawtooth(ramp: usize, anchor_rate: usize, periods: u64) -> GeneratedStream {
    assert!(ramp > 0 && anchor_rate > 0 && periods > 0);
    const ANCHOR: ItemId = 0;
    let bags = (0..periods)
        .map(|p| {
            let tooth = 1_000_000 + p;
            let mut bag = vec![tooth; ramp];
            bag.extend(std::iter::repeat_n(ANCHOR, anchor_rate));
            // Interleave so the anchor is not clustered at the period end.
            let mut out = Vec::with_capacity(bag.len());
            let step = (bag.len() / anchor_rate).max(1);
            let (teeth, anchors) = bag.split_at(ramp);
            let mut ti = teeth.iter();
            for (i, _) in anchors.iter().enumerate() {
                out.extend(ti.by_ref().take(step - 1).copied());
                out.push(ANCHOR);
                let _ = i;
            }
            out.extend(ti.copied());
            out
        })
        .collect();
    assemble("sawtooth", bags, periods + 1)
}

/// Cohort A is the entire stream for the first half of the periods, cohort
/// B for the second half. `items_per_cohort` ids each, uniform within the
/// cohort.
pub fn two_phase(items_per_cohort: u64, per_period: usize, periods: u64) -> GeneratedStream {
    assert!(items_per_cohort > 0 && per_period > 0 && periods >= 2);
    let bags = (0..periods)
        .map(|p| {
            let base = if p < periods / 2 { 0 } else { 1_000_000 };
            (0..per_period)
                .map(|i| base + (i as u64 % items_per_cohort))
                .collect()
        })
        .collect();
    assemble("two-phase", bags, 2 * items_per_cohort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn freq(stream: &GeneratedStream) -> HashMap<ItemId, u64> {
        let mut m = HashMap::new();
        for &id in &stream.records {
            *m.entry(id).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn round_robin_is_uniform() {
        let s = round_robin(10, 100, 5);
        assert_eq!(s.len(), 500);
        let f = freq(&s);
        assert_eq!(f.len(), 10);
        assert!(f.values().all(|&c| c == 50), "{f:?}");
    }

    #[test]
    fn all_distinct_never_repeats() {
        let s = all_distinct(50, 4);
        let set: HashSet<_> = s.records.iter().collect();
        assert_eq!(set.len(), s.len());
    }

    #[test]
    fn sawtooth_anchor_in_every_period_teeth_in_one() {
        let s = sawtooth(90, 10, 6);
        let mut anchor_periods = 0;
        let mut tooth_period_counts: HashMap<ItemId, usize> = HashMap::new();
        for period in s.periods() {
            if period.contains(&0) {
                anchor_periods += 1;
            }
            for &id in period.iter().collect::<HashSet<_>>() {
                if id != 0 {
                    *tooth_period_counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(anchor_periods, 6, "anchor persistent");
        assert!(
            tooth_period_counts.values().all(|&c| c == 1),
            "teeth one-shot"
        );
        // Each tooth is locally louder than the anchor.
        let f = freq(&s);
        assert!(f[&1_000_000] > f[&0] / 6 * 5);
    }

    #[test]
    fn two_phase_cohorts_disjoint() {
        let s = two_phase(20, 60, 8);
        let first: HashSet<_> = s.periods().take(4).flatten().copied().collect();
        let second: HashSet<_> = s.periods().skip(4).flatten().copied().collect();
        assert!(first.iter().all(|id| *id < 1_000_000));
        assert!(second.iter().all(|id| *id >= 1_000_000));
    }

    #[test]
    fn period_sizes_consistent() {
        for s in [
            round_robin(5, 30, 3),
            all_distinct(30, 3),
            sawtooth(20, 5, 3),
            two_phase(5, 30, 4),
        ] {
            assert_eq!(
                s.period_sizes.iter().sum::<usize>(),
                s.len(),
                "{}",
                s.spec.name
            );
            assert_eq!(s.periods().count() as u64, s.spec.periods);
        }
    }
}
