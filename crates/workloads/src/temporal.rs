//! Temporal occupancy patterns: *when* an item's occurrences happen.
//!
//! Frequency and persistency only diverge when items differ in how their
//! mass spreads over periods. Three archetypes cover the paper's motivating
//! cases (§I-A use cases: DDoS bursts vs. sustained attack flows, fad
//! websites vs. evergreen ones, bursty flows vs. stable elephants):
//!
//! * [`TemporalPattern::Uniform`] — active in every period;
//! * [`TemporalPattern::Burst`] — active only in a contiguous window
//!   (frequent but not persistent);
//! * [`TemporalPattern::Periodic`] — active every `stride`-th period
//!   (persistent-leaning but spread thin).

use rand::Rng;

/// An item's period-activity pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalPattern {
    /// Active in all `T` periods.
    Uniform,
    /// Active in periods `[start, start + len)`.
    Burst {
        /// First active period.
        start: u64,
        /// Window length (≥ 1).
        len: u64,
    },
    /// Active in periods `≡ phase (mod stride)`.
    Periodic {
        /// Offset of the first active period.
        phase: u64,
        /// Gap between active periods (≥ 1).
        stride: u64,
    },
}

impl TemporalPattern {
    /// Whether the pattern is active in `period` (of `total` periods).
    #[inline]
    pub fn active_in(&self, period: u64, total: u64) -> bool {
        debug_assert!(period < total);
        match *self {
            TemporalPattern::Uniform => true,
            TemporalPattern::Burst { start, len } => {
                period >= start && period < start.saturating_add(len)
            }
            TemporalPattern::Periodic { phase, stride } => period % stride == phase % stride,
        }
    }

    /// The active periods, materialised (used to spread an item's
    /// occurrences). Always non-empty for valid patterns within `total`.
    pub fn active_periods(&self, total: u64) -> Vec<u64> {
        (0..total).filter(|&p| self.active_in(p, total)).collect()
    }

    /// Sample a pattern mix: `burst_fraction` of items burst,
    /// `periodic_fraction` cycle, the rest are uniform.
    pub fn sample<R: Rng>(
        rng: &mut R,
        total_periods: u64,
        burst_fraction: f64,
        periodic_fraction: f64,
    ) -> Self {
        debug_assert!(burst_fraction + periodic_fraction <= 1.0 + 1e-12);
        let roll: f64 = rng.gen();
        if roll < burst_fraction {
            // Short windows: 1..max(2, T/20) periods.
            let max_len = (total_periods / 20).max(2);
            let len = rng.gen_range(1..=max_len);
            let start = rng.gen_range(0..total_periods.saturating_sub(len).max(1));
            TemporalPattern::Burst { start, len }
        } else if roll < burst_fraction + periodic_fraction {
            let stride = rng.gen_range(2..=4u64.min(total_periods.max(2)));
            let phase = rng.gen_range(0..stride);
            TemporalPattern::Periodic { phase, stride }
        } else {
            TemporalPattern::Uniform
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_active_everywhere() {
        let p = TemporalPattern::Uniform;
        assert_eq!(p.active_periods(10).len(), 10);
    }

    #[test]
    fn burst_window_respected() {
        let p = TemporalPattern::Burst { start: 3, len: 2 };
        assert_eq!(p.active_periods(10), vec![3, 4]);
        assert!(!p.active_in(2, 10));
        assert!(p.active_in(3, 10));
        assert!(!p.active_in(5, 10));
    }

    #[test]
    fn burst_clamps_at_end() {
        let p = TemporalPattern::Burst { start: 8, len: 100 };
        assert_eq!(p.active_periods(10), vec![8, 9]);
    }

    #[test]
    fn periodic_stride() {
        let p = TemporalPattern::Periodic {
            phase: 1,
            stride: 3,
        };
        assert_eq!(p.active_periods(10), vec![1, 4, 7]);
    }

    #[test]
    fn sample_respects_fractions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut bursts = 0;
        let mut periodic = 0;
        let n = 10_000;
        for _ in 0..n {
            match TemporalPattern::sample(&mut rng, 100, 0.3, 0.2) {
                TemporalPattern::Burst { .. } => bursts += 1,
                TemporalPattern::Periodic { .. } => periodic += 1,
                TemporalPattern::Uniform => {}
            }
        }
        assert!((2_700..=3_300).contains(&bursts), "bursts {bursts}");
        assert!((1_700..=2_300).contains(&periodic), "periodic {periodic}");
    }

    #[test]
    fn sampled_patterns_always_have_active_periods() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let p = TemporalPattern::sample(&mut rng, 37, 0.4, 0.3);
            assert!(!p.active_periods(37).is_empty(), "{p:?}");
        }
    }
}
