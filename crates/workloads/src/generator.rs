//! Stream assembly: Zipf frequencies × temporal patterns → a shuffled,
//! period-ordered record vector.

use crate::spec::StreamSpec;
use crate::temporal::TemporalPattern;
use crate::zipf::ZipfCounts;
use ltc_common::{ItemId, PeriodLayout};
use ltc_hash::bob_hash_u64;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A fully materialised stream plus its period boundaries.
///
/// Period sizes *vary* (as in a real trace cut into fixed time windows:
/// bursts make some windows heavier) — `period_sizes` records the true
/// boundaries the harness drives `end_period` from, while `layout` carries
/// the nominal `N/T` count used to configure count-driven CLOCK stepping.
#[derive(Debug, Clone)]
pub struct GeneratedStream {
    /// Records in arrival order.
    pub records: Vec<ItemId>,
    /// Records in each period, in order; sums to `records.len()`.
    pub period_sizes: Vec<usize>,
    /// The nominal count-driven layout (`N/T` records per period).
    pub layout: PeriodLayout,
    /// The spec this stream was generated from.
    pub spec: StreamSpec,
}

impl GeneratedStream {
    /// Iterate the records of each period in order.
    pub fn periods(&self) -> impl Iterator<Item = &[ItemId]> {
        let mut rest = self.records.as_slice();
        self.period_sizes.iter().map(move |&n| {
            let (head, tail) = rest.split_at(n);
            rest = tail;
            head
        })
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Map a frequency rank to a pseudo-random, collision-free-w.h.p. 64-bit id
/// so that item ids carry no rank information (mixing `seed` keeps distinct
/// datasets disjoint).
#[inline]
pub fn rank_to_id(rank: u64, seed: u64) -> ItemId {
    bob_hash_u64(rank, seed as u32) ^ (seed << 1)
}

/// Generate the stream described by `spec`. Deterministic in `spec.seed`.
///
/// # Examples
///
/// ```
/// use ltc_workloads::{generate, StreamSpec};
///
/// let spec = StreamSpec {
///     name: "demo", total_records: 10_000, distinct_items: 1_000,
///     periods: 10, zipf_skew: 1.0,
///     burst_fraction: 0.2, periodic_fraction: 0.1, seed: 7,
/// };
/// let stream = generate(&spec);
/// assert_eq!(stream.len(), 10_000);
/// assert_eq!(stream.periods().count(), 10);
/// ```
///
/// Construction:
/// 1. exact Zipf frequencies per rank ([`ZipfCounts`]);
/// 2. a temporal pattern per item ([`TemporalPattern::sample`]);
/// 3. each item's occurrences spread uniformly over its active periods;
/// 4. every period's bag of records shuffled (Fisher–Yates).
pub fn generate(spec: &StreamSpec) -> GeneratedStream {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let zipf = ZipfCounts::new(spec.total_records, spec.distinct_items, spec.zipf_skew);
    let t = spec.periods;

    // Period buckets, pre-sized to the expected share.
    let expected = (spec.total_records / t + 1) as usize;
    let mut periods: Vec<Vec<ItemId>> = (0..t).map(|_| Vec::with_capacity(expected)).collect();

    for rank in 0..zipf.len() {
        let id = rank_to_id(rank as u64, spec.seed);
        let f = zipf.count(rank);
        let pattern =
            TemporalPattern::sample(&mut rng, t, spec.burst_fraction, spec.periodic_fraction);
        let active = pattern.active_periods(t);
        debug_assert!(!active.is_empty());
        // Multinomial spreading: each occurrence lands in a uniformly random
        // active period. (Deterministic even spreading would tie hundreds of
        // items at persistency == |active| exactly, which real traces do not
        // do and which makes top-k-by-persistency ill-defined.)
        for _ in 0..f {
            let p = active[rng.gen_range(0..active.len())];
            periods[p as usize].push(id);
        }
    }

    let mut records = Vec::with_capacity(spec.total_records as usize);
    let mut period_sizes = Vec::with_capacity(periods.len());
    for bag in &mut periods {
        bag.shuffle(&mut rng);
        period_sizes.push(bag.len());
        records.append(bag);
    }
    debug_assert_eq!(records.len() as u64, spec.total_records);

    GeneratedStream {
        records,
        period_sizes,
        layout: spec.layout(),
        spec: *spec,
    }
}

/// Convenience: a plain Zipf stream with uniform occupancy (used by the
/// theory-validation experiments, which assume the §IV model).
pub fn zipf_stream(
    total: u64,
    distinct: u64,
    skew: f64,
    periods: u64,
    seed: u64,
) -> GeneratedStream {
    generate(&StreamSpec {
        name: "zipf",
        total_records: total,
        distinct_items: distinct,
        periods,
        zipf_skew: skew,
        burst_fraction: 0.0,
        periodic_fraction: 0.0,
        seed,
    })
}

/// Draw `n` records i.i.d. from a Zipf distribution (sampled, not exact) —
/// used by throughput benches where arrival order must look like a live
/// stream rather than a rebalanced trace.
pub fn zipf_samples(n: usize, distinct: u64, skew: f64, seed: u64) -> Vec<ItemId> {
    let zipf = ZipfCounts::new(n as u64 * 4, distinct, skew);
    // Cumulative weights for inversion sampling.
    let mut cum = Vec::with_capacity(zipf.len());
    let mut acc = 0u64;
    for &c in zipf.counts() {
        acc += c;
        cum.push(acc);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0..acc);
            let rank = cum.partition_point(|&c| c <= x);
            rank_to_id(rank as u64, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small_spec() -> StreamSpec {
        StreamSpec {
            name: "small",
            total_records: 20_000,
            distinct_items: 2_000,
            periods: 40,
            zipf_skew: 1.0,
            burst_fraction: 0.25,
            periodic_fraction: 0.15,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.records, b.records);
        let c = generate(&small_spec().with_seed(12));
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn conserves_total_and_zipf_frequencies() {
        let s = generate(&small_spec());
        assert_eq!(s.len(), 20_000);
        let mut freq: HashMap<ItemId, u64> = HashMap::new();
        for &id in &s.records {
            *freq.entry(id).or_insert(0) += 1;
        }
        let zipf = ZipfCounts::new(20_000, 2_000, 1.0);
        let mut observed: Vec<u64> = freq.values().copied().collect();
        observed.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(observed.len(), zipf.len(), "distinct-item count");
        assert_eq!(observed, zipf.counts(), "frequency vector must be exact");
    }

    #[test]
    fn bursty_items_have_low_persistency() {
        // With burst_fraction = 1 every item is confined to ≤ T/20-ish
        // periods; persistency must reflect that.
        let spec = StreamSpec {
            burst_fraction: 1.0,
            periodic_fraction: 0.0,
            ..small_spec()
        };
        let s = generate(&spec);
        let mut pers: HashMap<ItemId, HashSet<usize>> = HashMap::new();
        for (i, chunk) in s.periods().enumerate() {
            for &id in chunk {
                pers.entry(id).or_default().insert(i);
            }
        }
        let max_p = pers.values().map(|s| s.len()).max().unwrap();
        // Burst windows are capped at max(2, T/20) = 2 periods.
        assert!(max_p <= 2, "bursty item persisted {max_p} periods");
    }

    #[test]
    fn uniform_heavy_items_are_persistent() {
        let spec = StreamSpec {
            burst_fraction: 0.0,
            periodic_fraction: 0.0,
            ..small_spec()
        };
        let s = generate(&spec);
        // The heaviest item (500 occurrences over 40 periods) appears in
        // essentially every period.
        let heavy = rank_to_id(0, spec.seed);
        let active = s.periods().filter(|chunk| chunk.contains(&heavy)).count();
        assert_eq!(active, 40, "heavy uniform item must be in every period");
    }

    #[test]
    fn ids_are_scrambled() {
        // Rank order must not leak into id order.
        let ids: Vec<ItemId> = (0..100).map(|r| rank_to_id(r, 7)).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_ne!(ids, sorted);
        let distinct: HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 100, "id collision in rank_to_id");
    }

    #[test]
    fn zipf_samples_skew_toward_head() {
        let samples = zipf_samples(50_000, 1_000, 1.2, 3);
        let mut freq: HashMap<ItemId, usize> = HashMap::new();
        for &id in &samples {
            *freq.entry(id).or_insert(0) += 1;
        }
        let head = freq[&rank_to_id(0, 3)];
        assert!(
            head > 50_000 / 20,
            "head rank got {head} of 50000 — not skewed"
        );
    }

    #[test]
    fn periods_iterator_covers_stream() {
        let s = generate(&small_spec());
        let total: usize = s.periods().map(|p| p.len()).sum();
        assert_eq!(total, s.len());
        assert_eq!(s.periods().count(), 40);
    }
}
