//! # ltc-workloads — synthetic streams mirroring the paper's datasets
//!
//! The paper evaluates on three real traces (CAIDA 2016, a stack-exchange
//! interaction network, a social-network message log). Those traces are not
//! redistributable, so this crate generates synthetic equivalents that
//! reproduce the two properties every compared algorithm is actually
//! sensitive to (DESIGN.md §4):
//!
//! 1. **long-tailed frequencies** — item counts follow Zipf with the
//!    dataset-appropriate skew (the paper's own Fig. 6 verifies exactly this
//!    and nothing more about the datasets);
//! 2. **structured temporal occupancy** — items are *uniform* (present
//!    throughout), *bursty* (concentrated in a window of periods: frequent
//!    but not persistent), or *periodic* (regular but sparse: persistent but
//!    not frequent), so that frequency and persistency genuinely diverge —
//!    the situation the significant-items problem exists for.
//!
//! Entry points: the [`profiles`] functions for the paper's three datasets,
//! or [`spec::StreamSpec`] + [`generator::generate`] for custom sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod generator;
pub mod profiles;
pub mod spec;
pub mod temporal;
pub mod trace;
pub mod zipf;

pub use generator::{generate, GeneratedStream};
pub use profiles::{caida_like, network_like, social_like};
pub use spec::StreamSpec;
pub use temporal::TemporalPattern;
pub use trace::{read_csv, read_trace, write_trace, CsvRecord, TraceError};
pub use zipf::ZipfCounts;
