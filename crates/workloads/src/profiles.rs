//! Dataset profiles mirroring the paper's three traces (§V-B).
//!
//! Sizes, period counts and skews follow the paper's descriptions; skews are
//! chosen per the typical published measurements of each trace family (IP
//! traffic is heavily skewed, Q&A interaction graphs flatter, social message
//! senders in between-to-heavy). The experiments only rely on the long-tail
//! property, which the paper itself verifies (Fig. 6) — see DESIGN.md §4.

use crate::spec::StreamSpec;

/// CAIDA-like: "Anonymized Internet Trace 2016 … 10M packets … 500 periods",
/// item = source IP. Internet flow sizes are strongly heavy-tailed.
pub fn caida_like() -> StreamSpec {
    StreamSpec {
        name: "CAIDA",
        total_records: 10_000_000,
        distinct_items: 400_000,
        periods: 500,
        zipf_skew: 1.1,
        burst_fraction: 0.30,
        periodic_fraction: 0.05,
        seed: 0xca1d_a201,
    }
}

/// Network-like: "temporal network of interactions on the stack exchange web
/// site … 10M items … 1000 periods", item = answering user. Human activity:
/// flatter tail, strong burstiness (threads flare and die).
pub fn network_like() -> StreamSpec {
    StreamSpec {
        name: "Network",
        total_records: 10_000_000,
        distinct_items: 1_500_000,
        periods: 1_000,
        zipf_skew: 0.9,
        burst_fraction: 0.45,
        periodic_fraction: 0.10,
        seed: 0x5e7_0f1a,
    }
}

/// Social-like: "real social network … users' messages … 1.5M messages …
/// 200 periods", item = sender. Message volume per user is very skewed.
pub fn social_like() -> StreamSpec {
    StreamSpec {
        name: "Social",
        total_records: 1_500_000,
        distinct_items: 250_000,
        periods: 200,
        zipf_skew: 1.3,
        burst_fraction: 0.25,
        periodic_fraction: 0.10,
        seed: 0x50c1_a100,
    }
}

/// All three profiles, in the order the paper's figures present them.
pub fn all() -> [StreamSpec; 3] {
    [caida_like(), network_like(), social_like()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn sizes_match_paper() {
        let c = caida_like();
        assert_eq!((c.total_records, c.periods), (10_000_000, 500));
        let n = network_like();
        assert_eq!((n.total_records, n.periods), (10_000_000, 1_000));
        let s = social_like();
        assert_eq!((s.total_records, s.periods), (1_500_000, 200));
    }

    #[test]
    fn names_distinct() {
        let names: std::collections::HashSet<_> = all().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn scaled_profiles_generate_quickly() {
        // The test-size variants must stay cheap: 100× down-scale.
        for spec in all() {
            let s = generate(&spec.scaled_down(100));
            assert_eq!(s.len() as u64, spec.total_records / 100);
        }
    }

    #[test]
    fn long_tail_property_holds() {
        // The property Fig. 6 verifies on the real traces: top items
        // dominate. Top-20 of the scaled CAIDA profile should hold a large
        // multiple of 20 average shares.
        let spec = caida_like().scaled_down(100);
        let s = generate(&spec);
        let mut freq = std::collections::HashMap::new();
        for &id in &s.records {
            *freq.entry(id).or_insert(0u64) += 1;
        }
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = counts.iter().take(20).sum();
        let avg20 = 20 * s.len() as u64 / counts.len() as u64;
        assert!(
            top20 > 20 * avg20,
            "no long tail: top20 {top20} vs 20×avg {avg20}"
        );
    }
}
