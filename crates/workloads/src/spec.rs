//! Workload specifications.

use ltc_common::PeriodLayout;

/// Full description of a synthetic stream. Feed to
/// [`crate::generator::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Human-readable name for experiment tables.
    pub name: &'static str,
    /// Total records `N`.
    pub total_records: u64,
    /// Nominal distinct items `M` (the realised count can be smaller: tail
    /// ranks with a rounded share of zero are trimmed).
    pub distinct_items: u64,
    /// Number of periods `T`.
    pub periods: u64,
    /// Zipf skew γ.
    pub zipf_skew: f64,
    /// Fraction of items with bursty occupancy.
    pub burst_fraction: f64,
    /// Fraction of items with periodic occupancy.
    pub periodic_fraction: f64,
    /// RNG / id-hashing seed.
    pub seed: u64,
}

impl StreamSpec {
    /// The period layout induced by this spec (count-driven, `N/T` records
    /// per period).
    pub fn layout(&self) -> PeriodLayout {
        PeriodLayout::split_evenly(self.total_records, self.periods)
    }

    /// A proportionally shrunken copy — same shape, `factor×` fewer records,
    /// items and periods (≥ 1 each). Unit/integration tests use scaled-down
    /// profiles; benches use the full sizes.
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor > 0);
        self.total_records = (self.total_records / factor).max(1);
        self.distinct_items = (self.distinct_items / factor).max(1);
        self.periods = (self.periods / factor.min(self.periods)).max(1);
        self
    }

    /// Copy with a different seed (for multi-trial experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Copy with a different period count (for the vary-T ablation).
    pub fn with_periods(mut self, periods: u64) -> Self {
        assert!(periods > 0);
        self.periods = periods;
        self
    }

    /// Copy with a different skew (for the Zipf-sweep ablation).
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.zipf_skew = skew;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StreamSpec {
        StreamSpec {
            name: "test",
            total_records: 10_000,
            distinct_items: 1_000,
            periods: 100,
            zipf_skew: 1.0,
            burst_fraction: 0.2,
            periodic_fraction: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn layout_divides_evenly() {
        let l = spec().layout();
        assert_eq!(l.records_per_period(), Some(100));
        assert_eq!(l.total_periods(), 100);
    }

    #[test]
    fn scaled_down_preserves_shape() {
        let s = spec().scaled_down(10);
        assert_eq!(s.total_records, 1_000);
        assert_eq!(s.distinct_items, 100);
        assert_eq!(s.periods, 10);
        assert_eq!(s.zipf_skew, 1.0);
    }

    #[test]
    fn scaled_down_never_zero() {
        let s = spec().scaled_down(1_000_000);
        assert!(s.total_records >= 1 && s.distinct_items >= 1 && s.periods >= 1);
    }

    #[test]
    fn with_modifiers() {
        let s = spec().with_seed(9).with_periods(50).with_skew(0.6);
        assert_eq!((s.seed, s.periods, s.zipf_skew), (9, 50, 0.6));
    }
}
