//! Exact Zipfian frequency assignment (paper Eq. 3).
//!
//! Rather than sampling items i.i.d. (which only *converges* to Zipf), we
//! construct the frequency vector deterministically:
//!
//! ```text
//! f_i = N / (i^γ · ζ(γ)),   ζ(γ) = Σ_{i=1..M} 1/i^γ
//! ```
//!
//! rounded to integers with the residue pushed to the head ranks so that
//! `Σ f_i = N` exactly. This matches the theory section's model (§IV-B) and
//! makes the theoretical-bound experiments (Fig. 7) directly comparable.

/// The exact per-rank frequencies of a Zipf stream.
#[derive(Debug, Clone)]
pub struct ZipfCounts {
    counts: Vec<u64>,
    skew: f64,
}

impl ZipfCounts {
    /// Frequencies for `total` records over `distinct` ranks at skew `γ`.
    ///
    /// Ranks whose rounded share is zero are trimmed, so `len() ≤ distinct`
    /// but every retained rank has `f ≥ 1`.
    pub fn new(total: u64, distinct: u64, skew: f64) -> Self {
        assert!(total > 0, "need a non-empty stream");
        assert!(distinct > 0, "need at least one item");
        assert!(skew.is_finite() && skew >= 0.0, "skew must be finite, >= 0");
        let m = distinct as usize;
        // ζ(γ) over the truncated support.
        let mut zeta = 0.0f64;
        let mut weights = Vec::with_capacity(m);
        for i in 1..=m {
            let w = (i as f64).powf(-skew);
            weights.push(w);
            zeta += w;
        }
        let mut counts: Vec<u64> = weights
            .iter()
            .map(|w| ((total as f64) * w / zeta).floor() as u64)
            .collect();
        // Trim zero-share tail ranks, then settle the rounding residue on
        // the head (rank 1 absorbs what is left, preserving monotonicity).
        counts.retain(|&c| c > 0);
        if counts.is_empty() {
            counts.push(0);
        }
        let assigned: u64 = counts.iter().sum();
        debug_assert!(assigned <= total);
        let mut residue = total - assigned;
        let mut i = 0;
        while residue > 0 {
            counts[i] += 1;
            residue -= 1;
            i = (i + 1) % counts.len();
        }
        // One bubble pass repairs any monotonicity breaks from the residue
        // round-robin (at most +1 per rank, so a single pass suffices).
        for i in 1..counts.len() {
            if counts[i] > counts[i - 1] {
                counts.swap(i, i - 1);
            }
        }
        Self { counts, skew }
    }

    /// Number of ranks with non-zero frequency.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the support is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The skew γ.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Frequency of rank `i` (0-based; rank 0 is the heaviest item).
    pub fn count(&self, rank: usize) -> u64 {
        self.counts[rank]
    }

    /// All frequencies, heaviest first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total records.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_exactly_to_total() {
        for (n, m, g) in [
            (1_000u64, 100u64, 1.0),
            (9_999, 57, 0.7),
            (50_000, 5_000, 1.3),
        ] {
            let z = ZipfCounts::new(n, m, g);
            assert_eq!(z.total(), n, "N={n} M={m} γ={g}");
        }
    }

    #[test]
    fn monotone_nonincreasing() {
        let z = ZipfCounts::new(100_000, 1_000, 1.1);
        for w in z.counts().windows(2) {
            assert!(w[0] >= w[1], "ranks out of order: {} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn skew_controls_head_mass() {
        let flat = ZipfCounts::new(100_000, 1_000, 0.5);
        let steep = ZipfCounts::new(100_000, 1_000, 1.5);
        assert!(
            steep.count(0) > 3 * flat.count(0),
            "steeper skew must concentrate mass: {} vs {}",
            steep.count(0),
            flat.count(0)
        );
    }

    #[test]
    fn ratio_follows_power_law() {
        // f_1 / f_i ≈ i^γ for head ranks.
        let z = ZipfCounts::new(10_000_000, 100_000, 1.0);
        let ratio = z.count(0) as f64 / z.count(9) as f64;
        assert!(
            (8.0..12.5).contains(&ratio),
            "f1/f10 = {ratio}, expected ≈ 10 at γ=1"
        );
    }

    #[test]
    fn zero_skew_is_uniform() {
        let z = ZipfCounts::new(1_000, 10, 0.0);
        assert_eq!(z.len(), 10);
        assert!(z.counts().iter().all(|&c| c == 100));
    }

    #[test]
    fn tiny_stream_trims_tail() {
        // 10 records over 1000 nominal ranks: only a handful survive.
        let z = ZipfCounts::new(10, 1_000, 1.0);
        assert!(z.len() <= 10);
        assert_eq!(z.total(), 10);
        assert!(z.counts().iter().all(|&c| c >= 1));
    }
}
