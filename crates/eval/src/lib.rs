//! # ltc-eval — ground truth, metrics, theory bounds, experiment runner
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`oracle`] — exact per-item frequency/persistency over a generated
//!   stream, and the true top-k significant set;
//! * [`metrics`] — the paper's two metrics (§V-A): **Precision**
//!   `|φ∩ψ|/k` and **ARE** `(1/k)·Σ|sᵢ−ŝᵢ|/sᵢ`, plus AAE for completeness;
//! * [`algorithms`] — a uniform way to instantiate LTC and every baseline
//!   from `(memory budget, k, weights)`, exactly as §V-C allocates memory;
//! * [`runner`] — drives any algorithm over a stream period by period and
//!   collects timing + reported top-k;
//! * [`theory`] — the §IV correct-rate and error bounds, for the Fig. 7
//!   validation experiments;
//! * [`report`] — experiment result rows and the table printer the bench
//!   binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod metrics;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod theory;

pub use algorithms::{build_algorithm, AlgoSpec, Algorithm};
pub use metrics::{aae, are, f1, precision, rank_quality, recall, tie_aware_precision};
pub use oracle::Oracle;
pub use report::{ExperimentRecord, Table};
pub use runner::{run_algorithm, run_trials, RunOutcome, TrialStats};
