//! The paper's §IV theoretical bounds, used by the Fig. 7 validation
//! experiments.
//!
//! * **Correct-rate bound** (Lemma IV.1, Eqs. 4–5): an item's reported
//!   significance is surely correct if at most `d−2` *useful* items share
//!   its bucket, where item `eᵢ` is useful with probability
//!   `ℓᵢ = 1/w` when `fᵢ > f` and `ℓᵢ = (1/w)·fᵢ/(f+1)` otherwise
//!   (it must hash to the same bucket *and* have ever out-counted `e`).
//!   The probability that at most `d−2` useful items exist is a
//!   Poisson-binomial tail computed by the paper's DP (Eq. 4), which we
//!   evaluate exactly with the state capped at `d−1` (absorbing).
//!
//! * **Error bound** (Eqs. 6–11): `E(ŝᵢ) = sᵢ − P_small·E(V)·(α+β)` and by
//!   Markov `Pr{sᵢ−ŝᵢ ≥ εN} ≤ P_small·E(V)·(α+β)/(εN)`, with
//!   `E(V) = (1/w)·Σ_{j>i} fⱼ` the expected mass of less-significant
//!   colliders. `P_small` — the probability `eᵢ`'s cell is its bucket's
//!   smallest — requires at least `d−1` more-significant items to collide
//!   into `eᵢ`'s bucket; with `i` such items each landing there w.p. `1/w`
//!   we take the Poisson(`i/w`) tail `P(X ≥ d−1)`. (The printed Eq. 7 is
//!   typographically corrupted in our source; this reconstruction preserves
//!   its binomial-in-`1/w` structure and its limits: `P_small → 0` as
//!   `w → ∞`, `→ 1` as `d → 1`.)

/// Probability that item `e` (true frequency `f`) is reported exactly
/// correctly, given the ranked frequency vector of the whole stream
/// (heaviest first), `w` buckets and `d` cells per bucket.
pub fn correct_rate_bound(ranked: &[u64], f: u64, w: usize, d: usize) -> f64 {
    assert!(w >= 1 && d >= 1);
    if d == 1 {
        // "At most d-2 useful items" is unsatisfiable: the bound is 0.
        return 0.0;
    }
    let inv_w = 1.0 / w as f64;
    // dp[x] = P(exactly x useful items so far), x capped at d-1 (absorbing
    // state meaning "too many; correctness no longer guaranteed").
    let cap = d - 1;
    let mut dp = vec![0.0f64; cap + 1];
    dp[0] = 1.0;
    for &fi in ranked {
        let l = if fi > f {
            inv_w
        } else {
            inv_w * fi as f64 / (f as f64 + 1.0)
        };
        // In-place right-to-left update of the Poisson-binomial DP.
        for x in (0..=cap).rev() {
            let stay = dp[x] * (1.0 - l);
            let from_below = if x > 0 { dp[x - 1] * l } else { 0.0 };
            if x == cap {
                // Absorbing: mass that would exceed the cap stays at cap.
                dp[x] += from_below;
            } else {
                dp[x] = stay + from_below;
            }
        }
    }
    // P(correct) ≥ Σ_{x=0}^{d-2} dp[x].
    dp[..cap].iter().sum::<f64>().clamp(0.0, 1.0)
}

/// Average correct-rate bound over the top-`k` ranks.
pub fn avg_correct_rate_bound(ranked: &[u64], k: usize, w: usize, d: usize) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 1.0;
    }
    let total: f64 = ranked[..k]
        .iter()
        .map(|&f| correct_rate_bound(ranked, f, w, d))
        .sum();
    total / k as f64
}

/// `P_small` for the item of 0-based rank `i`: Poisson(`i/w`) tail
/// `P(X ≥ d−1)` (see the module docs for the reconstruction note).
pub fn p_small(rank: usize, w: usize, d: usize) -> f64 {
    assert!(w >= 1 && d >= 1);
    let lambda = rank as f64 / w as f64;
    if d == 1 {
        return 1.0; // a 1-cell bucket's occupant is always the smallest
    }
    // P(X >= d-1) = 1 - sum_{j=0}^{d-2} e^-λ λ^j / j!.
    let mut term = (-lambda).exp();
    let mut cdf = term;
    for j in 1..=(d - 2) {
        term *= lambda / j as f64;
        cdf += term;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Exact binomial form of [`p_small`]: `P(X ≥ d−1)` for
/// `X ~ Binomial(rank, 1/w)`, evaluated stably with a running-product term
/// recurrence. The Poisson form is its standard `rank → ∞, 1/w → 0` limit;
/// a unit test pins their agreement in the regimes the experiments use.
pub fn p_small_binomial(rank: usize, w: usize, d: usize) -> f64 {
    assert!(w >= 1 && d >= 1);
    if d == 1 {
        return 1.0;
    }
    let n = rank as f64;
    let p = 1.0 / w as f64;
    if rank == 0 {
        return 0.0;
    }
    if (d - 1) as f64 > n {
        return 0.0; // cannot draw d-1 successes from fewer trials
    }
    if w == 1 {
        return 1.0; // every more-significant item surely shares the bucket
    }
    // cdf = Σ_{j=0}^{d-2} C(n,j) p^j (1-p)^(n-j):
    // term_0 = (1-p)^n; term_{j+1} = term_j · (n-j)/(j+1) · p/(1-p).
    let mut term = (1.0 - p).powf(n);
    let mut cdf = term;
    let ratio = p / (1.0 - p);
    for j in 0..(d - 2) {
        term *= (n - j as f64) / (j as f64 + 1.0) * ratio;
        cdf += term;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// `E(V)` for rank `i`: expected count of Significance-Decrementing
/// opportunities from less-significant items, `(1/w)·Σ_{j>i} fⱼ` (Eq. 8).
pub fn expected_v(ranked: &[u64], rank: usize, w: usize) -> f64 {
    let tail: u64 = ranked[rank + 1..].iter().sum();
    tail as f64 / w as f64
}

/// Markov error bound for rank `i` (Eq. 11):
/// `Pr{sᵢ − ŝᵢ ≥ εN} ≤ P_small·E(V)·(α+β)/(εN)`, clipped to `[0, 1]`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's symbol list
pub fn error_bound(
    ranked: &[u64],
    rank: usize,
    w: usize,
    d: usize,
    alpha: f64,
    beta: f64,
    epsilon: f64,
    n: u64,
) -> f64 {
    let num = p_small(rank, w, d) * expected_v(ranked, rank, w) * (alpha + beta);
    (num / (epsilon * n as f64)).clamp(0.0, 1.0)
}

/// Average error bound over the top-`k` ranks.
#[allow(clippy::too_many_arguments)]
pub fn avg_error_bound(
    ranked: &[u64],
    k: usize,
    w: usize,
    d: usize,
    alpha: f64,
    beta: f64,
    epsilon: f64,
    n: u64,
) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let total: f64 = (0..k)
        .map(|i| error_bound(ranked, i, w, d, alpha, beta, epsilon, n))
        .sum();
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf(n: u64, m: u64) -> Vec<u64> {
        ltc_workloads::ZipfCounts::new(n, m, 1.0).counts().to_vec()
    }

    #[test]
    fn correct_rate_in_unit_interval() {
        let ranked = zipf(100_000, 5_000);
        for &f in &[ranked[0], ranked[10], ranked[100], 1] {
            let p = correct_rate_bound(&ranked, f, 100, 8);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn more_buckets_raise_correct_rate() {
        let ranked = zipf(100_000, 5_000);
        let small = avg_correct_rate_bound(&ranked, 50, 20, 8);
        let large = avg_correct_rate_bound(&ranked, 50, 2_000, 8);
        assert!(
            large > small,
            "bound must improve with memory: {small} vs {large}"
        );
        assert!(large > 0.9, "huge table should make top-50 nearly sure");
    }

    #[test]
    fn deeper_buckets_raise_correct_rate() {
        let ranked = zipf(100_000, 5_000);
        let shallow = avg_correct_rate_bound(&ranked, 50, 200, 2);
        let deep = avg_correct_rate_bound(&ranked, 50, 200, 16);
        assert!(deep > shallow, "{shallow} vs {deep}");
    }

    #[test]
    fn d1_degenerates() {
        let ranked = zipf(10_000, 100);
        assert_eq!(correct_rate_bound(&ranked, 10, 10, 1), 0.0);
        assert_eq!(p_small(5, 10, 1), 1.0);
    }

    #[test]
    fn p_small_limits() {
        // Rank 0: nothing is more significant → λ=0 → P_small = 0 for d ≥ 2.
        assert_eq!(p_small(0, 100, 8), 0.0);
        // Huge rank in a tiny table: nearly certain.
        assert!(p_small(100_000, 10, 8) > 0.99);
        // More buckets → smaller P_small.
        assert!(p_small(1_000, 1_000, 8) < p_small(1_000, 100, 8));
    }

    #[test]
    fn poisson_psmall_matches_exact_binomial() {
        // In the experiments' regimes (w ≥ 80 buckets, ranks up to ~5000)
        // the Poisson approximation must track the exact binomial closely.
        for (rank, w, d) in [
            (0usize, 100usize, 8usize),
            (50, 100, 8),
            (500, 100, 8),
            (1_000, 640, 8),
            (5_000, 640, 8),
            (1_000, 80, 4),
        ] {
            let poisson = p_small(rank, w, d);
            let exact = p_small_binomial(rank, w, d);
            assert!(
                (poisson - exact).abs() < 0.02,
                "rank {rank} w {w} d {d}: poisson {poisson} vs exact {exact}"
            );
        }
    }

    #[test]
    fn binomial_psmall_edge_cases() {
        assert_eq!(p_small_binomial(0, 10, 8), 0.0, "nothing above rank 0");
        assert_eq!(p_small_binomial(3, 10, 8), 0.0, "fewer trials than d-1");
        assert_eq!(p_small_binomial(100, 10, 1), 1.0, "d=1 degenerates");
        assert_eq!(p_small_binomial(100, 1, 8), 1.0, "single bucket");
        // Monotone in rank.
        assert!(p_small_binomial(2_000, 50, 8) > p_small_binomial(500, 50, 8));
    }

    #[test]
    fn expected_v_decreases_with_rank() {
        let ranked = zipf(100_000, 1_000);
        let v0 = expected_v(&ranked, 0, 100);
        let v500 = expected_v(&ranked, 500, 100);
        assert!(v0 > v500);
        let vlast = expected_v(&ranked, ranked.len() - 1, 100);
        assert_eq!(vlast, 0.0, "nothing below the last rank");
    }

    #[test]
    fn error_bound_shrinks_with_memory() {
        let ranked = zipf(1_000_000, 50_000);
        let eps = 2f64.powi(-18);
        let tight = avg_error_bound(&ranked, 100, 80, 8, 1.0, 1.0, eps, 1_000_000);
        let roomy = avg_error_bound(&ranked, 100, 8_000, 8, 1.0, 1.0, eps, 1_000_000);
        assert!(roomy < tight, "{roomy} !< {tight}");
        assert!((0.0..=1.0).contains(&tight) && (0.0..=1.0).contains(&roomy));
    }

    #[test]
    fn correct_rate_bound_is_conservative_vs_simulation() {
        // The bound must sit at or below the measured correct rate (the
        // claim Fig. 7(a) demonstrates). Small instance, exact comparison.
        use ltc_common::{SignificanceQuery, Weights};
        use ltc_core::{Ltc, LtcConfig, Variant};
        use ltc_workloads::generator::zipf_stream;

        // Moderate congestion: ~8 candidate items per 8-cell bucket. (In
        // heavily overloaded tables the lemma's unmodelled first-arrival
        // condition bites and the bound is only validated empirically by the
        // fig07 binary, as the paper does.)
        let (n, m, w, d, k) = (40_000u64, 2_000u64, 256usize, 8usize, 50usize);
        let stream = zipf_stream(n, m, 1.0, 20, 3);
        let oracle = crate::oracle::Oracle::build(&stream);
        let weights = Weights::FREQUENT;
        let mut ltc = Ltc::new(
            LtcConfig::builder()
                .buckets(w)
                .cells_per_bucket(d)
                .weights(weights)
                .records_per_period(stream.layout.records_per_period().unwrap())
                .variant(Variant::DEVIATION_ONLY)
                .seed(11)
                .build(),
        );
        for period in stream.periods() {
            for &id in period {
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        // Measured correct rate over the true top-k.
        let truth = oracle.top_k(k, &weights);
        let correct = truth
            .iter()
            .filter(|e| ltc.estimate(e.id) == Some(e.value))
            .count();
        let measured = correct as f64 / k as f64;
        let ranked = oracle.ranked_frequencies();
        let bound = avg_correct_rate_bound(&ranked, k, w, d);
        assert!(
            bound <= measured + 0.05,
            "bound {bound} exceeds measured {measured}"
        );
    }
}
