//! Exact ground truth: per-item frequency and persistency, and the true
//! top-k significant set.

use ltc_common::{top_k_of, Estimate, ItemId, Weights};
use ltc_hash::{FxHashMap, FxHashSet};
use ltc_workloads::GeneratedStream;

/// Exact `(frequency, persistency)` for every distinct item of a stream.
#[derive(Debug, Clone)]
pub struct Oracle {
    table: FxHashMap<ItemId, (u64, u64)>,
    total_records: u64,
    total_periods: u64,
}

impl Oracle {
    /// Build from per-period record slices.
    pub fn from_periods<'a, I>(periods: I) -> Self
    where
        I: IntoIterator<Item = &'a [ItemId]>,
    {
        let mut table: FxHashMap<ItemId, (u64, u64)> = FxHashMap::default();
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        let mut total_records = 0u64;
        let mut total_periods = 0u64;
        for period in periods {
            total_periods += 1;
            seen.clear();
            for &id in period {
                total_records += 1;
                let entry = table.entry(id).or_insert((0, 0));
                entry.0 += 1;
                if seen.insert(id) {
                    entry.1 += 1;
                }
            }
        }
        Self {
            table,
            total_records,
            total_periods,
        }
    }

    /// Build from a generated stream.
    pub fn build(stream: &GeneratedStream) -> Self {
        Self::from_periods(stream.periods())
    }

    /// Exact frequency of `id` (0 if never seen).
    pub fn frequency(&self, id: ItemId) -> u64 {
        self.table.get(&id).map_or(0, |&(f, _)| f)
    }

    /// Exact persistency of `id` (0 if never seen).
    pub fn persistency(&self, id: ItemId) -> u64 {
        self.table.get(&id).map_or(0, |&(_, p)| p)
    }

    /// Exact significance of `id` under `weights`.
    pub fn significance(&self, id: ItemId, weights: &Weights) -> f64 {
        self.table
            .get(&id)
            .map_or(0.0, |&(f, p)| weights.significance(f, p))
    }

    /// The true top-k significant items under `weights`.
    pub fn top_k(&self, k: usize, weights: &Weights) -> Vec<Estimate> {
        top_k_of(
            self.table
                .iter()
                .map(|(&id, &(f, p))| Estimate::new(id, weights.significance(f, p)))
                .collect(),
            k,
        )
    }

    /// Number of distinct items.
    pub fn distinct_items(&self) -> usize {
        self.table.len()
    }

    /// Total records `N`.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total periods `T`.
    pub fn total_periods(&self) -> u64 {
        self.total_periods
    }

    /// Iterate `(id, frequency, persistency)` (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64, u64)> + '_ {
        self.table.iter().map(|(&id, &(f, p))| (id, f, p))
    }

    /// The frequency vector, heaviest first (used by Fig. 6 and by the
    /// theory module, which needs Zipf-ranked frequencies).
    pub fn ranked_frequencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.table.values().map(|&(f, _)| f).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_of(periods: &[&[ItemId]]) -> Oracle {
        Oracle::from_periods(periods.iter().copied())
    }

    #[test]
    fn counts_frequency_and_persistency() {
        let o = oracle_of(&[&[1, 1, 2], &[1, 3], &[3, 3, 3]]);
        assert_eq!(o.frequency(1), 3);
        assert_eq!(o.persistency(1), 2);
        assert_eq!(o.frequency(3), 4);
        assert_eq!(o.persistency(3), 2);
        assert_eq!(o.frequency(2), 1);
        assert_eq!(o.persistency(2), 1);
        assert_eq!(o.frequency(99), 0);
        assert_eq!(o.total_records(), 8);
        assert_eq!(o.total_periods(), 3);
        assert_eq!(o.distinct_items(), 3);
    }

    #[test]
    fn significance_respects_weights() {
        let o = oracle_of(&[&[1, 1, 2], &[1]]);
        let w = Weights::new(1.0, 10.0);
        assert_eq!(o.significance(1, &w), 3.0 + 20.0);
    }

    #[test]
    fn top_k_switches_with_weights() {
        // id 1: f=10, p=1. id 2: f=2, p=2.
        let o = oracle_of(&[&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2], &[2]]);
        assert_eq!(o.top_k(1, &Weights::FREQUENT)[0].id, 1);
        assert_eq!(o.top_k(1, &Weights::PERSISTENT)[0].id, 2);
    }

    #[test]
    fn ranked_frequencies_descending() {
        let o = oracle_of(&[&[1, 2, 2, 3, 3, 3]]);
        assert_eq!(o.ranked_frequencies(), vec![3, 2, 1]);
    }
}
