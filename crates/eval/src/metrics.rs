//! The paper's evaluation metrics (§V-A).

use crate::oracle::Oracle;
use ltc_common::{Estimate, Weights};
use ltc_hash::FxHashSet;

/// Precision: `|φ ∩ ψ| / k`, where `φ` is the true top-k set, `ψ` the
/// reported set, and `k = |φ|`.
pub fn precision(reported: &[Estimate], truth: &[Estimate]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: FxHashSet<u64> = truth.iter().map(|e| e.id).collect();
    let hits = reported
        .iter()
        .filter(|e| truth_ids.contains(&e.id))
        .count();
    hits as f64 / truth.len() as f64
}

/// Tie-aware precision: a reported item counts as correct if its **true**
/// value is at least the true k-th value. Identical to [`precision`] when
/// all true values are distinct, but fair when several items tie at the
/// top-k boundary (any of them is an equally correct answer; plain set
/// intersection would punish the algorithm for the oracle's arbitrary
/// tie-break).
pub fn tie_aware_precision(
    reported: &[Estimate],
    truth: &[Estimate],
    oracle: &Oracle,
    weights: &Weights,
) -> f64 {
    let Some(threshold) = truth.last().map(|e| e.value) else {
        return 1.0;
    };
    let k = truth.len();
    let mut seen = FxHashSet::default();
    let hits = reported
        .iter()
        .take(k)
        .filter(|e| seen.insert(e.id) && oracle.significance(e.id, weights) >= threshold)
        .count();
    hits as f64 / k as f64
}

/// ARE (average relative error): `(1/k) Σᵢ |sᵢ − ŝᵢ| / sᵢ` over the
/// **reported** items, with `sᵢ` the real significance (§V-A).
///
/// A reported item that never actually appeared has `sᵢ = 0`; its relative
/// error is counted as 1 (a wholly wrong report) rather than dividing by
/// zero. Reporting fewer than `k` items counts the missing slots as
/// relative error 1 as well — otherwise an algorithm could trim its ARE by
/// reporting nothing, which the paper's PIE-under-tight-memory discussion
/// clearly does not intend.
pub fn are(reported: &[Estimate], k: usize, oracle: &Oracle, weights: &Weights) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for e in reported.iter().take(k) {
        let real = oracle.significance(e.id, weights);
        if real > 0.0 {
            total += (real - e.value).abs() / real;
        } else {
            total += 1.0;
        }
    }
    total += (k.saturating_sub(reported.len())) as f64;
    total / k as f64
}

/// Recall of the true top-k: the fraction of the true set that was
/// reported. With `|reported| = |truth| = k` (every experiment here),
/// recall equals [`precision`]; it diverges for threshold-style queries
/// where the report size floats.
pub fn recall(reported: &[Estimate], truth: &[Estimate]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let reported_ids: FxHashSet<u64> = reported.iter().map(|e| e.id).collect();
    truth
        .iter()
        .filter(|e| reported_ids.contains(&e.id))
        .count() as f64
        / truth.len() as f64
}

/// F1: harmonic mean of report-size-normalised precision and recall.
pub fn f1(reported: &[Estimate], truth: &[Estimate]) -> f64 {
    if reported.is_empty() || truth.is_empty() {
        return if reported.is_empty() && truth.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let truth_ids: FxHashSet<u64> = truth.iter().map(|e| e.id).collect();
    let hits = reported
        .iter()
        .filter(|e| truth_ids.contains(&e.id))
        .count() as f64;
    let p = hits / reported.len() as f64;
    let r = hits / truth.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Rank quality of the reported list against the oracle's true values:
/// the normalised number of *concordant* adjacent pairs — 1.0 when the
/// reported order agrees with the true significance order everywhere,
/// 0.0 when fully reversed. (A cheap O(k) proxy for Kendall's τ, adequate
/// for comparing algorithms whose reports are already near-sorted.)
pub fn rank_quality(reported: &[Estimate], oracle: &Oracle, weights: &Weights) -> f64 {
    if reported.len() < 2 {
        return 1.0;
    }
    let real: Vec<f64> = reported
        .iter()
        .map(|e| oracle.significance(e.id, weights))
        .collect();
    let concordant = real.windows(2).filter(|w| w[0] >= w[1]).count();
    concordant as f64 / (real.len() - 1) as f64
}

/// AAE (average absolute error): `(1/k) Σᵢ |sᵢ − ŝᵢ|` over the reported
/// items. The paper drops AAE because it is dominated by the α, β scaling;
/// we keep it available for diagnostics.
pub fn aae(reported: &[Estimate], k: usize, oracle: &Oracle, weights: &Weights) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for e in reported.iter().take(k) {
        let real = oracle.significance(e.id, weights);
        total += (real - e.value).abs();
    }
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_common::ItemId;

    fn e(id: ItemId, v: f64) -> Estimate {
        Estimate::new(id, v)
    }

    fn toy_oracle() -> Oracle {
        // id 1: f=4,p=1; id 2: f=2,p=1; id 3: f=1,p=1.
        Oracle::from_periods(std::iter::once(&[1u64, 1, 1, 1, 2, 2, 3][..]))
    }

    #[test]
    fn precision_counts_overlap() {
        let truth = vec![e(1, 4.0), e(2, 2.0)];
        assert_eq!(precision(&[e(1, 4.0), e(3, 1.0)], &truth), 0.5);
        assert_eq!(precision(&[e(1, 4.0), e(2, 2.0)], &truth), 1.0);
        assert_eq!(precision(&[], &truth), 0.0);
    }

    #[test]
    fn precision_ignores_reported_values() {
        let truth = vec![e(1, 4.0)];
        assert_eq!(precision(&[e(1, 999.0)], &truth), 1.0);
    }

    #[test]
    fn tie_aware_accepts_equal_value_substitutes() {
        // Two periods; ids 1 and 2 both have f=2 (tied), id 3 has f=1.
        let o = Oracle::from_periods(std::iter::once(&[1u64, 1, 2, 2, 3][..]));
        let w = Weights::FREQUENT;
        let truth = o.top_k(1, &w); // picks id 1 by tie-break
        assert_eq!(truth[0].id, 1);
        // Reporting the *other* tied item is equally correct.
        assert_eq!(tie_aware_precision(&[e(2, 2.0)], &truth, &o, &w), 1.0);
        assert_eq!(precision(&[e(2, 2.0)], &truth), 0.0, "set-based differs");
        // Reporting the below-threshold item is not.
        assert_eq!(tie_aware_precision(&[e(3, 1.0)], &truth, &o, &w), 0.0);
    }

    #[test]
    fn tie_aware_ignores_duplicates_and_extras() {
        let o = Oracle::from_periods(std::iter::once(&[1u64, 1, 2][..]));
        let w = Weights::FREQUENT;
        let truth = o.top_k(2, &w);
        // Duplicate reports must not double count; only first k considered.
        let rep = vec![e(1, 2.0), e(1, 2.0), e(2, 1.0)];
        assert_eq!(tie_aware_precision(&rep, &truth, &o, &w), 0.5);
    }

    #[test]
    fn are_exact_reports_zero() {
        let o = toy_oracle();
        let w = Weights::FREQUENT;
        let reported = vec![e(1, 4.0), e(2, 2.0)];
        assert_eq!(are(&reported, 2, &o, &w), 0.0);
    }

    #[test]
    fn are_averages_relative_errors() {
        let o = toy_oracle();
        let w = Weights::FREQUENT;
        // |4-3|/4 = 0.25 and |2-1|/2 = 0.5 → mean 0.375.
        let reported = vec![e(1, 3.0), e(2, 1.0)];
        assert!((are(&reported, 2, &o, &w) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn are_penalises_ghosts_and_missing_slots() {
        let o = toy_oracle();
        let w = Weights::FREQUENT;
        // Ghost item 99 → rel err 1; one missing slot → 1. Mean = 1.
        let reported = vec![e(99, 7.0)];
        assert_eq!(are(&reported, 2, &o, &w), 1.0);
        assert_eq!(are(&[], 2, &o, &w), 1.0);
    }

    #[test]
    fn recall_counts_truth_coverage() {
        let truth = vec![e(1, 4.0), e(2, 2.0)];
        assert_eq!(recall(&[e(1, 4.0)], &truth), 0.5);
        assert_eq!(recall(&[e(1, 4.0), e(2, 2.0), e(3, 1.0)], &truth), 1.0);
        assert_eq!(recall(&[], &truth), 0.0);
    }

    #[test]
    fn f1_balances_precision_and_recall() {
        let truth = vec![e(1, 4.0), e(2, 2.0)];
        // 1 hit of 1 reported (p=1) over 2 truth (r=0.5) → F1 = 2/3.
        assert!((f1(&[e(1, 4.0)], &truth) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f1(&[], &[]), 1.0);
        assert_eq!(f1(&[e(9, 1.0)], &truth), 0.0);
    }

    #[test]
    fn rank_quality_detects_misordering() {
        let o = toy_oracle(); // real: 1→4, 2→2, 3→1
        let w = Weights::FREQUENT;
        assert_eq!(
            rank_quality(&[e(1, 0.0), e(2, 0.0), e(3, 0.0)], &o, &w),
            1.0
        );
        assert_eq!(
            rank_quality(&[e(3, 0.0), e(2, 0.0), e(1, 0.0)], &o, &w),
            0.0
        );
        assert_eq!(
            rank_quality(&[e(1, 0.0), e(3, 0.0), e(2, 0.0)], &o, &w),
            0.5
        );
        assert_eq!(rank_quality(&[e(1, 0.0)], &o, &w), 1.0, "trivial");
    }

    #[test]
    fn aae_absolute() {
        let o = toy_oracle();
        let w = Weights::FREQUENT;
        let reported = vec![e(1, 3.0), e(2, 4.0)];
        assert!((aae(&reported, 2, &o, &w) - 1.5).abs() < 1e-12);
    }
}
