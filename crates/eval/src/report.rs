//! Experiment result tables: the bench binaries print one [`Table`] per
//! paper figure, in both human-readable markdown and machine-readable JSON,
//! so `EXPERIMENTS.md` can quote them directly.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One figure's worth of series data: an x-axis and one y-series per
/// algorithm/variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Figure id, e.g. `"fig09a"`.
    pub id: String,
    /// Human title, e.g. `"Precision on frequent items (CAIDA)"`.
    pub title: String,
    /// X-axis label, e.g. `"memory (KB)"`.
    pub x_label: String,
    /// Series names in column order.
    pub series: Vec<String>,
    /// Rows: x value then one y per series (`NaN`-free; missing = `None`).
    pub rows: Vec<TableRow>,
}

/// One x position of a [`Table`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// X value.
    pub x: f64,
    /// One y per series.
    pub y: Vec<f64>,
}

impl Table {
    /// Start a table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        series: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Append a row. `y.len()` must equal the series count.
    pub fn push_row(&mut self, x: f64, y: Vec<f64>) {
        assert_eq!(
            y.len(),
            self.series.len(),
            "row width {} != series count {}",
            y.len(),
            self.series.len()
        );
        self.rows.push(TableRow { x, y });
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {s} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} |", trim_float(row.x));
            for &v in &row.y {
                let _ = write!(out, " {} |", format_value(v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{s}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{}", trim_float(row.x));
            for &v in &row.y {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// A persisted experiment record (one per bench binary invocation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Which figure this reproduces.
    pub figure: String,
    /// Dataset name.
    pub dataset: String,
    /// Free-form parameter description (k, weights, seeds, scale).
    pub params: String,
    /// The measured table.
    pub table: Table,
}

/// Format a metric: precision-like values with 4 digits, ARE-like values in
/// scientific notation when small/large.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if (0.001..10_000.0).contains(&v.abs()) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "fig00",
            "demo",
            "memory (KB)",
            vec!["LTC".into(), "SS".into()],
        );
        t.push_row(10.0, vec![0.99, 0.18]);
        t.push_row(50.0, vec![1.0, 0.63]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        for needle in [
            "fig00",
            "memory (KB)",
            "LTC",
            "SS",
            "0.9900",
            "| 10 |",
            "| 50 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn csv_round_trips_columns() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "memory (KB),LTC,SS");
        assert_eq!(lines.next().unwrap(), "10,0.99,0.18");
    }

    #[test]
    fn scientific_for_extremes() {
        assert_eq!(format_value(0.00001), "1.000e-5");
        assert!(format_value(123456789.0).contains('e'));
        assert_eq!(format_value(0.5), "0.5000");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        sample().push_row(1.0, vec![1.0]);
    }

    #[test]
    fn json_serialises() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 2);
    }
}
