//! Uniform construction of LTC and every baseline from the paper's
//! experiment parameters `(memory budget, k, weights)`.
//!
//! Memory allocation follows §V-C exactly:
//!
//! * LTC / SS / LC / MG — the whole budget buys table entries;
//! * sketch+heap (frequent) — `k` heap entries, rest to a 3-row sketch;
//! * sketch+BF+heap (persistent) — half to the Bloom filter, rest to
//!   heap + sketch;
//! * two-structure combiners (significant) — budget split evenly;
//! * PIE — **`T×` the budget**: one full budget per period ("we use T times
//!   of the default memory size for PIE … to make its performance
//!   comparable").

use ltc_baselines::{
    CountMinSketch, CountSketch, CuSketch, LossyCounting, MisraGries, PersistentSketch,
    SignificantCombiner, SketchTopK, SpaceSaving,
};
use ltc_common::{MemoryBudget, MemoryUsage, SignificanceQuery, StreamProcessor, Weights};
use ltc_core::{Ltc, LtcConfig, Variant};
use ltc_pie::{Pie, PieConfig};

/// Rows per sketch — the paper "set\[s\] the number of arrays to 3".
pub const SKETCH_ROWS: usize = 3;

/// Object-safe bundle of the three capabilities the harness needs.
pub trait Algorithm: StreamProcessor + SignificanceQuery + MemoryUsage {}
impl<T: StreamProcessor + SignificanceQuery + MemoryUsage> Algorithm for T {}

/// Which algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoSpec {
    /// LTC with the given optimizations (paper default: `Variant::FULL`).
    Ltc(Variant),
    /// Space-Saving.
    SpaceSaving,
    /// Lossy Counting.
    LossyCounting,
    /// Misra-Gries.
    MisraGries,
    /// Count-Min sketch + heap (frequent items).
    CmTopK,
    /// CU sketch + heap (frequent items).
    CuTopK,
    /// Count sketch + heap (frequent items).
    CountTopK,
    /// CM + Bloom filter + heap (persistent items).
    CmPersistent,
    /// CU + Bloom filter + heap (persistent items).
    CuPersistent,
    /// Count sketch + Bloom filter + heap (persistent items).
    CountPersistent,
    /// PIE (persistent items; gets `T×` memory per the paper).
    Pie,
    /// Coordinated bottom-k sampling (persistent items; the §II-B related
    /// work the paper cites but does not plot — available for ablations).
    CoordinatedSampling,
    /// CM-based frequent+persistent combiner (significant items).
    CmSignificant,
    /// CU-based frequent+persistent combiner (significant items).
    CuSignificant,
}

impl AlgoSpec {
    /// The frequent-items line-up of Figs. 9–10.
    pub fn frequent_lineup() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Ltc(Variant::FULL),
            AlgoSpec::SpaceSaving,
            AlgoSpec::LossyCounting,
            AlgoSpec::MisraGries,
            AlgoSpec::CmTopK,
            AlgoSpec::CuTopK,
            AlgoSpec::CountTopK,
        ]
    }

    /// The persistent-items line-up of Figs. 12–13.
    pub fn persistent_lineup() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Ltc(Variant::FULL),
            AlgoSpec::Pie,
            AlgoSpec::CmPersistent,
            AlgoSpec::CuPersistent,
        ]
    }

    /// The significant-items line-up of Figs. 14–15.
    pub fn significant_lineup() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Ltc(Variant::FULL),
            AlgoSpec::CmSignificant,
            AlgoSpec::CuSignificant,
        ]
    }
}

/// Experiment parameters shared by every algorithm instantiation.
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// The per-algorithm memory budget (PIE receives this *per period*).
    pub budget: MemoryBudget,
    /// Top-k target.
    pub k: usize,
    /// Significance weights.
    pub weights: Weights,
    /// Records per period `n` (drives LTC's CLOCK step).
    pub records_per_period: u64,
    /// Hash seed.
    pub seed: u64,
}

/// Instantiate `spec` under `params`.
pub fn build_algorithm(spec: AlgoSpec, params: &BuildParams) -> Box<dyn Algorithm> {
    let BuildParams {
        budget,
        k,
        weights,
        records_per_period,
        seed,
    } = *params;
    match spec {
        AlgoSpec::Ltc(variant) => Box::new(Ltc::new(
            LtcConfig::with_memory(budget, 8)
                .weights(weights)
                .records_per_period(records_per_period)
                .variant(variant)
                .seed(seed)
                .build(),
        )),
        AlgoSpec::SpaceSaving => Box::new(SpaceSaving::with_memory(budget)),
        AlgoSpec::LossyCounting => Box::new(LossyCounting::with_memory(budget)),
        AlgoSpec::MisraGries => Box::new(MisraGries::with_memory(budget)),
        AlgoSpec::CmTopK => Box::new(SketchTopK::<CountMinSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::CuTopK => Box::new(SketchTopK::<CuSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::CountTopK => Box::new(SketchTopK::<CountSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::CmPersistent => Box::new(PersistentSketch::<CountMinSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::CuPersistent => Box::new(PersistentSketch::<CuSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::CountPersistent => Box::new(PersistentSketch::<CountSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            seed,
        )),
        AlgoSpec::Pie => Box::new(Pie::new(PieConfig::with_memory_per_period(budget, 2, seed))),
        AlgoSpec::CoordinatedSampling => Box::new(ltc_baselines::CoordinatedSampling::with_memory(
            budget, seed,
        )),
        AlgoSpec::CmSignificant => Box::new(SignificantCombiner::<CountMinSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            weights,
            seed,
        )),
        AlgoSpec::CuSignificant => Box::new(SignificantCombiner::<CuSketch>::with_memory(
            budget,
            k,
            SKETCH_ROWS,
            weights,
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BuildParams {
        BuildParams {
            budget: MemoryBudget::kilobytes(50),
            k: 100,
            weights: Weights::BALANCED,
            records_per_period: 1_000,
            seed: 7,
        }
    }

    #[test]
    fn every_spec_builds_and_runs() {
        let specs = [
            AlgoSpec::Ltc(Variant::FULL),
            AlgoSpec::Ltc(Variant::BASIC),
            AlgoSpec::SpaceSaving,
            AlgoSpec::LossyCounting,
            AlgoSpec::MisraGries,
            AlgoSpec::CmTopK,
            AlgoSpec::CuTopK,
            AlgoSpec::CountTopK,
            AlgoSpec::CmPersistent,
            AlgoSpec::CuPersistent,
            AlgoSpec::CountPersistent,
            AlgoSpec::Pie,
            AlgoSpec::CoordinatedSampling,
            AlgoSpec::CmSignificant,
            AlgoSpec::CuSignificant,
        ];
        for spec in specs {
            let mut alg = build_algorithm(spec, &params());
            // 8 periods: enough for PIE's fountain decode (≥ 4 independent
            // symbols) so even the persistent baselines report something.
            for period in 0..8u64 {
                for i in 0..50u64 {
                    alg.insert(if i % 5 == 0 { 42 } else { period * 100 + i });
                }
                alg.end_period();
            }
            alg.finish();
            let top = alg.top_k(5);
            assert!(!top.is_empty(), "{:?} reported nothing", spec);
            assert!(!alg.name().is_empty());
        }
    }

    #[test]
    fn budgets_respected_within_model() {
        // Every non-PIE algorithm must fit its budget under the cost model.
        let p = params();
        for spec in [
            AlgoSpec::Ltc(Variant::FULL),
            AlgoSpec::SpaceSaving,
            AlgoSpec::LossyCounting,
            AlgoSpec::MisraGries,
            AlgoSpec::CmTopK,
            AlgoSpec::CuTopK,
            AlgoSpec::CountTopK,
            AlgoSpec::CmPersistent,
            AlgoSpec::CuPersistent,
            AlgoSpec::CmSignificant,
            AlgoSpec::CuSignificant,
        ] {
            let alg = build_algorithm(spec, &p);
            assert!(
                alg.memory_bytes() <= p.budget.as_bytes(),
                "{spec:?} uses {} > {}",
                alg.memory_bytes(),
                p.budget.as_bytes()
            );
        }
    }

    #[test]
    fn pie_budget_is_per_period() {
        let p = params();
        let mut pie = build_algorithm(AlgoSpec::Pie, &p);
        // After T periods PIE holds T+1 filters of one budget each.
        for _ in 0..4 {
            pie.end_period();
        }
        let per = p.budget.as_bytes();
        let used = pie.memory_bytes();
        assert!(used >= 5 * (per - per / 50), "{used} < ~5 budgets");
    }

    #[test]
    fn lineups_are_nonempty_and_start_with_ltc() {
        for lineup in [
            AlgoSpec::frequent_lineup(),
            AlgoSpec::persistent_lineup(),
            AlgoSpec::significant_lineup(),
        ] {
            assert!(matches!(lineup[0], AlgoSpec::Ltc(_)));
            assert!(lineup.len() >= 3);
        }
    }
}
