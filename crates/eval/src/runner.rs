//! Drive an algorithm over a generated stream and collect its report.

use crate::algorithms::Algorithm;
use crate::metrics;
use crate::oracle::Oracle;
use ltc_common::{Estimate, Weights};
use ltc_workloads::GeneratedStream;
use std::time::{Duration, Instant};

/// Everything one `(algorithm, stream)` run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm display name.
    pub name: &'static str,
    /// Reported top-k, descending.
    pub reported: Vec<Estimate>,
    /// Wall-clock insertion time (excludes the final query).
    pub insert_time: Duration,
    /// Records processed.
    pub records: u64,
    /// Memory footprint after the run (PIE grows per period).
    pub memory_bytes: usize,
}

impl RunOutcome {
    /// Insertion throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.records as f64 / self.insert_time.as_secs_f64() / 1e6
    }

    /// Precision against the true top-k (set intersection, §V-A).
    pub fn precision(&self, truth: &[Estimate]) -> f64 {
        metrics::precision(&self.reported, truth)
    }

    /// Tie-aware precision: equal-value substitutes at the top-k boundary
    /// count as correct (see [`metrics::tie_aware_precision`]).
    pub fn tie_aware_precision(
        &self,
        truth: &[Estimate],
        oracle: &Oracle,
        weights: &Weights,
    ) -> f64 {
        metrics::tie_aware_precision(&self.reported, truth, oracle, weights)
    }

    /// ARE against the oracle.
    pub fn are(&self, k: usize, oracle: &Oracle, weights: &Weights) -> f64 {
        metrics::are(&self.reported, k, oracle, weights)
    }
}

/// Feed every period of `stream` into `alg`, call
/// [`finish`](ltc_common::StreamProcessor::finish), query top-k once at the
/// end (§V-C: "For every experiment, we query top-k items once at the end").
pub fn run_algorithm(alg: &mut dyn Algorithm, stream: &GeneratedStream, k: usize) -> RunOutcome {
    let start = Instant::now();
    for period in stream.periods() {
        for &id in period {
            alg.insert(id);
        }
        alg.end_period();
    }
    alg.finish();
    let insert_time = start.elapsed();
    let reported = alg.top_k(k);
    RunOutcome {
        name: alg.name(),
        reported,
        insert_time,
        records: stream.len() as u64,
        memory_bytes: alg.memory_bytes(),
    }
}

/// Aggregate of one metric over repeated trials (distinct stream seeds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single trial).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of trials.
    pub trials: usize,
}

impl TrialStats {
    /// Summarise a slice of observations.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no trials to summarise");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            trials: values.len(),
        }
    }
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} [{:.4}, {:.4}] (n={})",
            self.mean, self.std, self.min, self.max, self.trials
        )
    }
}

/// Run one algorithm over `trials` freshly generated streams (the spec's
/// seed is varied per trial) and aggregate precision and ARE. This is how
/// a careful reader checks that a single-seed figure point is not a fluke.
pub fn run_trials(
    build: impl Fn() -> Box<dyn Algorithm>,
    spec: &ltc_workloads::StreamSpec,
    k: usize,
    weights: Weights,
    trials: usize,
) -> (TrialStats, TrialStats) {
    assert!(trials > 0, "need at least one trial");
    let mut precisions = Vec::with_capacity(trials);
    let mut ares = Vec::with_capacity(trials);
    for t in 0..trials {
        let stream = ltc_workloads::generate(&spec.with_seed(spec.seed ^ (t as u64) << 32 | 1));
        let oracle = Oracle::build(&stream);
        let truth = oracle.top_k(k, &weights);
        let mut alg = build();
        let outcome = run_algorithm(alg.as_mut(), &stream, k);
        precisions.push(outcome.tie_aware_precision(&truth, &oracle, &weights));
        ares.push(outcome.are(k, &oracle, &weights));
    }
    (TrialStats::of(&precisions), TrialStats::of(&ares))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{build_algorithm, AlgoSpec, BuildParams};
    use ltc_common::MemoryBudget;
    use ltc_core::Variant;
    use ltc_workloads::{generate, StreamSpec};

    fn stream() -> GeneratedStream {
        generate(&StreamSpec {
            name: "runner-test",
            total_records: 20_000,
            distinct_items: 2_000,
            periods: 20,
            zipf_skew: 1.1,
            burst_fraction: 0.2,
            periodic_fraction: 0.1,
            seed: 5,
        })
    }

    #[test]
    fn ltc_achieves_high_precision_on_easy_budget() {
        let s = stream();
        let oracle = Oracle::build(&s);
        let k = 50;
        let weights = Weights::BALANCED;
        let mut alg = build_algorithm(
            AlgoSpec::Ltc(Variant::FULL),
            &BuildParams {
                budget: MemoryBudget::kilobytes(64),
                k,
                weights,
                records_per_period: s.layout.records_per_period().unwrap(),
                seed: 1,
            },
        );
        let outcome = run_algorithm(alg.as_mut(), &s, k);
        let truth = oracle.top_k(k, &weights);
        let p = outcome.precision(&truth);
        assert!(p >= 0.9, "LTC precision {p} < 0.9 with generous memory");
        let a = outcome.are(k, &oracle, &weights);
        assert!(a <= 0.1, "LTC ARE {a} too high with generous memory");
    }

    #[test]
    fn outcome_tracks_records_and_time() {
        let s = stream();
        let mut alg = build_algorithm(
            AlgoSpec::SpaceSaving,
            &BuildParams {
                budget: MemoryBudget::kilobytes(8),
                k: 10,
                weights: Weights::FREQUENT,
                records_per_period: s.layout.records_per_period().unwrap(),
                seed: 1,
            },
        );
        let outcome = run_algorithm(alg.as_mut(), &s, 10);
        assert_eq!(outcome.records, 20_000);
        assert!(outcome.insert_time > Duration::ZERO);
        assert!(outcome.mops() > 0.0);
        assert_eq!(outcome.reported.len(), 10);
    }

    #[test]
    fn trial_stats_math() {
        let s = TrialStats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.trials), (1.0, 3.0, 3));
        let single = TrialStats::of(&[5.0]);
        assert_eq!((single.mean, single.std), (5.0, 0.0));
        assert!(single.to_string().contains("n=1"));
    }

    #[test]
    fn run_trials_aggregates_stable_ltc() {
        use ltc_workloads::StreamSpec;
        let spec = StreamSpec {
            name: "trials",
            total_records: 10_000,
            distinct_items: 1_000,
            periods: 20,
            zipf_skew: 1.0,
            burst_fraction: 0.2,
            periodic_fraction: 0.1,
            seed: 3,
        };
        let weights = Weights::BALANCED;
        let (p, a) = run_trials(
            || {
                build_algorithm(
                    AlgoSpec::Ltc(Variant::FULL),
                    &BuildParams {
                        budget: MemoryBudget::kilobytes(16),
                        k: 25,
                        weights,
                        records_per_period: 500,
                        seed: 9,
                    },
                )
            },
            &spec,
            25,
            weights,
            4,
        );
        assert_eq!(p.trials, 4);
        assert!(p.mean >= 0.9, "LTC unstable across seeds: {p}");
        assert!(p.std <= 0.1, "high variance: {p}");
        assert!(a.mean <= 0.05, "ARE across seeds: {a}");
    }
}
