//! Property-based tests for the baseline algorithms' textbook guarantees.

use ltc_baselines::{
    BloomFilter, CountMinSketch, CountSketch, CuSketch, FrequencySketch, LossyCounting, MisraGries,
    SpaceSaving, TopKHeap,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn truth(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &id in stream {
        *m.entry(id).or_insert(0) += 1;
    }
    m
}

fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Space-Saving: count ≥ truth and count − err ≤ truth, for every
    /// tracked item, under any stream and capacity.
    #[test]
    fn space_saving_sandwich(stream in stream_strategy(), cap in 1usize..32) {
        let mut ss = SpaceSaving::new(cap);
        for &id in &stream {
            ss.insert(id);
        }
        let real = truth(&stream);
        for (id, count, err) in ss.iter() {
            let t = real[&id];
            prop_assert!(count >= t, "id {id}: {count} < {t}");
            prop_assert!(count - err <= t, "id {id}: lower bound {} > {t}", count - err);
        }
    }

    /// Space-Saving: any item with true count > N/cap is tracked
    /// (the frequent-items guarantee).
    #[test]
    fn space_saving_no_false_negatives(stream in stream_strategy(), cap in 1usize..32) {
        let mut ss = SpaceSaving::new(cap);
        for &id in &stream {
            ss.insert(id);
        }
        let n = stream.len() as u64;
        for (&id, &t) in &truth(&stream) {
            if t > n / cap as u64 {
                prop_assert!(ss.count_of(id).is_some(), "frequent id {id} (f={t}) missing");
            }
        }
    }

    /// Misra-Gries: never overestimates; underestimates by ≤ N/(cap+1).
    #[test]
    fn misra_gries_bounds(stream in stream_strategy(), cap in 1usize..32) {
        let mut mg = MisraGries::new(cap);
        for &id in &stream {
            mg.insert(id);
        }
        let real = truth(&stream);
        let bound = stream.len() as u64 / (cap as u64 + 1);
        for (id, c) in mg.iter() {
            prop_assert!(c <= real[&id]);
        }
        for (&id, &t) in &real {
            let tracked = mg.count_of(id).unwrap_or(0);
            prop_assert!(t - tracked <= bound, "id {id}: err {} > {bound}", t - tracked);
        }
    }

    /// Lossy Counting: never overestimates; any item above εN survives with
    /// error ≤ εN (for streams that respect the entry budget).
    #[test]
    fn lossy_counting_bounds(stream in stream_strategy(), cap in 8usize..64) {
        let mut lc = LossyCounting::new(cap);
        for &id in &stream {
            lc.insert(id);
        }
        let real = truth(&stream);
        for (id, f, _) in lc.iter() {
            prop_assert!(f <= real[&id]);
        }
        let eps_n = (lc.epsilon() * stream.len() as f64).ceil() as u64;
        for (&id, &t) in &real {
            if t > eps_n {
                let f = lc.entry_of(id).map(|(f, _)| f).unwrap_or(0);
                prop_assert!(t - f <= eps_n, "id {id}: err {} > εN {eps_n}", t - f);
            }
        }
    }

    /// CM and CU never underestimate; CU never exceeds CM cell-for-cell.
    #[test]
    fn cm_cu_one_sided_and_dominated(
        stream in stream_strategy(),
        width in 4usize..64,
        seed in 0u64..1000,
    ) {
        let mut cm = CountMinSketch::new(3, width, seed);
        let mut cu = CuSketch::new(3, width, seed);
        for &id in &stream {
            cm.increment(id);
            cu.increment(id);
        }
        for (&id, &t) in &truth(&stream) {
            let (ecm, ecu) = (cm.estimate(id), cu.estimate(id));
            prop_assert!(ecm >= t, "CM underestimated {id}");
            prop_assert!(ecu >= t, "CU underestimated {id}");
            prop_assert!(ecu <= ecm, "CU {ecu} above CM {ecm} for {id}");
        }
    }

    /// Count sketch stays exact when collision-free (huge width) and finite
    /// otherwise.
    #[test]
    fn count_sketch_exact_without_collisions(stream in prop::collection::vec(0u64..8, 1..300)) {
        let mut cs = CountSketch::new(3, 1 << 16, 77);
        for &id in &stream {
            cs.increment(id);
        }
        for (&id, &t) in &truth(&stream) {
            prop_assert_eq!(cs.estimate(id), t, "id {}", id);
        }
    }

    /// Bloom filter: zero false negatives within a period, under any
    /// insert/clear schedule.
    #[test]
    fn bloom_no_false_negatives(
        periods in prop::collection::vec(prop::collection::vec(0u64..5000, 0..100), 1..8),
        bits_pow in 8u32..14,
    ) {
        let mut bf = BloomFilter::new(1usize << bits_pow, 3, 5);
        for period in &periods {
            for &id in period {
                bf.insert(id);
            }
            for &id in period {
                prop_assert!(bf.contains(id), "false negative {id}");
            }
            bf.clear();
        }
    }

    /// TopKHeap agrees with a sort-based oracle on final contents when every
    /// item is offered its final value once.
    #[test]
    fn heap_matches_oracle(values in prop::collection::vec(0u64..10_000, 1..200), k in 1usize..16) {
        let mut heap = TopKHeap::new(k);
        for (i, &v) in values.iter().enumerate() {
            heap.offer(i as u64, v as f64);
        }
        let mut oracle: Vec<(u64, usize)> = values.iter().map(|&v| (v, 0)).enumerate()
            .map(|(i, (v, _))| (v, i)).collect();
        oracle.sort_by(|a, b| b.cmp(a));
        let expect: Vec<f64> = oracle.iter().take(k.min(values.len())).map(|&(v, _)| v as f64).collect();
        let got: Vec<f64> = heap.top_k(k).iter().map(|e| e.value).collect();
        prop_assert_eq!(got, expect);
    }
}
