//! A standard Bloom filter (Bloom 1970), used by the sketch-based
//! persistent-items adaptation to deduplicate appearances within one period
//! (paper §II-B: "we maintain a standard Bloom filter to record whether it
//! has appeared in the current period").

use ltc_common::{ItemId, MemoryBudget, MemoryUsage};
use ltc_hash::{HashFamily, SeededHash};

/// Bit-array Bloom filter with `k` independent hash probes and O(1) clear
/// via epoch-stamped words.
///
/// # Examples
///
/// ```
/// use ltc_baselines::BloomFilter;
///
/// let mut bf = BloomFilter::new(1 << 12, 4, 7);
/// assert!(!bf.insert(99)); // first time: not yet present
/// assert!(bf.contains(99));
/// bf.clear();              // O(1) period reset
/// assert!(!bf.contains(99));
/// ```
///
/// Clearing at every period boundary is on the hot path for the persistent
/// baselines (up to thousands of clears per run), so instead of zeroing the
/// array we stamp each 64-bit word with the epoch it was last written in;
/// reads treat stale words as zero. `clear()` is then a single increment.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u64>,
    epochs: Vec<u32>,
    epoch: u32,
    bits: usize,
    hashes: Vec<SeededHash>,
}

impl BloomFilter {
    /// A filter of `bits` bits with `k` hash functions.
    pub fn new(bits: usize, k: usize, seed: u64) -> Self {
        assert!(bits > 0, "Bloom filter needs at least one bit");
        assert!(k > 0, "Bloom filter needs at least one hash");
        let words = bits.div_ceil(64);
        Self {
            words: vec![0; words],
            epochs: vec![0; words],
            epoch: 1,
            bits,
            hashes: HashFamily::new(seed).members(k as u32),
        }
    }

    /// Size for a memory budget (8 bits per byte), with the given hash count.
    pub fn with_memory(budget: MemoryBudget, k: usize, seed: u64) -> Self {
        Self::new((budget.as_bytes() * 8).max(1), k, seed)
    }

    /// Number of bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Insert `id`. Returns `true` if it was (possibly) already present —
    /// i.e. every probed bit was already set.
    pub fn insert(&mut self, id: ItemId) -> bool {
        let mut all_set = true;
        for h in 0..self.hashes.len() {
            let bit = self.hashes[h].index(id, self.bits);
            let (w, b) = (bit / 64, bit % 64);
            if self.epochs[w] != self.epoch {
                self.epochs[w] = self.epoch;
                self.words[w] = 0;
            }
            let mask = 1u64 << b;
            if self.words[w] & mask == 0 {
                all_set = false;
                self.words[w] |= mask;
            }
        }
        all_set
    }

    /// Whether `id` is (possibly) present. No false negatives.
    pub fn contains(&self, id: ItemId) -> bool {
        self.hashes.iter().all(|h| {
            let bit = h.index(id, self.bits);
            let (w, b) = (bit / 64, bit % 64);
            self.epochs[w] == self.epoch && self.words[w] & (1u64 << b) != 0
        })
    }

    /// Reset to empty in O(1).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (after 2^32 clears): physically zero to stay safe.
            self.words.fill(0);
            self.epochs.fill(0);
            self.epoch = 1;
        }
    }

    /// Expected false-positive rate after `n` insertions:
    /// `(1 - e^{-kn/m})^k`.
    pub fn expected_fpr(&self, n: usize) -> f64 {
        let k = self.hashes.len() as f64;
        let m = self.bits as f64;
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }
}

impl MemoryUsage for BloomFilter {
    fn memory_bytes(&self) -> usize {
        // Charged as a plain bit array, as the paper does; the epoch stamps
        // are an implementation detail standing in for the O(m) clear.
        self.bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 12, 4, 1);
        for id in 0..200u64 {
            bf.insert(id);
        }
        for id in 0..200u64 {
            assert!(bf.contains(id), "false negative for {id}");
        }
    }

    #[test]
    fn insert_reports_first_occurrence() {
        let mut bf = BloomFilter::new(1 << 12, 4, 2);
        assert!(!bf.insert(9), "first insert: not yet present");
        assert!(bf.insert(9), "second insert: already present");
    }

    #[test]
    fn clear_empties() {
        let mut bf = BloomFilter::new(1 << 10, 3, 3);
        bf.insert(1);
        bf.insert(2);
        bf.clear();
        assert!(!bf.contains(1));
        assert!(!bf.contains(2));
        assert!(!bf.insert(1), "fresh after clear");
    }

    #[test]
    fn repeated_clears_stay_correct() {
        let mut bf = BloomFilter::new(1 << 10, 3, 4);
        for round in 0..1_000u64 {
            assert!(!bf.insert(round), "round {round}: stale bit leaked");
            assert!(bf.contains(round));
            bf.clear();
        }
    }

    #[test]
    fn false_positive_rate_in_expected_ballpark() {
        let mut bf = BloomFilter::new(1 << 14, 4, 5);
        let n = 1_500usize;
        for id in 0..n as u64 {
            bf.insert(id);
        }
        let fp = (0..20_000u64)
            .map(|i| 1_000_000 + i)
            .filter(|&id| bf.contains(id))
            .count();
        let observed = fp as f64 / 20_000.0;
        let expected = bf.expected_fpr(n);
        assert!(
            observed < expected * 3.0 + 0.01,
            "observed FPR {observed} vs expected {expected}"
        );
    }

    #[test]
    fn with_memory_uses_all_bits() {
        let bf = BloomFilter::with_memory(MemoryBudget::kilobytes(1), 3, 6);
        assert_eq!(bf.bits(), 8 * 1024);
        assert_eq!(bf.memory_bytes(), 1024);
    }
}
