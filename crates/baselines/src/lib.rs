//! # ltc-baselines — every algorithm the LTC paper compares against
//!
//! The paper (§II, §V) evaluates LTC against two families:
//!
//! * **Counter-based frequent-item algorithms** — [`SpaceSaving`] with a
//!   proper O(1) Stream-Summary, [`LossyCounting`], and [`MisraGries`];
//! * **Sketch-based algorithms** — [`CountMinSketch`] (CM), [`CuSketch`]
//!   (conservative update), and [`CountSketch`], each paired with a top-k
//!   [`TopKHeap`] via [`SketchTopK`].
//!
//! Because no prior work solves persistent or significant items with one
//! structure, the paper *constructs* baselines for those problems and so do
//! we:
//!
//! * [`PersistentSketch`] — a sketch counts per-period first appearances,
//!   deduplicated by a standard [`BloomFilter`] that is cleared at every
//!   period boundary (half the memory goes to the filter, as in §V-C);
//! * [`SignificantCombiner`] — a frequent-item structure and a
//!   persistent-item structure run side by side on half the memory each,
//!   and top-k significance is computed over the union of their candidates.
//!
//! All structures implement the shared [`ltc_common::StreamProcessor`] /
//! [`ltc_common::SignificanceQuery`] traits so the experiment harness drives
//! them interchangeably with LTC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod coordinated_sampling;
pub mod lossy_counting;
pub mod misra_gries;
pub mod persistent;
pub mod significant;
pub mod sketch;
pub mod space_saving;
pub mod topk;

pub use bloom::BloomFilter;
pub use coordinated_sampling::CoordinatedSampling;
pub use lossy_counting::LossyCounting;
pub use misra_gries::MisraGries;
pub use persistent::PersistentSketch;
pub use significant::SignificantCombiner;
pub use sketch::{CountMinSketch, CountSketch, CuSketch, FrequencySketch, SketchTopK};
pub use space_saving::SpaceSaving;
pub use topk::TopKHeap;
