//! Lossy Counting (Manku & Motwani), "LC" in the paper.
//!
//! The stream is conceptually divided into windows of `width = ⌈1/ε⌉`
//! records. Each tracked entry stores `(f, Δ)` where `Δ` is the window index
//! at insertion — the maximum number of occurrences the entry might have
//! missed. At every window boundary, entries with `f + Δ ≤ current window`
//! are pruned. Guarantees: no false negatives above `εN`, and estimates
//! underestimate by at most `εN`.
//!
//! For the paper's head-to-head memory comparison we derive ε from the entry
//! budget (`ε = 1/capacity`, i.e. window = capacity) and additionally
//! hard-enforce the budget: if the table outgrows it mid-window (possible on
//! adversarially spread streams), the largest-`Δ`, smallest-`f` entries are
//! pruned first. This keeps LC honest about memory without changing its
//! behaviour on the long-tailed workloads the experiments use.

use ltc_common::{
    memory::COUNTER_ENTRY_BYTES, top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage,
    SignificanceQuery, StreamProcessor,
};
use ltc_hash::FxHashMap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    freq: u64,
    delta: u64,
}

/// Lossy Counting. See the module docs.
#[derive(Debug, Clone)]
pub struct LossyCounting {
    entries: FxHashMap<ItemId, Entry>,
    capacity: usize,
    /// Window width `w = ⌈1/ε⌉`.
    width: u64,
    /// Records processed so far.
    processed: u64,
    /// Current window index (1-based, `b_current` in the paper).
    window: u64,
}

impl LossyCounting {
    /// Track roughly `capacity` entries (ε = 1/capacity).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Lossy Counting needs capacity >= 1");
        Self {
            entries: FxHashMap::default(),
            capacity,
            width: capacity as u64,
            processed: 0,
            window: 1,
        }
    }

    /// Size for a memory budget at 16 B/entry.
    pub fn with_memory(budget: MemoryBudget) -> Self {
        Self::new(budget.entries(COUNTER_ENTRY_BYTES))
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The error parameter ε this instance was sized with.
    pub fn epsilon(&self) -> f64 {
        1.0 / self.width as f64
    }

    /// `(f, Δ)` for `id`, if tracked.
    pub fn entry_of(&self, id: ItemId) -> Option<(u64, u64)> {
        self.entries.get(&id).map(|e| (e.freq, e.delta))
    }

    /// Record one occurrence.
    pub fn insert(&mut self, id: ItemId) {
        self.processed += 1;
        match self.entries.get_mut(&id) {
            Some(e) => e.freq += 1,
            None => {
                let delta = self.window - 1;
                self.entries.insert(id, Entry { freq: 1, delta });
                if self.entries.len() > self.capacity {
                    self.enforce_budget();
                }
            }
        }
        if self.processed.is_multiple_of(self.width) {
            self.prune();
            self.window += 1;
        }
    }

    /// Standard boundary prune: drop `f + Δ ≤ b_current`.
    fn prune(&mut self) {
        let b = self.window;
        self.entries.retain(|_, e| e.freq + e.delta > b);
    }

    /// Budget overflow: drop the weakest entries (smallest `f + Δ`, i.e. the
    /// ones the next boundary would prune first) down to capacity.
    fn enforce_budget(&mut self) {
        let excess = self.entries.len().saturating_sub(self.capacity);
        if excess == 0 {
            return;
        }
        let mut scored: Vec<(u64, ItemId)> = self
            .entries
            .iter()
            .map(|(&id, e)| (e.freq + e.delta, id))
            .collect();
        scored.sort_unstable();
        for &(_, id) in scored.iter().take(excess) {
            self.entries.remove(&id);
        }
    }

    /// Iterate `(id, f, Δ)` (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64, u64)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e.freq, e.delta))
    }
}

impl StreamProcessor for LossyCounting {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        LossyCounting::insert(self, id);
    }

    fn name(&self) -> &'static str {
        "LC"
    }
}

impl SignificanceQuery for LossyCounting {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.entries.get(&id).map(|e| e.freq as f64)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(
            self.entries
                .iter()
                .map(|(&id, e)| Estimate::new(id, e.freq as f64))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for LossyCounting {
    fn memory_bytes(&self) -> usize {
        self.capacity * COUNTER_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_streams() {
        let mut lc = LossyCounting::new(100);
        for _ in 0..7 {
            lc.insert(1);
        }
        for _ in 0..3 {
            lc.insert(2);
        }
        assert_eq!(lc.entry_of(1), Some((7, 0)));
        assert_eq!(lc.entry_of(2), Some((3, 0)));
    }

    #[test]
    fn never_overestimates() {
        // LC's tracked f counts only observed occurrences.
        let mut lc = LossyCounting::new(16);
        let mut truth = std::collections::HashMap::new();
        for i in 0..5_000u64 {
            let id = (i * 31) % 97;
            lc.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (id, f, _) in lc.iter() {
            assert!(f <= truth[&id], "id {id}: {f} > {}", truth[&id]);
        }
    }

    #[test]
    fn underestimate_bounded_by_epsilon_n() {
        let mut lc = LossyCounting::new(50);
        let n = 20_000u64;
        let mut truth = std::collections::HashMap::new();
        for i in 0..n {
            // Zipf-ish: id 0 heavy, the rest spread.
            let id = if i % 3 == 0 { 0 } else { 1 + (i % 200) };
            lc.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        let eps_n = (lc.epsilon() * n as f64).ceil() as u64;
        // Heavy hitter must be present with error ≤ εN.
        let (f, _) = lc.entry_of(0).expect("heavy hitter pruned");
        assert!(
            truth[&0] - f <= eps_n,
            "error {} > εN {eps_n}",
            truth[&0] - f
        );
    }

    #[test]
    fn prunes_cold_items() {
        let mut lc = LossyCounting::new(10);
        // 10 windows of width 10; singletons from early windows must be gone.
        for i in 0..100u64 {
            lc.insert(1_000 + i); // all distinct
        }
        assert!(
            lc.len() <= 10,
            "cold singletons retained: {} entries",
            lc.len()
        );
    }

    #[test]
    fn budget_hard_enforced() {
        let mut lc = LossyCounting::new(8);
        for i in 0..1_000u64 {
            lc.insert(i);
        }
        assert!(lc.len() <= 8, "budget exceeded: {}", lc.len());
    }

    #[test]
    fn top_k_by_frequency() {
        let mut lc = LossyCounting::new(100);
        for (id, n) in [(1u64, 30usize), (2, 20), (3, 10)] {
            for _ in 0..n {
                lc.insert(id);
            }
        }
        let ids: Vec<ItemId> = lc.top_k(2).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
