//! The two-structure **significant-items** baseline (paper §II, §V-H).
//!
//! "There is no prior work on finding significant items, thus we combine the
//! best algorithm on finding frequent items with the best algorithm on
//! finding persistent items": one structure of each kind runs side by side,
//! each on **half** the memory, and top-k significance is computed over the
//! union of their candidate sets with `ŝ = α·f̂ + β·p̂`.

use crate::persistent::PersistentSketch;
use crate::sketch::{FrequencySketch, SketchTopK};
use ltc_common::{
    top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage, SignificanceQuery, StreamProcessor,
    Weights,
};
use ltc_hash::FxHashSet;

/// Frequent-finder + persistent-finder glued by the significance formula.
/// `S` is the sketch family used on both sides (CM or CU in the paper's
/// experiments).
#[derive(Debug, Clone)]
pub struct SignificantCombiner<S> {
    frequent: SketchTopK<S>,
    persistent: PersistentSketch<S>,
    weights: Weights,
    name: &'static str,
}

fn combiner_name(base: &'static str) -> &'static str {
    match base {
        "CM" => "CM-SIG",
        "CU" => "CU-SIG",
        "Count" => "Count-SIG",
        _ => "Sketch-SIG",
    }
}

impl<S: FrequencySketch> SignificantCombiner<S> {
    /// Split `budget` evenly between the frequent and the persistent side.
    /// Each side keeps its own `k`-entry heap; `rows` sketch arrays each.
    pub fn with_memory(
        budget: MemoryBudget,
        k: usize,
        rows: usize,
        weights: Weights,
        seed: u64,
    ) -> Self {
        let halves = budget.split(2);
        Self {
            frequent: SketchTopK::with_memory(halves[0], k, rows, seed),
            persistent: PersistentSketch::with_memory(halves[1], k, rows, seed ^ 0x51f1),
            weights,
            name: combiner_name(S::NAME),
        }
    }

    /// The frequent-items half.
    pub fn frequent(&self) -> &SketchTopK<S> {
        &self.frequent
    }

    /// The persistent-items half.
    pub fn persistent(&self) -> &PersistentSketch<S> {
        &self.persistent
    }

    /// The significance weights.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    fn significance_of(&self, id: ItemId) -> f64 {
        let f = self.frequent.estimate(id).unwrap_or(0.0);
        let p = self.persistent.estimate(id).unwrap_or(0.0);
        self.weights.alpha * f + self.weights.beta * p
    }
}

impl<S: FrequencySketch> StreamProcessor for SignificantCombiner<S> {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        self.frequent.insert(id);
        self.persistent.insert(id);
    }

    fn end_period(&mut self) {
        self.frequent.end_period();
        self.persistent.end_period();
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

impl<S: FrequencySketch> SignificanceQuery for SignificantCombiner<S> {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        Some(self.significance_of(id))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        // Candidates: anything either heap considered top-k worthy. Each is
        // re-scored with the *combined* significance (point queries hit the
        // sketches for the side that did not track the item).
        let mut candidates: FxHashSet<ItemId> = FxHashSet::default();
        for e in self.frequent.heap().iter() {
            candidates.insert(e.id);
        }
        for e in self.persistent.top_k(usize::MAX) {
            candidates.insert(e.id);
        }
        top_k_of(
            candidates
                .into_iter()
                .map(|id| Estimate::new(id, self.significance_of(id)))
                .collect(),
            k,
        )
    }
}

impl<S: FrequencySketch> MemoryUsage for SignificantCombiner<S> {
    fn memory_bytes(&self) -> usize {
        self.frequent.memory_bytes() + self.persistent.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{CountMinSketch, CuSketch};

    /// Stream with a frequent-only item (burst), a persistent-only item, and
    /// a significant item that is both.
    fn drive(c: &mut impl StreamProcessor) {
        for period in 0..10u64 {
            for rep in 0..20u64 {
                c.insert(1); // significant: 20/period, every period
                if period == 0 {
                    c.insert(2); // burst: frequent in period 0 only
                    c.insert(2);
                    c.insert(2);
                }
                if rep == 0 {
                    c.insert(3); // persistent: once per period
                }
                c.insert(10_000 + period * 100 + rep);
            }
            c.end_period();
        }
    }

    #[test]
    fn significant_item_wins_balanced_weights() {
        let mut c = SignificantCombiner::<CountMinSketch>::with_memory(
            MemoryBudget::kilobytes(64),
            8,
            3,
            Weights::BALANCED,
            11,
        );
        drive(&mut c);
        assert_eq!(c.top_k(1)[0].id, 1);
    }

    #[test]
    fn beta_heavy_weights_favor_persistent() {
        let mut c = SignificantCombiner::<CuSketch>::with_memory(
            MemoryBudget::kilobytes(64),
            8,
            3,
            Weights::new(1.0, 100.0),
            11,
        );
        drive(&mut c);
        let top: Vec<ItemId> = c.top_k(3).iter().map(|e| e.id).collect();
        // Item 1 (p=10) and item 3 (p=10) dominate the burst (p=1).
        assert!(top.contains(&1) && top.contains(&3), "{top:?}");
        assert!(!top.is_empty() && top[0] == 1 || top[0] == 3);
    }

    #[test]
    fn alpha_heavy_weights_favor_frequent() {
        let mut c = SignificantCombiner::<CuSketch>::with_memory(
            MemoryBudget::kilobytes(64),
            8,
            3,
            Weights::new(100.0, 1.0),
            11,
        );
        drive(&mut c);
        let top: Vec<ItemId> = c.top_k(2).iter().map(|e| e.id).collect();
        assert_eq!(top[0], 1, "most frequent overall");
    }

    #[test]
    fn memory_split_stays_within_budget() {
        let budget = MemoryBudget::kilobytes(100);
        let c = SignificantCombiner::<CountMinSketch>::with_memory(
            budget,
            100,
            3,
            Weights::BALANCED,
            1,
        );
        assert!(c.memory_bytes() <= budget.as_bytes());
    }

    #[test]
    fn estimate_combines_both_sides() {
        let mut c = SignificantCombiner::<CountMinSketch>::with_memory(
            MemoryBudget::kilobytes(64),
            8,
            3,
            Weights::new(2.0, 3.0),
            5,
        );
        for _ in 0..4 {
            c.insert(9);
        }
        c.end_period();
        // f̂ = 4, p̂ = 1 → s = 2·4 + 3·1 = 11.
        assert_eq!(c.estimate(9), Some(11.0));
    }
}
