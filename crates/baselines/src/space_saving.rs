//! Space-Saving (Metwally, Agrawal, El Abbadi), "SS" in the paper, with the
//! original **Stream-Summary** structure for O(1) updates.
//!
//! `capacity` counters hold `⟨id, count, err⟩`. A hit increments the item's
//! counter; a miss on a full table overwrites the item with the *minimum*
//! count: the newcomer inherits `count_min + 1` and records `err = count_min`
//! (its possible overestimation). The paper contrasts exactly this inherit-
//! and-overwrite rule with LTC's decrement-and-restore Long-tail Replacement
//! (§I-C, §V-F analysis: "the strategy of increment would lead to huge
//! overestimation error").
//!
//! The Stream-Summary keeps counters grouped in buckets of equal count,
//! buckets linked in ascending order, so "find min" and "move to count+1"
//! are both O(1). We realise the two doubly-linked lists in index arenas
//! (no `unsafe`, no per-node allocation).

use ltc_common::{
    memory::COUNTER_ENTRY_BYTES, top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage,
    SignificanceQuery, StreamProcessor,
};
use ltc_hash::FxHashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Counter {
    id: ItemId,
    count: u64,
    /// Maximum possible overestimation: the count the evicted predecessor
    /// had when this item took over its counter.
    err: u64,
    bucket: usize,
    prev: usize,
    next: usize,
}

#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    head: usize,
    prev: usize,
    next: usize,
}

/// Space-Saving with Stream-Summary. See the module docs.
///
/// # Examples
///
/// ```
/// use ltc_baselines::SpaceSaving;
/// use ltc_common::SignificanceQuery;
///
/// let mut ss = SpaceSaving::new(4);
/// for _ in 0..10 { ss.insert(1); }
/// for _ in 0..3 { ss.insert(2); }
/// assert_eq!(ss.top_k(1)[0].id, 1);
/// // count ≥ truth, count − err ≤ truth:
/// let (count, err) = ss.count_of(1).unwrap();
/// assert!(count >= 10 && count - err <= 10);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    counters: Vec<Counter>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<usize>,
    /// Bucket with the smallest count (list head), NIL while empty.
    min_bucket: usize,
    index: FxHashMap<ItemId, usize>,
    capacity: usize,
}

impl SpaceSaving {
    /// Track at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Space-Saving needs capacity >= 1");
        Self {
            counters: Vec::with_capacity(capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            index: FxHashMap::default(),
            capacity,
        }
    }

    /// Size for a memory budget at the paper's 16 B/entry model.
    pub fn with_memory(budget: MemoryBudget) -> Self {
        Self::new(budget.entries(COUNTER_ENTRY_BYTES))
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current minimum count (0 while not full).
    pub fn min_count(&self) -> u64 {
        if self.index.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// `(count, err)` of `id`, if tracked. `count - err` is a guaranteed
    /// lower bound on the true frequency.
    pub fn count_of(&self, id: ItemId) -> Option<(u64, u64)> {
        self.index.get(&id).map(|&c| {
            let ctr = &self.counters[c];
            (ctr.count, ctr.err)
        })
    }

    /// Record one occurrence of `id`.
    pub fn insert(&mut self, id: ItemId) {
        if let Some(&c) = self.index.get(&id) {
            self.increment(c);
        } else if self.counters.len() < self.capacity {
            let c = self.counters.len();
            self.counters.push(Counter {
                id,
                count: 0, // placed below
                err: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.place(c, 1, NIL);
            self.counters[c].count = 1;
            self.index.insert(id, c);
        } else {
            // Replace the minimum: Space-Saving's characteristic move.
            let c = self.buckets[self.min_bucket].head;
            debug_assert_ne!(c, NIL);
            let old_id = self.counters[c].id;
            let old_count = self.counters[c].count;
            self.index.remove(&old_id);
            self.counters[c].id = id;
            self.counters[c].err = old_count;
            self.index.insert(id, c);
            self.increment(c);
        }
    }

    /// Move counter `c` from its bucket to the bucket for `count + 1`.
    fn increment(&mut self, c: usize) {
        let old_bucket = self.counters[c].bucket;
        let new_count = self.counters[c].count + 1;
        self.counters[c].count = new_count;
        self.detach(c);
        // The destination is either the very next bucket (if its count
        // matches) or a fresh bucket spliced right after the old one.
        let after = self.buckets[old_bucket].next;
        if after != NIL && self.buckets[after].count == new_count {
            self.attach(c, after);
        } else {
            let nb = self.new_bucket(new_count, old_bucket);
            self.attach(c, nb);
        }
        if self.buckets[old_bucket].head == NIL {
            self.remove_bucket(old_bucket);
        }
    }

    /// First placement of a fresh counter at `count` (which is always 1, so
    /// its bucket is the minimum bucket or a new head).
    fn place(&mut self, c: usize, count: u64, _hint: usize) {
        if self.min_bucket != NIL && self.buckets[self.min_bucket].count == count {
            let b = self.min_bucket;
            self.attach(c, b);
        } else {
            // New minimum bucket at the head of the bucket list.
            let nb = self.alloc_bucket(count);
            self.buckets[nb].prev = NIL;
            self.buckets[nb].next = self.min_bucket;
            if self.min_bucket != NIL {
                self.buckets[self.min_bucket].prev = nb;
            }
            self.min_bucket = nb;
            self.attach(c, nb);
        }
    }

    fn detach(&mut self, c: usize) {
        let (b, prev, next) = {
            let ctr = &self.counters[c];
            (ctr.bucket, ctr.prev, ctr.next)
        };
        if prev != NIL {
            self.counters[prev].next = next;
        } else {
            self.buckets[b].head = next;
        }
        if next != NIL {
            self.counters[next].prev = prev;
        }
        self.counters[c].prev = NIL;
        self.counters[c].next = NIL;
        self.counters[c].bucket = NIL;
    }

    fn attach(&mut self, c: usize, b: usize) {
        let head = self.buckets[b].head;
        self.counters[c].prev = NIL;
        self.counters[c].next = head;
        self.counters[c].bucket = b;
        if head != NIL {
            self.counters[head].prev = c;
        }
        self.buckets[b].head = c;
    }

    fn alloc_bucket(&mut self, count: u64) -> usize {
        if let Some(b) = self.free_buckets.pop() {
            self.buckets[b] = Bucket {
                count,
                head: NIL,
                prev: NIL,
                next: NIL,
            };
            b
        } else {
            self.buckets.push(Bucket {
                count,
                head: NIL,
                prev: NIL,
                next: NIL,
            });
            self.buckets.len() - 1
        }
    }

    /// Allocate a bucket with `count`, spliced immediately after `prev_b`.
    fn new_bucket(&mut self, count: u64, prev_b: usize) -> usize {
        let nb = self.alloc_bucket(count);
        let next = self.buckets[prev_b].next;
        self.buckets[nb].prev = prev_b;
        self.buckets[nb].next = next;
        self.buckets[prev_b].next = nb;
        if next != NIL {
            self.buckets[next].prev = nb;
        }
        nb
    }

    fn remove_bucket(&mut self, b: usize) {
        let (prev, next) = (self.buckets[b].prev, self.buckets[b].next);
        if prev != NIL {
            self.buckets[prev].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Iterate `(id, count, err)` over all tracked items (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64, u64)> + '_ {
        self.index.iter().map(move |(&id, &c)| {
            let ctr = &self.counters[c];
            (id, ctr.count, ctr.err)
        })
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        // Buckets strictly ascending; every counter's count equals its
        // bucket's count; index maps to the right counter.
        let mut b = self.min_bucket;
        let mut last = 0u64;
        let mut seen = 0usize;
        while b != NIL {
            let bucket = &self.buckets[b];
            assert!(bucket.count > last || (last == 0 && bucket.count >= 1));
            last = bucket.count;
            let mut c = bucket.head;
            assert_ne!(c, NIL, "empty bucket {b} not removed");
            while c != NIL {
                assert_eq!(self.counters[c].count, bucket.count);
                assert_eq!(self.counters[c].bucket, b);
                assert_eq!(self.index[&self.counters[c].id], c);
                seen += 1;
                c = self.counters[c].next;
            }
            b = bucket.next;
        }
        assert_eq!(seen, self.index.len());
    }
}

impl StreamProcessor for SpaceSaving {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        SpaceSaving::insert(self, id);
    }

    fn name(&self) -> &'static str {
        "SS"
    }
}

impl SignificanceQuery for SpaceSaving {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.count_of(id).map(|(c, _)| c as f64)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(
            self.iter()
                .map(|(id, c, _)| Estimate::new(id, c as f64))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for SpaceSaving {
    fn memory_bytes(&self) -> usize {
        self.capacity * COUNTER_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exact_below_capacity() {
        let mut ss = SpaceSaving::new(10);
        for (id, n) in [(1u64, 5usize), (2, 3), (3, 1)] {
            for _ in 0..n {
                ss.insert(id);
            }
        }
        ss.check_invariants();
        assert_eq!(ss.count_of(1), Some((5, 0)));
        assert_eq!(ss.count_of(2), Some((3, 0)));
        assert_eq!(ss.count_of(3), Some((1, 0)));
        assert_eq!(ss.min_count(), 0, "not full yet");
    }

    #[test]
    fn eviction_inherits_min_plus_one() {
        let mut ss = SpaceSaving::new(2);
        ss.insert(1);
        ss.insert(1); // (1: 2)
        ss.insert(2); // (2: 1)
        ss.insert(3); // evicts 2 → (3: count 2, err 1)
        ss.check_invariants();
        assert_eq!(ss.count_of(2), None);
        assert_eq!(ss.count_of(3), Some((2, 1)));
    }

    #[test]
    fn never_underestimates() {
        // SS guarantee: tracked count ≥ true count.
        let mut ss = SpaceSaving::new(8);
        let mut truth = std::collections::HashMap::new();
        for i in 0..5_000u64 {
            let id = (i * 7919) % 53;
            ss.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        ss.check_invariants();
        for (id, count, err) in ss.iter() {
            let real = truth[&id];
            assert!(count >= real, "id {id}: {count} < {real}");
            assert!(count - err <= real, "id {id}: lower bound broken");
        }
    }

    #[test]
    fn error_bounded_by_n_over_m() {
        // Classic SS bound: min_count ≤ N/m, so overestimation ≤ N/m.
        let m = 16;
        let n = 10_000u64;
        let mut ss = SpaceSaving::new(m);
        for i in 0..n {
            ss.insert(i % 100);
        }
        assert!(
            ss.min_count() <= n / m as u64,
            "min {} > N/m {}",
            ss.min_count(),
            n / m as u64
        );
    }

    #[test]
    fn heavy_hitter_survives_churn() {
        let mut ss = SpaceSaving::new(4);
        for i in 0..10_000u64 {
            ss.insert(if i % 2 == 0 { 42 } else { 1_000 + i });
        }
        ss.check_invariants();
        let top = ss.top_k(1);
        assert_eq!(top[0].id, 42);
        assert!(ss.count_of(42).unwrap().0 >= 5_000);
    }

    #[test]
    fn bucket_reuse_under_long_streams() {
        // Exercise the free-list: counts spread out then collapse repeatedly.
        let mut ss = SpaceSaving::new(4);
        for round in 0..50u64 {
            for id in 0..8u64 {
                for _ in 0..=(id % 3) {
                    ss.insert(round * 100 + id);
                }
            }
        }
        ss.check_invariants();
        assert!(
            ss.buckets.len() <= 64,
            "bucket arena leaked: {} slots",
            ss.buckets.len()
        );
    }

    #[test]
    fn top_k_is_by_count_descending() {
        let mut ss = SpaceSaving::new(8);
        for (id, n) in [(1u64, 9usize), (2, 7), (3, 5), (4, 3)] {
            for _ in 0..n {
                ss.insert(id);
            }
        }
        let ids: Vec<ItemId> = ss.top_k(3).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
