//! Coordinated (bottom-k / 1-)sampling for persistent items.
//!
//! The paper's related work (§II-B) cites *coordinated 1-sampling* as the
//! other persistent-items approach ("focuses on … distributed data streams,
//! we do not introduce it in detail") and excludes it from the head-to-head
//! plots. We implement it anyway, both for completeness and because it is
//! the natural *distributed* baseline to contrast with [`crate::persistent`]:
//!
//! * an item is **sampled** iff its hash falls below a threshold — the same
//!   decision at every site and in every period ("coordinated"), so sampled
//!   items' persistency is counted *exactly*;
//! * the memory bound is enforced bottom-k style: only the `capacity` items
//!   with the smallest hashes are retained, and the effective threshold is
//!   the k-th smallest hash seen (a KMV sketch over distinct items);
//! * items outside the sample are invisible — the approach trades *which*
//!   items it knows about (a random subset) for exactness on those items.
//!   Top-k precision is therefore capped by the sampling rate, which is
//!   exactly why the LTC paper's lossy-table approach wins this problem.

use ltc_common::{
    memory::COUNTER_ENTRY_BYTES, top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage,
    SignificanceQuery, StreamProcessor,
};
use ltc_hash::{FxHashMap, SeededHash};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    persistency: u64,
    /// Period of the most recent appearance (deduplicates within a period).
    last_period: u64,
}

/// Bottom-k coordinated sampler for persistent items. See the module docs.
#[derive(Debug, Clone)]
pub struct CoordinatedSampling {
    entries: FxHashMap<ItemId, Entry>,
    /// hash → id, the bottom-k order (hashes are unique w.h.p.; collisions
    /// on the full 64-bit hash would evict one of the pair, which is within
    /// the method's error model).
    by_hash: BTreeMap<u64, ItemId>,
    hash: SeededHash,
    capacity: usize,
    current_period: u64,
}

impl CoordinatedSampling {
    /// Keep the `capacity` smallest-hash distinct items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "sampler needs capacity >= 1");
        Self {
            entries: FxHashMap::default(),
            by_hash: BTreeMap::new(),
            hash: SeededHash::new(seed as u32 ^ 0x5a3f),
            capacity,
            current_period: 0,
        }
    }

    /// Size for a memory budget at 16 B/entry (id + persistency + period).
    pub fn with_memory(budget: MemoryBudget, seed: u64) -> Self {
        Self::new(budget.entries(COUNTER_ENTRY_BYTES), seed)
    }

    /// Number of sampled items currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The effective sampling threshold: the largest retained hash (or
    /// `u64::MAX` while below capacity). New items above it are ignored.
    pub fn threshold(&self) -> u64 {
        if self.entries.len() < self.capacity {
            u64::MAX
        } else {
            *self
                .by_hash
                .keys()
                .next_back()
                .expect("non-empty at capacity")
        }
    }

    /// Exact persistency of a sampled item.
    pub fn persistency_of(&self, id: ItemId) -> Option<u64> {
        self.entries.get(&id).map(|e| e.persistency)
    }

    /// Record one occurrence.
    pub fn insert(&mut self, id: ItemId) {
        if let Some(e) = self.entries.get_mut(&id) {
            if e.last_period != self.current_period || e.persistency == 0 {
                e.persistency += 1;
                e.last_period = self.current_period;
            }
            return;
        }
        let h = self.hash.hash(id);
        if h >= self.threshold() {
            return; // outside the sample
        }
        if self.entries.len() == self.capacity {
            // Evict the largest-hash member.
            let (&max_hash, &evicted) = self.by_hash.iter().next_back().expect("at capacity");
            self.by_hash.remove(&max_hash);
            self.entries.remove(&evicted);
        }
        self.by_hash.insert(h, id);
        self.entries.insert(
            id,
            Entry {
                persistency: 1,
                last_period: self.current_period,
            },
        );
    }

    /// Iterate `(id, persistency)` over the sample.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e.persistency))
    }
}

impl StreamProcessor for CoordinatedSampling {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        CoordinatedSampling::insert(self, id);
    }

    fn end_period(&mut self) {
        self.current_period += 1;
    }

    fn name(&self) -> &'static str {
        "CoordSample"
    }
}

impl SignificanceQuery for CoordinatedSampling {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.persistency_of(id).map(|p| p as f64)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(
            self.iter()
                .map(|(id, p)| Estimate::new(id, p as f64))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for CoordinatedSampling {
    fn memory_bytes(&self) -> usize {
        self.capacity * COUNTER_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_items_counted_exactly() {
        let mut cs = CoordinatedSampling::new(100, 1);
        for period in 0..6u64 {
            cs.insert(5); // every period, thrice
            cs.insert(5);
            cs.insert(5);
            if period % 2 == 0 {
                cs.insert(9);
            }
            cs.end_period();
        }
        assert_eq!(cs.persistency_of(5), Some(6));
        assert_eq!(cs.persistency_of(9), Some(3));
    }

    #[test]
    fn capacity_bound_holds_under_flood() {
        let mut cs = CoordinatedSampling::new(16, 2);
        for id in 0..10_000u64 {
            cs.insert(id);
        }
        assert_eq!(cs.len(), 16);
    }

    #[test]
    fn bottom_k_keeps_smallest_hashes() {
        let mut cs = CoordinatedSampling::new(8, 3);
        for id in 0..1_000u64 {
            cs.insert(id);
        }
        // The retained set must be exactly the 8 smallest hashes.
        let mut hashes: Vec<u64> = (0..1_000u64).map(|id| cs.hash.hash(id)).collect();
        hashes.sort_unstable();
        let retained: std::collections::HashSet<u64> =
            cs.iter().map(|(id, _)| cs.hash.hash(id)).collect();
        for h in &hashes[..8] {
            assert!(retained.contains(h), "small hash {h} evicted");
        }
    }

    #[test]
    fn coordination_survives_eviction_and_return() {
        // An item evicted (because a smaller-hash item arrived) and later
        // re-admitted restarts its count — the known cost of bounding a
        // coordinated sample. Pin that it never *overcounts*.
        let mut cs = CoordinatedSampling::new(4, 4);
        let mut truth = std::collections::HashMap::new();
        for period in 0..20u64 {
            let mut seen = std::collections::HashSet::new();
            for i in 0..30u64 {
                let id = (i * 7 + period) % 40;
                cs.insert(id);
                if seen.insert(id) {
                    *truth.entry(id).or_insert(0u64) += 1;
                }
            }
            cs.end_period();
        }
        for (id, p) in cs.iter() {
            assert!(
                p <= truth[&id],
                "id {id}: sampled {p} > true {}",
                truth[&id]
            );
        }
    }

    #[test]
    fn unsampled_items_invisible() {
        let mut cs = CoordinatedSampling::new(1, 5);
        for id in 0..100u64 {
            cs.insert(id);
        }
        assert_eq!(cs.len(), 1);
        let visible: Vec<u64> = cs.iter().map(|(id, _)| id).collect();
        for id in 0..100u64 {
            if id != visible[0] {
                assert_eq!(cs.estimate(id), None);
            }
        }
    }

    #[test]
    fn hash_index_consistent_with_entries() {
        let mut cs = CoordinatedSampling::new(8, 6);
        for id in 0..50u64 {
            cs.insert(id);
        }
        assert_eq!(cs.by_hash.len(), cs.entries.len());
        for (&h, &id) in &cs.by_hash {
            assert_eq!(h, cs.hash.hash(id));
            assert!(cs.entries.contains_key(&id));
        }
    }
}
