//! The sketch-based **persistent-items** adaptation (paper §II-B, §V-C).
//!
//! "The thorniest problem is that some items might appear more than once in
//! one period" — so a standard Bloom filter deduplicates appearances within
//! the current period (cleared at every boundary), the sketch counts one
//! update per item per period (i.e. persistency), and a min-heap tracks the
//! top-k. Following the paper's setup, **half** the memory goes to the Bloom
//! filter and the rest to sketch + heap.

use crate::bloom::BloomFilter;
use crate::sketch::FrequencySketch;
use crate::topk::TopKHeap;
use ltc_common::{
    memory::{HEAP_ENTRY_BYTES, SKETCH_COUNTER_BYTES},
    Estimate, ItemId, MemoryBudget, MemoryUsage, SignificanceQuery, StreamProcessor,
};

/// Bloom-deduplicated persistency sketch + top-k heap. See the module docs.
#[derive(Debug, Clone)]
pub struct PersistentSketch<S> {
    filter: BloomFilter,
    sketch: S,
    heap: TopKHeap,
    name: &'static str,
}

fn persistent_name(base: &'static str) -> &'static str {
    match base {
        "CM" => "CM+BF",
        "CU" => "CU+BF",
        "Count" => "Count+BF",
        _ => "Sketch+BF",
    }
}

impl<S: FrequencySketch> PersistentSketch<S> {
    /// Build from explicit geometry: `filter_bits` Bloom bits (with
    /// `bloom_hashes` probes), a `rows × width` sketch, a `k`-entry heap.
    pub fn new(
        filter_bits: usize,
        bloom_hashes: usize,
        rows: usize,
        width: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        Self {
            filter: BloomFilter::new(filter_bits, bloom_hashes, seed ^ 0xb1f0),
            sketch: S::new(rows, width, seed),
            heap: TopKHeap::new(k),
            name: persistent_name(S::NAME),
        }
    }

    /// The paper's memory split: half to the Bloom filter, the remainder to
    /// heap (k entries) + sketch (`rows` arrays).
    pub fn with_memory(budget: MemoryBudget, k: usize, rows: usize, seed: u64) -> Self {
        let half = budget.as_bytes() / 2;
        let filter_bits = (half * 8).max(64);
        let rest = budget.as_bytes() - half;
        let sketch_bytes = rest.saturating_sub(k * HEAP_ENTRY_BYTES);
        let width = (sketch_bytes / (rows * SKETCH_COUNTER_BYTES)).max(1);
        Self::new(filter_bits, 3, rows, width, k, seed)
    }

    /// The per-period dedup filter.
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// The persistency sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }
}

impl<S: FrequencySketch> StreamProcessor for PersistentSketch<S> {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        // Count only the first appearance in the current period. A Bloom
        // false positive silently *drops* a persistency increment — the
        // error source the paper's analysis of these baselines points at.
        if !self.filter.insert(id) {
            let p = self.sketch.increment(id) as f64;
            if p > self.heap.threshold() || self.heap.value_of(id).is_some() {
                self.heap.offer(id, p);
            }
        }
    }

    fn end_period(&mut self) {
        self.filter.clear();
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

impl<S: FrequencySketch> SignificanceQuery for PersistentSketch<S> {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.heap
            .value_of(id)
            .or_else(|| Some(self.sketch.estimate(id) as f64))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        self.heap.top_k(k)
    }
}

impl<S: FrequencySketch> MemoryUsage for PersistentSketch<S> {
    fn memory_bytes(&self) -> usize {
        self.filter.memory_bytes()
            + self.sketch.memory_bytes()
            + self.heap.capacity() * HEAP_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{CountMinSketch, CuSketch};

    /// 5 periods; item 1 in every period, item 2 in two, item 3 in one —
    /// each with many repeats per period.
    fn drive<S: FrequencySketch>(ps: &mut PersistentSketch<S>) {
        for period in 0..5u64 {
            for rep in 0..10u64 {
                ps.insert(1);
                if period < 2 {
                    ps.insert(2);
                }
                if period == 0 {
                    ps.insert(3);
                }
                ps.insert(1_000 + period * 10 + rep); // per-period noise
            }
            ps.end_period();
        }
    }

    #[test]
    fn counts_periods_not_occurrences() {
        let mut ps = PersistentSketch::<CountMinSketch>::new(1 << 14, 3, 3, 1 << 12, 8, 7);
        drive(&mut ps);
        assert_eq!(ps.estimate(1), Some(5.0));
        assert_eq!(ps.estimate(2), Some(2.0));
        assert_eq!(ps.estimate(3), Some(1.0));
    }

    #[test]
    fn top_k_ranks_by_persistency() {
        let mut ps = PersistentSketch::<CuSketch>::new(1 << 14, 3, 3, 1 << 12, 3, 7);
        drive(&mut ps);
        let top = ps.top_k(3);
        assert_eq!(top[0].id, 1);
        assert!((top[0].value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn with_memory_splits_half_to_filter() {
        let ps =
            PersistentSketch::<CountMinSketch>::with_memory(MemoryBudget::kilobytes(64), 100, 3, 1);
        let total = 64 * 1024;
        assert_eq!(ps.filter().memory_bytes(), total / 2);
        assert!(ps.memory_bytes() <= total);
    }

    #[test]
    fn tiny_filter_drops_but_never_inflates() {
        // With a saturated Bloom filter persistency can only be *under*
        // counted (increments dropped), never overcounted.
        let mut ps = PersistentSketch::<CountMinSketch>::new(64, 3, 3, 1 << 12, 8, 9);
        for _period in 0..10 {
            for id in 0..200u64 {
                ps.insert(id);
            }
            ps.end_period();
        }
        for id in 0..200u64 {
            let est = ps.sketch().estimate(id);
            assert!(est <= 10, "id {id}: persistency {est} > 10 periods");
        }
    }
}
