//! A bounded min-heap tracking the top-k `(item, value)` pairs seen so far.
//!
//! Sketch-based algorithms "need to maintain a min-heap to record and update
//! top-k frequent items" (paper §II-A). Values for a given item only ever
//! grow in our use (frequencies and persistencies are monotone), so the heap
//! supports *increase-or-insert*: if the item is already tracked its value is
//! raised in place; otherwise it displaces the current minimum when larger.
//!
//! Implementation: array-backed binary min-heap plus an id→slot index map so
//! updates are `O(log k)` instead of `O(k)`.

use ltc_common::{top_k_of, Estimate, ItemId};
use ltc_hash::FxHashMap;

/// Bounded top-k tracker (min-heap + index map). See the module docs.
#[derive(Debug, Clone)]
pub struct TopKHeap {
    /// Heap slots, ordered by the min-heap property on `value`.
    slots: Vec<Estimate>,
    /// id → slot index.
    index: FxHashMap<ItemId, usize>,
    capacity: usize,
}

impl TopKHeap {
    /// A heap tracking at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-k heap needs capacity >= 1");
        Self {
            slots: Vec::with_capacity(capacity),
            index: FxHashMap::default(),
            capacity,
        }
    }

    /// Number of tracked items.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is tracked yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Configured capacity `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current minimum tracked value (0 when not yet full, so any
    /// positive value qualifies for insertion).
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.slots.len() < self.capacity {
            0.0
        } else {
            self.slots[0].value
        }
    }

    /// Current value of `id`, if tracked.
    pub fn value_of(&self, id: ItemId) -> Option<f64> {
        self.index.get(&id).map(|&i| self.slots[i].value)
    }

    /// Offer `(id, value)`. If `id` is tracked, its value is raised to
    /// `value` (offers never lower a value). Otherwise it is inserted,
    /// displacing the minimum if the heap is full and `value` beats it.
    pub fn offer(&mut self, id: ItemId, value: f64) {
        debug_assert!(value.is_finite());
        if let Some(&slot) = self.index.get(&id) {
            if value > self.slots[slot].value {
                self.slots[slot].value = value;
                self.sift_down(slot);
            }
            return;
        }
        if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Estimate::new(id, value));
            self.index.insert(id, slot);
            self.sift_up(slot);
        } else if value > self.slots[0].value {
            let evicted = self.slots[0].id;
            self.index.remove(&evicted);
            self.slots[0] = Estimate::new(id, value);
            self.index.insert(id, 0);
            self.sift_down(0);
        }
    }

    /// The tracked items, largest first.
    pub fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(self.slots.clone(), k)
    }

    /// Iterate over tracked items in heap (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = &Estimate> {
        self.slots.iter()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].value < self.slots[parent].value {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.slots.len() && self.slots[l].value < self.slots[smallest].value {
                smallest = l;
            }
            if r < self.slots.len() && self.slots[r].value < self.slots[smallest].value {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.index.insert(self.slots[a].id, a);
        self.index.insert(self.slots[b].id, b);
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.slots.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.slots[parent].value <= self.slots[i].value,
                "heap violated at {i}"
            );
        }
        assert_eq!(self.index.len(), self.slots.len());
        for (i, e) in self.slots.iter().enumerate() {
            assert_eq!(self.index[&e.id], i, "index desync for {}", e.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest_k() {
        let mut h = TopKHeap::new(3);
        for (id, v) in [(1, 5.0), (2, 1.0), (3, 9.0), (4, 7.0), (5, 2.0)] {
            h.offer(id, v);
            h.check_invariants();
        }
        let ids: Vec<ItemId> = h.top_k(3).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![3, 4, 1]);
    }

    #[test]
    fn update_raises_in_place() {
        let mut h = TopKHeap::new(2);
        h.offer(1, 1.0);
        h.offer(2, 2.0);
        h.offer(1, 10.0); // raise, not duplicate
        h.check_invariants();
        assert_eq!(h.len(), 2);
        assert_eq!(h.value_of(1), Some(10.0));
        assert_eq!(h.top_k(2)[0].id, 1);
    }

    #[test]
    fn offers_never_lower() {
        let mut h = TopKHeap::new(2);
        h.offer(1, 5.0);
        h.offer(1, 3.0);
        assert_eq!(h.value_of(1), Some(5.0));
    }

    #[test]
    fn small_values_rejected_when_full() {
        let mut h = TopKHeap::new(2);
        h.offer(1, 5.0);
        h.offer(2, 6.0);
        h.offer(3, 1.0);
        assert_eq!(h.value_of(3), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn threshold_tracks_minimum() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), 0.0);
        h.offer(1, 5.0);
        assert_eq!(h.threshold(), 0.0, "not full yet");
        h.offer(2, 8.0);
        assert_eq!(h.threshold(), 5.0);
        h.offer(3, 7.0);
        assert_eq!(h.threshold(), 7.0, "5 evicted by 7");
    }

    #[test]
    fn heavy_churn_keeps_invariants() {
        let mut h = TopKHeap::new(16);
        for i in 0..10_000u64 {
            // Mix of new ids and updates to a small recurring set.
            let id = if i % 3 == 0 { i % 7 } else { i };
            h.offer(id, (i % 997) as f64);
            if i % 251 == 0 {
                h.check_invariants();
            }
        }
        h.check_invariants();
        assert_eq!(h.len(), 16);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = TopKHeap::new(0);
    }
}
