//! The Count-Min sketch (Cormode & Muthukrishnan), "CM" in the paper.

use super::FrequencySketch;
use ltc_common::{memory::SKETCH_COUNTER_BYTES, ItemId};
use ltc_hash::{HashFamily, SeededHash};

/// Count-Min: `rows` arrays of `width` counters; update increments one
/// counter per row, query takes the row minimum. Estimates only ever
/// overestimate (every counter an item maps to receives all of its updates,
/// plus collisions).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    counters: Vec<u32>,
    hashes: Vec<SeededHash>,
    width: usize,
}

impl CountMinSketch {
    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.hashes.len()
    }

    #[inline]
    fn slot(&self, row: usize, id: ItemId) -> usize {
        row * self.width + self.hashes[row].index(id, self.width)
    }
}

impl FrequencySketch for CountMinSketch {
    const NAME: &'static str = "CM";

    fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0 && width > 0, "CM needs rows >= 1 and width >= 1");
        Self {
            counters: vec![0; rows * width],
            hashes: HashFamily::new(seed).members(rows as u32),
            width,
        }
    }

    #[inline]
    fn increment(&mut self, id: ItemId) -> u64 {
        let mut min = u32::MAX;
        for row in 0..self.rows() {
            let slot = self.slot(row, id);
            let c = self.counters[slot].saturating_add(1);
            self.counters[slot] = c;
            min = min.min(c);
        }
        u64::from(min)
    }

    #[inline]
    fn estimate(&self, id: ItemId) -> u64 {
        let mut min = u32::MAX;
        for row in 0..self.rows() {
            min = min.min(self.counters[self.slot(row, id)]);
        }
        u64::from(min)
    }

    fn memory_bytes(&self) -> usize {
        self.counters.len() * SKETCH_COUNTER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_uncontended() {
        let mut cm = CountMinSketch::new(3, 1 << 14, 1);
        for _ in 0..57 {
            cm.increment(9);
        }
        assert_eq!(cm.estimate(9), 57);
    }

    #[test]
    fn never_underestimates() {
        // Tiny sketch, many colliding items: CM's one-sided error guarantee.
        let mut cm = CountMinSketch::new(3, 16, 2);
        let mut truth = std::collections::HashMap::new();
        for i in 0..2_000u64 {
            let id = i % 37;
            cm.increment(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (&id, &real) in &truth {
            assert!(cm.estimate(id) >= real, "id {id} underestimated");
        }
    }

    #[test]
    fn increment_returns_post_update_estimate() {
        let mut cm = CountMinSketch::new(3, 1 << 12, 3);
        assert_eq!(cm.increment(5), 1);
        assert_eq!(cm.increment(5), 2);
    }

    #[test]
    fn unseen_reads_zero_in_big_sketch() {
        let mut cm = CountMinSketch::new(3, 1 << 16, 4);
        for i in 0..100u64 {
            cm.increment(i);
        }
        assert_eq!(cm.estimate(999_999), 0);
    }

    #[test]
    #[should_panic(expected = "rows >= 1")]
    fn zero_rows_rejected() {
        let _ = CountMinSketch::new(0, 16, 1);
    }
}
