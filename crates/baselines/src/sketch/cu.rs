//! The CU sketch (Estan & Varghese's *conservative update*), "CU" in the
//! paper.

use super::FrequencySketch;
use ltc_common::{memory::SKETCH_COUNTER_BYTES, ItemId};
use ltc_hash::{HashFamily, SeededHash};

/// Count-Min with conservative update: on insert, only the *minimum* mapped
/// counter(s) are raised — to `min + 1` — because raising the others could
/// not change any future minimum-query anyway (paper §II-A: "incrementing
/// only the minimum value(s) among the mapped cells"). Still one-sided
/// (never underestimates), strictly tighter than plain CM.
#[derive(Debug, Clone)]
pub struct CuSketch {
    counters: Vec<u32>,
    hashes: Vec<SeededHash>,
    width: usize,
}

impl CuSketch {
    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.hashes.len()
    }

    #[inline]
    fn slot(&self, row: usize, id: ItemId) -> usize {
        row * self.width + self.hashes[row].index(id, self.width)
    }
}

impl FrequencySketch for CuSketch {
    const NAME: &'static str = "CU";

    fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0 && width > 0, "CU needs rows >= 1 and width >= 1");
        Self {
            counters: vec![0; rows * width],
            hashes: HashFamily::new(seed).members(rows as u32),
            width,
        }
    }

    #[inline]
    fn increment(&mut self, id: ItemId) -> u64 {
        // Pass 1: the current minimum across mapped counters.
        let mut min = u32::MAX;
        for row in 0..self.rows() {
            min = min.min(self.counters[self.slot(row, id)]);
        }
        let target = min.saturating_add(1);
        // Pass 2: raise every counter below the new minimum up to it.
        for row in 0..self.rows() {
            let slot = self.slot(row, id);
            if self.counters[slot] < target {
                self.counters[slot] = target;
            }
        }
        u64::from(target)
    }

    #[inline]
    fn estimate(&self, id: ItemId) -> u64 {
        let mut min = u32::MAX;
        for row in 0..self.rows() {
            min = min.min(self.counters[self.slot(row, id)]);
        }
        u64::from(min)
    }

    fn memory_bytes(&self) -> usize {
        self.counters.len() * SKETCH_COUNTER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::CountMinSketch;

    #[test]
    fn exact_when_uncontended() {
        let mut cu = CuSketch::new(3, 1 << 14, 1);
        for _ in 0..33 {
            cu.increment(4);
        }
        assert_eq!(cu.estimate(4), 33);
    }

    #[test]
    fn never_underestimates() {
        let mut cu = CuSketch::new(3, 16, 2);
        let mut truth = std::collections::HashMap::new();
        for i in 0..2_000u64 {
            let id = i % 37;
            cu.increment(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (&id, &real) in &truth {
            assert!(cu.estimate(id) >= real, "id {id} underestimated");
        }
    }

    #[test]
    fn tighter_than_cm_under_collisions() {
        // Same geometry, same seed, same adversarial stream: CU's total
        // error must not exceed CM's (it is provably dominated).
        let mut cm = CountMinSketch::new(3, 32, 5);
        let mut cu = CuSketch::new(3, 32, 5);
        let mut truth = std::collections::HashMap::new();
        for i in 0..5_000u64 {
            let id = (i * i) % 101;
            cm.increment(id);
            cu.increment(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        let (mut err_cm, mut err_cu) = (0u64, 0u64);
        for (&id, &real) in &truth {
            err_cm += cm.estimate(id) - real;
            err_cu += cu.estimate(id) - real;
        }
        assert!(
            err_cu <= err_cm,
            "CU error {err_cu} exceeds CM error {err_cm}"
        );
        assert!(err_cu < err_cm, "expected strict improvement on this load");
    }

    #[test]
    fn increment_returns_post_update_estimate() {
        let mut cu = CuSketch::new(3, 1 << 12, 3);
        assert_eq!(cu.increment(5), 1);
        assert_eq!(cu.increment(5), 2);
    }
}
