//! The Count sketch (Charikar, Chen, Farach-Colton), "Count" in the paper.

use super::FrequencySketch;
use ltc_common::{memory::SKETCH_COUNTER_BYTES, ItemId};
use ltc_hash::{HashFamily, SeededHash};

/// Count sketch: signed counters. Each row adds `sign(id)` (±1, from an
/// independent hash bit) to one counter; a query reads `counter × sign` per
/// row and takes the **median**. Collisions cancel in expectation, so the
/// estimator is unbiased with two-sided error — unlike CM/CU it can
/// *under*estimate. For frequency ranking we clamp negative medians to 0.
#[derive(Debug, Clone)]
pub struct CountSketch {
    counters: Vec<i32>,
    hashes: Vec<SeededHash>,
    width: usize,
    /// Scratch for the per-row signed reads during a query (avoids a heap
    /// allocation per estimate; rows is 3 in all experiments).
    scratch: Vec<i64>,
}

impl CountSketch {
    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.hashes.len()
    }

    #[inline]
    fn slot(&self, row: usize, id: ItemId) -> usize {
        row * self.width + self.hashes[row].index(id, self.width)
    }

    /// Median of the signed per-row reads (may be negative).
    fn signed_estimate(&self, id: ItemId) -> i64 {
        let mut reads: Vec<i64> = (0..self.rows())
            .map(|row| i64::from(self.counters[self.slot(row, id)]) * self.hashes[row].sign(id))
            .collect();
        reads.sort_unstable();
        let n = reads.len();
        if n % 2 == 1 {
            reads[n / 2]
        } else {
            (reads[n / 2 - 1] + reads[n / 2]) / 2
        }
    }
}

impl FrequencySketch for CountSketch {
    const NAME: &'static str = "Count";

    fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(
            rows > 0 && width > 0,
            "Count needs rows >= 1 and width >= 1"
        );
        Self {
            counters: vec![0; rows * width],
            hashes: HashFamily::new(seed).members(rows as u32),
            width,
            scratch: Vec::with_capacity(rows),
        }
    }

    #[inline]
    fn increment(&mut self, id: ItemId) -> u64 {
        self.scratch.clear();
        for row in 0..self.rows() {
            let sign = self.hashes[row].sign(id);
            let slot = self.slot(row, id);
            let c = self.counters[slot].saturating_add(sign as i32);
            self.counters[slot] = c;
            self.scratch.push(i64::from(c) * sign);
        }
        self.scratch.sort_unstable();
        let n = self.scratch.len();
        let med = if n % 2 == 1 {
            self.scratch[n / 2]
        } else {
            (self.scratch[n / 2 - 1] + self.scratch[n / 2]) / 2
        };
        med.max(0) as u64
    }

    #[inline]
    fn estimate(&self, id: ItemId) -> u64 {
        self.signed_estimate(id).max(0) as u64
    }

    fn memory_bytes(&self) -> usize {
        self.counters.len() * SKETCH_COUNTER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_uncontended() {
        let mut cs = CountSketch::new(3, 1 << 14, 1);
        for _ in 0..71 {
            cs.increment(8);
        }
        assert_eq!(cs.estimate(8), 71);
    }

    #[test]
    fn roughly_unbiased_under_collisions() {
        // With heavy collisions the *average* signed error should be near 0
        // (signs cancel), unlike CM whose error is strictly positive.
        let mut cs = CountSketch::new(3, 64, 7);
        let mut truth = std::collections::HashMap::new();
        for i in 0..20_000u64 {
            let id = i % 509;
            cs.increment(id);
            *truth.entry(id).or_insert(0i64) += 1;
        }
        let total_err: i64 = truth
            .iter()
            .map(|(&id, &real)| cs.signed_estimate(id) - real)
            .sum();
        let mean = total_err as f64 / truth.len() as f64;
        assert!(
            mean.abs() < 5.0,
            "mean signed error {mean} suggests systematic bias"
        );
    }

    #[test]
    fn negative_medians_clamped() {
        // Force negatives: one item, many opposite-sign colliders.
        let mut cs = CountSketch::new(1, 1, 3);
        // Single counter: every item maps there. An item with sign -1 pushes
        // the counter down; its own estimate is counter * -1 and may read
        // positive, others may read negative — either way, estimate() >= 0.
        for i in 0..100u64 {
            cs.increment(i);
        }
        for i in 0..200u64 {
            let e = cs.estimate(i);
            assert!(e < u64::MAX / 2, "clamp failed: {e}");
        }
    }

    #[test]
    fn median_of_even_rows() {
        let mut cs = CountSketch::new(4, 1 << 12, 9);
        for _ in 0..10 {
            cs.increment(3);
        }
        assert_eq!(cs.estimate(3), 10);
    }
}
