//! Sketch-based frequency estimators (paper §II-A, "sketch-based").
//!
//! All three sketches share the same geometry: `rows` equal-width arrays of
//! counters, one independent hash per row (the paper sets the number of
//! arrays to 3, §V-C). They differ in the update/query rule:
//!
//! * [`CountMinSketch`] — increment every mapped counter; query the minimum.
//!   Overestimates only.
//! * [`CuSketch`] — *conservative update* (Estan & Varghese): increment only
//!   the minimal mapped counter(s). Still overestimate-only, strictly
//!   tighter than CM.
//! * [`CountSketch`] — signed updates (`±1` by a sign hash); query the
//!   median of the signed reads. Unbiased, two-sided error.
//!
//! [`SketchTopK`] pairs any of them with a [`TopKHeap`] to answer top-k
//! frequent-item queries, which is exactly how the paper runs them.

pub mod cm;
pub mod count;
pub mod cu;

pub use cm::CountMinSketch;
pub use count::CountSketch;
pub use cu::CuSketch;

use crate::topk::TopKHeap;
use ltc_common::{
    memory::{HEAP_ENTRY_BYTES, SKETCH_COUNTER_BYTES},
    Estimate, ItemId, MemoryBudget, MemoryUsage, SignificanceQuery, StreamProcessor,
};

/// A streaming frequency estimator: one update and one point query.
pub trait FrequencySketch {
    /// Display name ("CM", "CU", "Count").
    const NAME: &'static str;

    /// Construct with `rows` arrays of `width` counters, hashed under `seed`.
    fn new(rows: usize, width: usize, seed: u64) -> Self;

    /// Record one occurrence of `id`; returns the post-update estimate
    /// (cheap for all three sketches, and what the top-k heap needs anyway).
    fn increment(&mut self, id: ItemId) -> u64;

    /// Point-estimate the frequency of `id`.
    fn estimate(&self, id: ItemId) -> u64;

    /// Bytes under the workspace cost model.
    fn memory_bytes(&self) -> usize;
}

/// Sketch + min-heap: the paper's sketch-based top-k frequent-items
/// algorithm. The whole memory budget is split between the heap (k entries)
/// and the sketch (the rest), as in §V-C.
#[derive(Debug, Clone)]
pub struct SketchTopK<S> {
    sketch: S,
    heap: TopKHeap,
}

impl<S: FrequencySketch> SketchTopK<S> {
    /// Build from explicit sketch geometry and heap capacity.
    pub fn new(rows: usize, width: usize, k: usize, seed: u64) -> Self {
        Self {
            sketch: S::new(rows, width, seed),
            heap: TopKHeap::new(k),
        }
    }

    /// Build from a memory budget: `k` heap entries first, remaining bytes
    /// shared equally by `rows` counter arrays.
    pub fn with_memory(budget: MemoryBudget, k: usize, rows: usize, seed: u64) -> Self {
        let heap_bytes = k * HEAP_ENTRY_BYTES;
        let sketch_bytes = budget.as_bytes().saturating_sub(heap_bytes);
        let width = (sketch_bytes / (rows * SKETCH_COUNTER_BYTES)).max(1);
        Self::new(rows, width, k, seed)
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// The top-k heap.
    pub fn heap(&self) -> &TopKHeap {
        &self.heap
    }
}

impl<S: FrequencySketch> StreamProcessor for SketchTopK<S> {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        let est = self.sketch.increment(id);
        let est = est as f64;
        if est > self.heap.threshold() || self.heap.value_of(id).is_some() {
            self.heap.offer(id, est);
        }
    }

    fn name(&self) -> &'static str {
        S::NAME
    }
}

impl<S: FrequencySketch> SignificanceQuery for SketchTopK<S> {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        // The heap holds the tracked top-k; other ids still get a sketch
        // point query (sketches answer everything).
        self.heap
            .value_of(id)
            .or_else(|| Some(self.sketch.estimate(id) as f64))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        self.heap.top_k(k)
    }
}

impl<S: FrequencySketch> MemoryUsage for SketchTopK<S> {
    fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + self.heap.capacity() * HEAP_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: FrequencySketch>() {
        let mut s = SketchTopK::<S>::new(3, 1024, 4, 99);
        // Heavy hitters 1..4 with distinct counts, plus noise.
        for (id, reps) in [(1u64, 400usize), (2, 300), (3, 200), (4, 100)] {
            for _ in 0..reps {
                s.insert(id);
            }
        }
        for i in 0..500u64 {
            s.insert(10_000 + i);
        }
        let ids: Vec<ItemId> = s.top_k(4).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "{}", S::NAME);
        let est = s.estimate(1).unwrap();
        assert!(
            (350.0..=450.0).contains(&est),
            "{}: estimate {est} far from 400",
            S::NAME
        );
    }

    #[test]
    fn cm_topk_finds_heavy_hitters() {
        exercise::<CountMinSketch>();
    }

    #[test]
    fn cu_topk_finds_heavy_hitters() {
        exercise::<CuSketch>();
    }

    #[test]
    fn count_topk_finds_heavy_hitters() {
        exercise::<CountSketch>();
    }

    #[test]
    fn with_memory_splits_budget() {
        let s = SketchTopK::<CountMinSketch>::with_memory(MemoryBudget::kilobytes(10), 100, 3, 1);
        // 10240 - 1600 heap = 8640 sketch bytes → 720 counters per row.
        assert_eq!(s.sketch().width(), 720);
        assert_eq!(s.memory_bytes(), 720 * 3 * 4 + 1600);
    }

    #[test]
    fn unseen_id_estimates_small_not_none() {
        let s = SketchTopK::<CountMinSketch>::new(3, 4096, 4, 7);
        // Sketches answer point queries for anything; an unseen id reads 0.
        assert_eq!(s.estimate(424242), Some(0.0));
    }
}
