//! Misra–Gries / the *Frequent* algorithm — the third counter-based
//! frequent-items family the paper cites alongside SS and LC (§II-A).
//!
//! `capacity` counters. A hit increments; a miss with a free counter claims
//! it; a miss on a full table decrements **every** counter by one (zeroed
//! counters are freed). Guarantees: tracked count underestimates by at most
//! `N/(capacity+1)`, and any item with true frequency above that bound is
//! present.
//!
//! The decrement-all step is implemented with a global offset so that it is
//! O(1) amortised: each entry stores `value = f + base` and the table-wide
//! `base` rises by one per decrement-all; entries whose stored value falls
//! to `base` are lazily reclaimed.

use ltc_common::{
    memory::COUNTER_ENTRY_BYTES, top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage,
    SignificanceQuery, StreamProcessor,
};
use ltc_hash::FxHashMap;

/// Misra–Gries summary. See the module docs.
#[derive(Debug, Clone)]
pub struct MisraGries {
    /// id → f + base (always > base for live entries).
    entries: FxHashMap<ItemId, u64>,
    /// Global decrement offset.
    base: u64,
    capacity: usize,
}

impl MisraGries {
    /// Track at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries needs capacity >= 1");
        Self {
            entries: FxHashMap::default(),
            base: 0,
            capacity,
        }
    }

    /// Size for a memory budget at 16 B/entry.
    pub fn with_memory(budget: MemoryBudget) -> Self {
        Self::new(budget.entries(COUNTER_ENTRY_BYTES))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tracked count of `id` (an underestimate of its true frequency).
    pub fn count_of(&self, id: ItemId) -> Option<u64> {
        self.entries.get(&id).map(|&v| v - self.base)
    }

    /// Record one occurrence.
    pub fn insert(&mut self, id: ItemId) {
        if let Some(v) = self.entries.get_mut(&id) {
            *v += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(id, self.base + 1);
            return;
        }
        // Decrement-all: bump the offset; reclaim entries that reached zero.
        self.base += 1;
        let base = self.base;
        self.entries.retain(|_, &mut v| v > base);
        // The incoming item is *not* inserted on a decrement step — classic
        // Misra-Gries semantics: its "count of one" cancels against the
        // global decrement.
    }

    /// Iterate `(id, count)` (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64)> + '_ {
        let base = self.base;
        self.entries.iter().map(move |(&id, &v)| (id, v - base))
    }
}

impl StreamProcessor for MisraGries {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        MisraGries::insert(self, id);
    }

    fn name(&self) -> &'static str {
        "MG"
    }
}

impl SignificanceQuery for MisraGries {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.count_of(id).map(|c| c as f64)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(
            self.iter()
                .map(|(id, c)| Estimate::new(id, c as f64))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for MisraGries {
    fn memory_bytes(&self) -> usize {
        self.capacity * COUNTER_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut mg = MisraGries::new(4);
        for (id, n) in [(1u64, 3usize), (2, 2)] {
            for _ in 0..n {
                mg.insert(id);
            }
        }
        assert_eq!(mg.count_of(1), Some(3));
        assert_eq!(mg.count_of(2), Some(2));
    }

    #[test]
    fn never_overestimates() {
        let mut mg = MisraGries::new(8);
        let mut truth = std::collections::HashMap::new();
        for i in 0..10_000u64 {
            let id = (i * 13) % 61;
            mg.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (id, c) in mg.iter() {
            assert!(c <= truth[&id], "id {id}: {c} > {}", truth[&id]);
        }
    }

    #[test]
    fn underestimate_bounded() {
        // MG bound: true - tracked ≤ N/(capacity+1).
        let cap = 9usize;
        let n = 10_000u64;
        let mut mg = MisraGries::new(cap);
        let mut truth = std::collections::HashMap::new();
        for i in 0..n {
            let id = if i % 2 == 0 { 0 } else { 1 + (i % 500) };
            mg.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        let bound = n / (cap as u64 + 1);
        let tracked = mg.count_of(0).expect("majority item must survive");
        assert!(
            truth[&0] - tracked <= bound,
            "error {} > bound {bound}",
            truth[&0] - tracked
        );
    }

    #[test]
    fn majority_item_always_present() {
        let mut mg = MisraGries::new(2);
        for i in 0..9_999u64 {
            mg.insert(if i % 2 == 0 { 7 } else { 100 + i });
        }
        assert!(mg.count_of(7).is_some(), "majority item lost");
    }

    #[test]
    fn capacity_respected() {
        let mut mg = MisraGries::new(5);
        for i in 0..1_000u64 {
            mg.insert(i);
        }
        assert!(mg.len() <= 5);
    }

    #[test]
    fn decrement_reclaims_slots() {
        let mut mg = MisraGries::new(2);
        mg.insert(1);
        mg.insert(2);
        mg.insert(3); // decrement-all: both drop to 0, slots reclaimed
        assert_eq!(mg.len(), 0);
        mg.insert(4);
        assert_eq!(mg.count_of(4), Some(1));
    }
}
