//! Reproducible throughput baseline for the batched + parallel ingestion
//! pipeline. Sweeps worker-thread count × hand-off batch size on a fixed
//! Zipf workload and writes `BENCH_pipeline.json` (repo root) so the
//! numbers — and the host they were measured on — are checked in alongside
//! the code.
//!
//! ```sh
//! cargo run --release -p ltc-bench --bin pipeline_speed
//! LTC_SCALE=10 cargo run --release -p ltc-bench --bin pipeline_speed   # quick look
//! ```
//!
//! Every configuration ingests the identical stream with the identical
//! period boundaries; the equivalence tests guarantee identical results, so
//! the sweep measures pure ingestion cost. Each point is the best of
//! [`REPS`] runs (min wall-clock → least scheduler noise).

use ltc_bench::scale;
use ltc_common::{StreamProcessor, Weights};
use ltc_core::{Ltc, LtcConfig, ParallelLtc, ShardedLtc, Variant};
use ltc_workloads::generator::zipf_samples;
use serde::Serialize;
use std::time::Instant;

/// Paper-scale workload: 10M Zipf(1.0) records over 100 periods.
const RECORDS: usize = 10_000_000;
const DISTINCT: usize = 1_000_000;
const PERIODS: usize = 100;
const SKEW: f64 = 1.0;
/// Runs per configuration; the minimum is reported.
const REPS: usize = 3;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const BATCH_SWEEP: [usize; 3] = [64, 256, 1024];

#[derive(Serialize)]
struct Workload {
    records: u64,
    distinct: u64,
    periods: u64,
    zipf_skew: f64,
    seed: u64,
    scale_divisor: u64,
}

#[derive(Serialize)]
struct Host {
    cpus: u64,
    os: String,
    arch: String,
}

#[derive(Serialize)]
struct SweepPoint {
    threads: u64,
    batch_size: u64,
    mops: f64,
    speedup_vs_scalar: f64,
}

#[derive(Serialize)]
struct BatchPoint {
    batch_size: u64,
    mops: f64,
    speedup_vs_scalar: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host: Host,
    workload: Workload,
    /// Single `Ltc`, record-at-a-time `insert` — the baseline.
    scalar_mops: f64,
    /// Single `Ltc`, `insert_batch` across the batch-size sweep.
    batch: Vec<BatchPoint>,
    /// Single-threaded `ShardedLtc` (4 shards) with batched routing, for
    /// separating sharding overhead from thread hand-off overhead.
    sharded4_batch256_mops: f64,
    /// `ParallelLtc` across the threads × batch-size sweep.
    parallel: Vec<SweepPoint>,
}

fn mops(records: usize, secs: f64) -> f64 {
    records as f64 / secs / 1e6
}

/// Best-of-[`REPS`] wall-clock of `run` over the whole stream.
fn measure(records: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    mops(records, best)
}

fn config(per_period: usize, buckets: usize) -> LtcConfig {
    LtcConfig::builder()
        .buckets(buckets)
        .cells_per_bucket(8)
        .records_per_period(per_period as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build()
}

fn main() {
    let s = scale() as usize;
    let records = (RECORDS / s).max(PERIODS);
    let distinct = (DISTINCT / s).max(1_000);
    let per_period = records / PERIODS;
    // Keep the CLOCK's per-record scan cost (m/n cells) constant when the
    // workload is scaled down, so scaled runs stay representative.
    let buckets = (25_000 / s).max(64);
    eprintln!(
        "[gen] {records} Zipf({SKEW}) records, {distinct} distinct, {PERIODS} periods, \
         {buckets}x8 cells"
    );
    let stream = zipf_samples(records, distinct as u64, SKEW, 42);

    eprintln!("[run] scalar insert");
    let scalar_mops = measure(records, || {
        let mut ltc = Ltc::new(config(per_period, buckets));
        for period in stream.chunks(per_period) {
            for &id in period {
                ltc.insert(id);
            }
            ltc.end_period();
        }
        std::hint::black_box(&ltc);
    });
    eprintln!("       {scalar_mops:.2} Mops");

    let mut batch = Vec::new();
    for batch_size in BATCH_SWEEP {
        eprintln!("[run] insert_batch, batch {batch_size}");
        let m = measure(records, || {
            let mut ltc = Ltc::new(config(per_period, buckets));
            for period in stream.chunks(per_period) {
                for chunk in period.chunks(batch_size) {
                    ltc.insert_batch(chunk);
                }
                ltc.end_period();
            }
            std::hint::black_box(&ltc);
        });
        eprintln!("       {m:.2} Mops ({:.2}x)", m / scalar_mops);
        batch.push(BatchPoint {
            batch_size: batch_size as u64,
            mops: m,
            speedup_vs_scalar: m / scalar_mops,
        });
    }

    eprintln!("[run] sharded x4, insert_batch 256");
    let sharded4_batch256_mops = measure(records, || {
        let mut sharded = ShardedLtc::new(config(per_period, buckets), 4);
        for period in stream.chunks(per_period) {
            for chunk in period.chunks(256) {
                sharded.insert_batch(chunk);
            }
            sharded.end_period();
        }
        std::hint::black_box(&sharded);
    });
    eprintln!("       {sharded4_batch256_mops:.2} Mops");

    let mut parallel = Vec::new();
    for threads in THREAD_SWEEP {
        for batch_size in BATCH_SWEEP {
            eprintln!("[run] pipeline, {threads} thread(s), batch {batch_size}");
            let m = measure(records, || {
                let mut pipeline =
                    ParallelLtc::with_batch_size(config(per_period, buckets), threads, batch_size);
                for period in stream.chunks(per_period) {
                    pipeline.insert_batch(period);
                    pipeline.end_period().expect("no shard faults");
                }
                std::hint::black_box(pipeline.into_sharded().expect("no shard faults"));
            });
            eprintln!("       {m:.2} Mops ({:.2}x vs scalar)", m / scalar_mops);
            parallel.push(SweepPoint {
                threads: threads as u64,
                batch_size: batch_size as u64,
                mops: m,
                speedup_vs_scalar: m / scalar_mops,
            });
        }
    }

    let report = Report {
        bench: "pipeline_speed".to_string(),
        host: Host {
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        },
        workload: Workload {
            records: records as u64,
            distinct: distinct as u64,
            periods: PERIODS as u64,
            zipf_skew: SKEW,
            seed: 42,
            scale_divisor: s as u64,
        },
        scalar_mops,
        batch,
        sharded4_batch256_mops,
        parallel,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = "BENCH_pipeline.json";
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_pipeline.json");
    eprintln!("[emit] wrote {path}");
    println!("{json}");
}
