//! Figure 7: the §IV theory validated against measurement, on a synthetic
//! Zipf stream (the §IV model: Zipf frequencies, uniform occupancy).
//!
//! * 7(a): correct-rate — measured real value vs theoretical lower bound,
//!   k=1000, memory 10–150 KB;
//! * 7(b): error — measured `Pr{sᵢ−ŝᵢ ≥ εN}` vs the Markov upper bound,
//!   ε=2⁻¹⁸, k=1000, memory 10–100 KB.
//!
//! The theory applies to the basic version + Deviation Eliminator (no
//! Long-tail Replacement, which trades the no-overestimation guarantee for
//! accuracy), with α=1, β=0 so significance follows the Eq. 3 frequency
//! model directly.

use ltc_bench::{emit, k_sweep, memory_sweep_kb, scale};
use ltc_common::{MemoryBudget, SignificanceQuery, Weights};
use ltc_core::{Ltc, LtcConfig, Variant};
use ltc_eval::theory;
use ltc_eval::{Oracle, Table};
use ltc_workloads::generator::zipf_stream;
use ltc_workloads::GeneratedStream;

const D: usize = 8;

fn run_ltc(stream: &GeneratedStream, kb: usize) -> Ltc {
    let mut ltc = Ltc::new(
        LtcConfig::with_memory(MemoryBudget::kilobytes(kb), D)
            .weights(Weights::FREQUENT)
            .records_per_period(stream.layout.records_per_period().unwrap())
            .variant(Variant::DEVIATION_ONLY)
            .seed(7)
            .build(),
    );
    for period in stream.periods() {
        for &id in period {
            ltc.insert(id);
        }
        ltc.end_period();
    }
    ltc.finalize();
    ltc
}

/// Average a per-rank bound over `k` ranks, subsampled for tractability
/// (the correct-rate DP is O(M·d) per rank).
fn subsampled_avg(k: usize, mut f: impl FnMut(usize) -> f64) -> f64 {
    let step = (k / 50).max(1);
    let ranks: Vec<usize> = (0..k).step_by(step).collect();
    ranks.iter().map(|&r| f(r)).sum::<f64>() / ranks.len() as f64
}

fn main() {
    let s = scale();
    let stream = zipf_stream(
        (10_000_000 / s).max(10_000),
        (1_000_000 / s).max(1_000),
        1.0,
        100,
        42,
    );
    eprintln!("[gen] zipf: {} records", stream.len());
    let oracle = Oracle::build(&stream);
    let ranked = oracle.ranked_frequencies();
    let n = oracle.total_records();
    let k = k_sweep(&[1000])[0].1;
    let truth = oracle.top_k(k, &Weights::FREQUENT);

    // (a): correct rate.
    let mut table_a = Table::new(
        "fig07a",
        "Correct rate: measured vs theoretical bound (Zipf, k=1000)",
        "memory (KB)",
        vec!["real value".into(), "theoretic bound".into()],
    );
    for kb in memory_sweep_kb(&[10, 30, 60, 90, 120, 150]) {
        let ltc = run_ltc(&stream, kb);
        let correct = truth
            .iter()
            .filter(|e| ltc.estimate(e.id) == Some(e.value))
            .count();
        let real = correct as f64 / truth.len() as f64;
        let w = ltc.config().buckets;
        let bound = subsampled_avg(k.min(ranked.len()), |r| {
            theory::correct_rate_bound(&ranked, ranked[r], w, D)
        });
        eprintln!("  [{kb:>4} KB] real {real:.4}  bound {bound:.4}");
        table_a.push_row(kb as f64, vec![real, bound]);
    }
    emit(&table_a);

    // (b): error probability.
    let epsilon = 2f64.powi(-18) * s as f64; // keep εN meaningful at scale
    let mut table_b = Table::new(
        "fig07b",
        "Error Pr{s-ŝ ≥ εN}: measured vs Markov bound (Zipf, k=1000, ε=2^-18)",
        "memory (KB)",
        vec!["real value".into(), "theoretic bound".into()],
    );
    for kb in memory_sweep_kb(&[10, 25, 50, 75, 100]) {
        let ltc = run_ltc(&stream, kb);
        let threshold = epsilon * n as f64;
        let exceeded = truth
            .iter()
            .filter(|e| {
                let est = ltc.estimate(e.id).unwrap_or(0.0);
                e.value - est >= threshold
            })
            .count();
        let real = exceeded as f64 / truth.len() as f64;
        let w = ltc.config().buckets;
        let bound = subsampled_avg(k.min(ranked.len()), |r| {
            theory::error_bound(&ranked, r, w, D, 1.0, 0.0, epsilon, n)
        });
        eprintln!("  [{kb:>4} KB] real {real:.4}  bound {bound:.4}");
        table_b.push_row(kb as f64, vec![real, bound]);
    }
    emit(&table_b);
}
