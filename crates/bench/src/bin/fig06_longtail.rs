//! Figure 6: verification of the **long-tail assumption** behind Long-tail
//! Replacement (§III-D).
//!
//! * 6(a): frequencies of the top-20 frequent items *within three arbitrary
//!   buckets* of an 800-bucket hash partition (Network dataset) — the
//!   assumption is that per-bucket frequencies are still long-tailed;
//! * 6(b): frequencies of the global top-20 items on all three datasets.

use ltc_bench::{dataset, emit};
use ltc_eval::{Oracle, Table};
use ltc_hash::SeededHash;
use ltc_workloads::profiles;

const BUCKETS: usize = 800; // "We set the number of buckets to 800"

fn main() {
    // (a): per-bucket top-20 on Network.
    let stream = dataset(profiles::network_like());
    let oracle = Oracle::build(&stream);
    let hash = SeededHash::new(0x800);
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); BUCKETS];
    for (id, f, _) in oracle.iter() {
        buckets[hash.index(id, BUCKETS)].push(f);
    }
    // Three "arbitrary" buckets: fixed picks for reproducibility.
    let picks = [17usize, 404, 777];
    let mut table_a = Table::new(
        "fig06a",
        "Top-20 per-bucket frequencies, three arbitrary buckets (Network, 800 buckets)",
        "rank",
        picks.iter().map(|b| format!("bucket{b}")).collect(),
    );
    let mut tops: Vec<Vec<u64>> = picks
        .iter()
        .map(|&b| {
            let mut v = buckets[b].clone();
            v.sort_unstable_by(|x, y| y.cmp(x));
            v.truncate(20);
            v
        })
        .collect();
    for t in &mut tops {
        t.resize(20, 0);
    }
    for rank in 0..20 {
        table_a.push_row(
            (rank + 1) as f64,
            tops.iter().map(|t| t[rank] as f64).collect(),
        );
    }
    emit(&table_a);
    // The quantitative long-tail check the paper makes visually: the top
    // rank should dwarf the 20th.
    for (b, t) in picks.iter().zip(&tops) {
        let ratio = t[0] as f64 / t[19].max(1) as f64;
        eprintln!("[fig06a] bucket {b}: f(1)/f(20) = {ratio:.1}");
    }

    // (b): global top-20 on all datasets.
    let mut table_b = Table::new(
        "fig06b",
        "Top-20 global frequencies, three datasets",
        "rank",
        profiles::all().iter().map(|s| s.name.to_string()).collect(),
    );
    let mut columns: Vec<Vec<u64>> = Vec::new();
    for spec in profiles::all() {
        let oracle = Oracle::build(&dataset(spec));
        let mut ranked = oracle.ranked_frequencies();
        ranked.truncate(20);
        ranked.resize(20, 0);
        columns.push(ranked);
    }
    for rank in 0..20 {
        table_b.push_row(
            (rank + 1) as f64,
            columns.iter().map(|c| c[rank] as f64).collect(),
        );
    }
    emit(&table_b);
}
