//! Seed-variance check: every figure in the paper (and in `results/`) is a
//! single-seed run — this binary quantifies how much the headline numbers
//! move across independently generated streams, so readers can judge the
//! error bars the plots omit.
//!
//! Runs the significant-items line-up (Fig. 14's setting, 1:1 weights,
//! 50 KB, k=100) over 5 stream seeds of the Network profile and prints
//! mean ± std of precision and ARE per algorithm.

use ltc_bench::{memory_sweep_kb, scale};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
use ltc_eval::{run_trials, Table};
use ltc_workloads::profiles;

const TRIALS: usize = 5;

fn main() {
    let spec = profiles::network_like()
        .scaled_down(scale() * 10)
        .with_periods(profiles::network_like().periods);
    let weights = Weights::BALANCED;
    let k = 100;
    let kb = memory_sweep_kb(&[50])[0];
    eprintln!(
        "[variance] Network/10 ({} records), {TRIALS} seeds, {kb} KB, k={k}",
        spec.total_records
    );

    let mut table = Table::new(
        "variance_check",
        format!("Seed variance over {TRIALS} trials (Network/10, 1:1, {kb} KB, k=100) — rows: precision mean, precision std, ARE mean, ARE std"),
        "algorithm #",
        vec![
            "precision mean".into(),
            "precision std".into(),
            "ARE mean".into(),
            "ARE std".into(),
        ],
    );
    for (i, algo) in AlgoSpec::significant_lineup().into_iter().enumerate() {
        let params = BuildParams {
            budget: MemoryBudget::kilobytes(kb),
            k,
            weights,
            records_per_period: spec.layout().records_per_period().unwrap(),
            seed: 9,
        };
        let (p, a) = run_trials(|| build_algorithm(algo, &params), &spec, k, weights, TRIALS);
        eprintln!("  [{algo:?}] precision {p}  ARE {a}");
        table.push_row(i as f64, vec![p.mean, p.std, a.mean, a.std]);
    }
    ltc_bench::emit(&table);
}
