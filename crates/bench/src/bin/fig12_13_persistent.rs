//! Figures 12 and 13: precision and ARE on finding **persistent** items
//! (α=0, β=1), LTC vs PIE and the sketch+Bloom adaptations.
//!
//! * 12(a)–(c) / 13(a)–(c): vs memory (25–300 KB), k=100, three datasets;
//! * 12(d) / 13(d): vs k (100–1000), 100 KB, Network.
//!
//! PIE receives the budget **per period** (`T×` total), as §V-C specifies.

use ltc_bench::{dataset, emit, memory_sweep_kb, run_k_sweep, run_memory_sweep};
use ltc_common::Weights;
use ltc_eval::algorithms::AlgoSpec;
use ltc_workloads::profiles;

fn main() {
    let weights = Weights::PERSISTENT;
    let lineup = AlgoSpec::persistent_lineup();
    let names: Vec<String> = ["LTC", "PIE", "CM+BF", "CU+BF"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let kbs = memory_sweep_kb(&[25, 50, 100, 200, 300]);

    for (sub, spec) in ["a", "b", "c"].iter().zip(profiles::all()) {
        let stream = dataset(spec);
        let (p, a) = run_memory_sweep(
            &lineup,
            &names,
            &stream,
            &kbs,
            100,
            weights,
            &format!("fig12{sub}"),
            &format!("fig13{sub}"),
            &format!("persistent items, vs memory ({})", spec.name),
        );
        emit(&p);
        emit(&a);
    }

    let stream = dataset(profiles::network_like());
    let kb = memory_sweep_kb(&[100])[0];
    let (p, a) = run_k_sweep(
        &lineup,
        &names,
        &stream,
        kb,
        &[100, 250, 500, 750, 1000],
        weights,
        "fig12d",
        "fig13d",
        "persistent items, vs k (Network)",
    );
    emit(&p);
    emit(&a);
}
