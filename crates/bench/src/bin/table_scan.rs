//! Bucket-probe microbench: the struct-of-arrays table layout against the
//! retained array-of-structs reference, per bucket width.
//!
//! ```sh
//! cargo run --release -p ltc-bench --bin table_scan                  # aos + soa
//! cargo run --release -p ltc-bench --features simd --bin table_scan  # + simd lane
//! LTC_SCALE=50 cargo run --release -p ltc-bench --bin table_scan     # quick look
//! ```
//!
//! Every record probes one bucket (find-match, then find-empty or
//! find-min-significance), so ingest throughput over a fixed Zipf stream
//! *is* bucket-probe throughput. Both layouts are fed through their
//! batched path (`insert_batch`, batch 256) — the production hot path,
//! where hashes are computed up front and the upcoming bucket is
//! prefetched — so the measurement compares the *scans*, not each
//! layout's exposure to demand misses. The sweep holds the total cell
//! count constant while varying `d` ∈ {4, 8, 16}: wider buckets mean
//! longer scans per probe, which is exactly where the lane layout pays.
//!
//! The table is sized to stay L2-resident (512 KiB) *by design*: this is
//! a scan microbench, and once the table spills into L3 both layouts
//! bottleneck on the same ~2 demand lines per probe and their throughputs
//! converge toward the memory subsystem's, drowning the scan difference
//! the bench exists to measure (observed on this host: a 4 MiB table
//! compresses the d = 8 ratio from ~1.2 to ~1.0). The distinct-item count
//! still exceeds table capacity ~4×, so the full case mix — hits, fills,
//! decrements, admissions — is exercised at production proportions; the
//! memory-bound regime at realistic table scale is the end-to-end
//! `pipeline_speed` bench's job, gated separately via
//! `BENCH_pipeline.json`.
//!
//! Reps are *paired*: each rep times the AoS reference and the SoA table
//! back-to-back, and the comparison ratio is the median of the per-rep
//! ratios — on a single-CPU host with seconds-scale noise windows, pairing
//! is the difference between measuring the layouts and measuring the
//! neighbours (see [`measure_paired`]).
//!
//! Layouts measured on the *identical* stream (equivalence is separately
//! proven by `crates/core/tests/soa_equivalence.rs`):
//!
//! * `aos_reference` — [`ReferenceLtc`], the faithful pre-refactor
//!   array-of-structs table.
//! * `soa` — [`Ltc`], the lane layout with autovectorized safe scans.
//! * `soa_simd` — `Ltc` compiled with `--features simd` (explicit SSE4.1
//!   find-match). The feature swaps the bucket-match implementation at
//!   *compile time*, so the default build measures the first two and
//!   writes the report with `soa_simd_mops: null`; the simd build then
//!   re-measures its sweep and patches only the `soa_simd_mops` lane into
//!   the existing report. Run the default build first.
//!
//! Writes `BENCH_table.json` (repo root), gated in CI by
//! `cargo run -p xtask -- bench-compare`.

use ltc_bench::scale;
use ltc_common::Weights;
use ltc_core::reference::ReferenceLtc;
use ltc_core::{Ltc, LtcConfig, Variant};
use ltc_workloads::generator::zipf_samples;
use serde::Serialize;
use std::time::Instant;

/// 8M Zipf(1.0) records: heavy hitters exercise find-match hits, the long
/// tail exercises vacancy scans and full-bucket minimum scans. The stream
/// is long relative to the table so each rep runs ~0.5 s — short reps were
/// the dominant noise source on this single-CPU host.
const RECORDS: usize = 8_000_000;
/// ~4× table capacity: enough distinct items that evictions (cases 2–3)
/// stay at production proportions, small enough that the hot head of the
/// Zipf distribution keeps the hit path dominant.
const DISTINCT: usize = 125_000;
const PERIODS: usize = 50;
const SKEW: f64 = 1.0;
/// Total cells, constant across the `d` sweep. 2^15 cells = 512 KiB per
/// table — L2-resident on purpose, so reps measure scan throughput rather
/// than L3 latency (see the module doc).
const TOTAL_CELLS: usize = 1 << 15;
const D_SWEEP: [usize; 3] = [4, 8, 16];
/// Hand-off batch for both layouts' `insert_batch` (the pipeline's
/// production default).
const BATCH: usize = 256;
/// Paired runs per configuration (odd, so the median rep is a real rep).
/// Each layout reports its best rep; the comparison ratio is the median of
/// the per-rep *paired* ratios — see [`measure_paired`].
const REPS: usize = 5;

const OUT_PATH: &str = "BENCH_table.json";

#[derive(Serialize)]
struct Host {
    cpus: u64,
    os: String,
    arch: String,
}

#[derive(Serialize)]
struct Workload {
    records: u64,
    distinct: u64,
    periods: u64,
    zipf_skew: f64,
    seed: u64,
    total_cells: u64,
    batch_size: u64,
    scale_divisor: u64,
}

#[derive(Serialize)]
struct SweepPoint {
    cells_per_bucket: u64,
    buckets: u64,
    /// Array-of-structs reference table, probes (= records) per second / 1e6.
    aos_reference_mops: f64,
    /// Struct-of-arrays table, safe autovectorized scans.
    soa_mops: f64,
    /// Median of the per-rep *paired* soa/aos ratios — not
    /// `soa_mops / aos_reference_mops`, whose best reps may come from
    /// different noise windows (see [`measure_paired`]).
    soa_vs_aos: f64,
    /// Struct-of-arrays with the explicit SSE4.1 find-match; null until
    /// the simd build patches it in.
    soa_simd_mops: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host: Host,
    workload: Workload,
    sweep: Vec<SweepPoint>,
}

fn mops(records: usize, secs: f64) -> f64 {
    records as f64 / secs / 1e6
}

fn measure(records: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    mops(records, best)
}

fn time(run: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    run();
    start.elapsed().as_secs_f64()
}

/// Paired comparison: each rep times the AoS reference and the SoA table
/// back-to-back on the identical stream, so the seconds-scale noise windows
/// of this single-CPU host (±10–20 % observed) land on *both* sides of a
/// rep instead of on whichever layout happened to be running. Returns each
/// layout's best-rep throughput plus the **median of the per-rep time
/// ratios** — the paired ratio is what the acceptance gate reads, because
/// best-rep throughputs may come from different noise windows and their
/// quotient then measures the host, not the layouts.
fn measure_paired(
    records: usize,
    mut run_aos: impl FnMut(),
    mut run_soa: impl FnMut(),
) -> (f64, f64, f64) {
    let mut aos_best = f64::INFINITY;
    let mut soa_best = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let a = time(&mut run_aos);
        let s = time(&mut run_soa);
        aos_best = aos_best.min(a);
        soa_best = soa_best.min(s);
        // Time ratio aos/soa == throughput ratio soa/aos.
        ratios.push(a / s);
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios.get(REPS / 2).copied().unwrap_or(f64::NAN);
    (mops(records, aos_best), mops(records, soa_best), median)
}

fn config(buckets: usize, d: usize, per_period: usize) -> LtcConfig {
    LtcConfig::builder()
        .buckets(buckets)
        .cells_per_bucket(d)
        .records_per_period(per_period as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build()
}

/// Batched ingest throughput of the SoA table (whatever bucket-match scan
/// this binary was compiled with) at bucket width `d`.
fn measure_soa(stream: &[u64], records: usize, per_period: usize, buckets: usize, d: usize) -> f64 {
    measure(records, || {
        let mut t = Ltc::new(config(buckets, d, per_period));
        for period in stream.chunks(per_period) {
            for chunk in period.chunks(BATCH) {
                t.insert_batch(chunk);
            }
            t.end_period();
        }
        std::hint::black_box(&t);
    })
}

fn main() {
    let s = scale() as usize;
    let records = (RECORDS / s).max(PERIODS);
    let distinct = (DISTINCT / s).max(1_000);
    let total_cells = (TOTAL_CELLS / s).max(1_024);
    let per_period = records / PERIODS;
    eprintln!(
        "[gen] {records} Zipf({SKEW}) records, {distinct} distinct, {PERIODS} periods, \
         {total_cells} cells"
    );
    let stream = zipf_samples(records, distinct as u64, SKEW, 42);

    if cfg!(feature = "simd") {
        patch_simd_lane(&stream, records, per_period, total_cells);
        return;
    }

    let mut sweep = Vec::new();
    for d in D_SWEEP {
        let buckets = (total_cells / d).max(1);
        eprintln!("[run] d={d} ({buckets} buckets): aos_reference / soa, {REPS} paired reps");
        let (aos_reference_mops, soa_mops, soa_vs_aos) = measure_paired(
            records,
            || {
                let mut t = ReferenceLtc::new(config(buckets, d, per_period));
                for period in stream.chunks(per_period) {
                    for chunk in period.chunks(BATCH) {
                        t.insert_batch(chunk);
                    }
                    t.end_period();
                }
                std::hint::black_box(&t);
            },
            || {
                let mut t = Ltc::new(config(buckets, d, per_period));
                for period in stream.chunks(per_period) {
                    for chunk in period.chunks(BATCH) {
                        t.insert_batch(chunk);
                    }
                    t.end_period();
                }
                std::hint::black_box(&t);
            },
        );
        eprintln!(
            "       aos {aos_reference_mops:.2} Mops, soa {soa_mops:.2} Mops \
             ({soa_vs_aos:.2}x median paired)"
        );

        sweep.push(SweepPoint {
            cells_per_bucket: d as u64,
            buckets: buckets as u64,
            aos_reference_mops,
            soa_mops,
            soa_vs_aos,
            soa_simd_mops: None,
        });
    }

    let report = Report {
        bench: "table_scan".to_string(),
        host: Host {
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        },
        workload: Workload {
            records: records as u64,
            distinct: distinct as u64,
            periods: PERIODS as u64,
            zipf_skew: SKEW,
            seed: 42,
            total_cells: total_cells as u64,
            batch_size: BATCH as u64,
            scale_divisor: s as u64,
        },
        sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(OUT_PATH, format!("{json}\n")).expect("write BENCH_table.json");
    eprintln!("[emit] wrote {OUT_PATH}");
    println!("{json}");
}

/// simd build: measure only the SoA sweep (which *is* the simd scan in
/// this binary) and patch `soa_simd_mops` into the report the default
/// build wrote, leaving the aos/soa lanes untouched.
fn patch_simd_lane(stream: &[u64], records: usize, per_period: usize, total_cells: usize) {
    use serde::{Number, Value};
    let text = std::fs::read_to_string(OUT_PATH).unwrap_or_else(|e| {
        panic!("{OUT_PATH}: {e} — run the default build first (it writes the aos/soa lanes)")
    });
    let mut report: Value = serde_json::parse(&text).expect("valid report JSON");
    let Value::Obj(fields) = &mut report else {
        panic!("{OUT_PATH}: expected a JSON object");
    };
    let Some(Value::Arr(sweep)) = fields
        .iter_mut()
        .find(|(k, _)| k == "sweep")
        .map(|(_, v)| v)
    else {
        panic!("{OUT_PATH}: report has no sweep array");
    };
    assert_eq!(
        sweep.len(),
        D_SWEEP.len(),
        "sweep shape changed; rerun the default build"
    );
    for (point, d) in sweep.iter_mut().zip(D_SWEEP) {
        let Value::Obj(entries) = point else {
            panic!("{OUT_PATH}: sweep entries must be objects");
        };
        let recorded_d = entries
            .iter()
            .find(|(k, _)| k == "cells_per_bucket")
            .and_then(|(_, v)| match v {
                Value::Num(n) => Some(n.as_f64() as usize),
                _ => None,
            });
        assert_eq!(
            recorded_d,
            Some(d),
            "sweep shape changed; rerun the default build"
        );
        let buckets = (total_cells / d).max(1);
        eprintln!("[run] d={d} ({buckets} buckets): soa+simd");
        let m = measure_soa(stream, records, per_period, buckets, d);
        eprintln!("       {m:.2} Mops");
        match entries.iter_mut().find(|(k, _)| k == "soa_simd_mops") {
            Some((_, slot)) => *slot = Value::Num(Number::F(m)),
            None => entries.push(("soa_simd_mops".to_string(), Value::Num(Number::F(m)))),
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(OUT_PATH, format!("{json}\n")).expect("write BENCH_table.json");
    eprintln!("[emit] patched soa_simd_mops into {OUT_PATH}");
    println!("{json}");
}
