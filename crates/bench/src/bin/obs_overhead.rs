//! Measured cost of the observability layer on the parallel ingestion hot
//! path. Runs the identical Zipf workload through `ParallelLtc` three
//! ways — observability off (`with_observability(..., None)`), metrics
//! only (`RuntimeObs::without_tracing()`), and the full default
//! (`RuntimeObs::new()`: metrics + span tracing) — and writes
//! `BENCH_obs.json` (repo root) with the relative overhead of each
//! instrumented column against off. The contract is ≤ 2% for both.
//!
//! ```sh
//! cargo run --release -p ltc-bench --bin obs_overhead
//! LTC_SCALE=10 cargo run --release -p ltc-bench --bin obs_overhead   # quick look
//! ```
//!
//! The instrumentation design keeps this cheap by construction: two
//! `Instant` reads plus a handful of `Relaxed` atomic adds per 256-record
//! batch, and a stall counter only on the already-parking slow path. The
//! `obs_hot_path` rule of `cargo run -p xtask -- lint` pins that contract
//! lexically; this bench pins it numerically.

use ltc_bench::scale;
use ltc_common::Weights;
use ltc_core::obs::RuntimeObs;
use ltc_core::{FaultPolicy, LtcConfig, ParallelLtc, Variant};
use ltc_workloads::generator::zipf_samples;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Paper-scale workload: 10M Zipf(1.0) records over 100 periods.
const RECORDS: usize = 10_000_000;
const DISTINCT: usize = 1_000_000;
const PERIODS: usize = 100;
const SKEW: f64 = 1.0;
/// Interleaved on/off run pairs; the minimum of each side is reported.
const REPS: usize = 5;

const THREADS: usize = 4;
const BATCH: usize = 256;

#[derive(Serialize)]
struct Host {
    cpus: u64,
    os: String,
    arch: String,
}

#[derive(Serialize)]
struct Workload {
    records: u64,
    distinct: u64,
    periods: u64,
    zipf_skew: f64,
    seed: u64,
    scale_divisor: u64,
    threads: u64,
    batch_size: u64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host: Host,
    workload: Workload,
    /// Ingestion throughput with observability off.
    metrics_off_mops: f64,
    /// Ingestion throughput with metrics only (`without_tracing`).
    metrics_on_mops: f64,
    /// Ingestion throughput with the full default `RuntimeObs` attached
    /// (metrics + span tracing).
    trace_on_mops: f64,
    /// Relative slowdown of metrics-on vs metrics-off, in percent
    /// (negative = within noise).
    overhead_percent: f64,
    /// Relative slowdown of trace-on vs metrics-off, in percent.
    trace_overhead_percent: f64,
    /// The contract each instrumented column is held to.
    budget_percent: f64,
    within_budget: bool,
}

fn config(per_period: usize, buckets: usize) -> LtcConfig {
    LtcConfig::builder()
        .buckets(buckets)
        .cells_per_bucket(8)
        .records_per_period(per_period as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build()
}

fn main() {
    let s = scale() as usize;
    let records = (RECORDS / s).max(PERIODS);
    let distinct = (DISTINCT / s).max(1_000);
    let per_period = records / PERIODS;
    let buckets = (25_000 / s).max(64);
    eprintln!(
        "[gen] {records} Zipf({SKEW}) records, {distinct} distinct, {PERIODS} periods, \
         {buckets}x8 cells, {THREADS} threads, batch {BATCH}"
    );
    let stream = zipf_samples(records, distinct as u64, SKEW, 42);

    let run = |obs: Option<Arc<RuntimeObs>>| -> f64 {
        let mut pipeline = ParallelLtc::with_observability(
            config(per_period, buckets),
            THREADS,
            BATCH,
            FaultPolicy::default(),
            obs,
        );
        let start = Instant::now();
        for period in stream.chunks(per_period) {
            pipeline.insert_batch(period);
            pipeline.end_period().expect("no shard faults");
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(pipeline.into_sharded().expect("no shard faults"));
        secs
    };

    // Warm-up triple (page cache, thread spawn paths), then interleave the
    // measured triples so frequency scaling and background noise hit all
    // sides alike.
    let _ = run(None);
    let _ = run(Some(Arc::new(RuntimeObs::without_tracing())));
    let _ = run(Some(Arc::new(RuntimeObs::new())));
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut best_trace = f64::INFINITY;
    let mut on_ratios = Vec::with_capacity(REPS);
    let mut trace_ratios = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let off = run(None);
        let on = run(Some(Arc::new(RuntimeObs::without_tracing())));
        let trace = run(Some(Arc::new(RuntimeObs::new())));
        eprintln!("[rep {rep}] off {off:.3}s  metrics {on:.3}s  trace {trace:.3}s");
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        best_trace = best_trace.min(trace);
        on_ratios.push(on / off);
        trace_ratios.push(trace / off);
    }

    // Overhead is the *median of per-rep ratios*: each rep's three runs are
    // adjacent in time, so slow drift (thermal, co-tenants) cancels inside
    // the ratio instead of pitting a cold rep of one column against a hot
    // rep of another. Throughput columns still report the per-column best.
    let median = |ratios: &mut Vec<f64>| -> f64 {
        ratios.sort_unstable_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    let metrics_off_mops = records as f64 / best_off / 1e6;
    let metrics_on_mops = records as f64 / best_on / 1e6;
    let trace_on_mops = records as f64 / best_trace / 1e6;
    let overhead_percent = (median(&mut on_ratios) - 1.0) * 100.0;
    let trace_overhead_percent = (median(&mut trace_ratios) - 1.0) * 100.0;
    let budget_percent = 2.0;
    let within_budget =
        overhead_percent <= budget_percent && trace_overhead_percent <= budget_percent;
    eprintln!(
        "[result] off {metrics_off_mops:.2} Mops, metrics {metrics_on_mops:.2} Mops \
         ({overhead_percent:+.2}%), trace {trace_on_mops:.2} Mops \
         ({trace_overhead_percent:+.2}%) — budget {budget_percent}%"
    );

    let report = Report {
        bench: "obs_overhead".to_string(),
        host: Host {
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        },
        workload: Workload {
            records: records as u64,
            distinct: distinct as u64,
            periods: PERIODS as u64,
            zipf_skew: SKEW,
            seed: 42,
            scale_divisor: s as u64,
            threads: THREADS as u64,
            batch_size: BATCH as u64,
        },
        metrics_off_mops,
        metrics_on_mops,
        trace_on_mops,
        overhead_percent,
        trace_overhead_percent,
        budget_percent,
        within_budget,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = "BENCH_obs.json";
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_obs.json");
    eprintln!("[emit] wrote {path}");
    println!("{json}");
    if !within_budget {
        eprintln!("[fail] observability overhead exceeds the {budget_percent}% budget");
        std::process::exit(1);
    }
}
