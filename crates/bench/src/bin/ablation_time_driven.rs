//! Ablation: count-driven vs time-driven CLOCK stepping under non-uniform
//! arrival rates.
//!
//! The paper's basic description assumes "the arriving speed of every item
//! is the same" and then notes the time-driven extension ("In practice, the
//! arriving speed of items could vary a lot", §III-B1). This ablation
//! quantifies that: the same records are replayed with *bursty timestamps*
//! (each period's records compressed into its first `burst_pct`%), and LTC
//! is driven once count-based (pointer advances `m/n` per record —
//! oblivious to time) and once time-based (pointer advances `(x−y)/t·m` —
//! tracking wall clock).
//!
//! Finding this ablation demonstrates: with the **Deviation Eliminator**
//! the two drivings are *exactly equivalent* — the sweep harvests only the
//! previous period's flags and covers every cell exactly once per period,
//! so its pacing inside the period cannot change the outcome. Pacing only
//! matters for the **basic** single-flag variant, where a mid-period scan
//! can double-harvest — i.e. DE buys robustness to arrival-rate variation
//! on top of its exactness guarantee.

use ltc_bench::{emit, memory_sweep_kb, scale};
use ltc_common::{Estimate, MemoryBudget, SignificanceQuery, Weights};
use ltc_core::{Ltc, LtcConfig, Variant};
use ltc_eval::{metrics, Oracle, Table};
use ltc_workloads::{generate, profiles};

const PERIOD_UNITS: u64 = 1_000_000;

fn build(kb: usize, time_driven: bool, n_per_period: u64, variant: Variant) -> Ltc {
    let b = LtcConfig::with_memory(MemoryBudget::kilobytes(kb), 8)
        .weights(Weights::PERSISTENT)
        .variant(variant)
        .seed(7);
    let b = if time_driven {
        b.time_units_per_period(PERIOD_UNITS)
    } else {
        b.records_per_period(n_per_period)
    };
    Ltc::new(b.build())
}

fn main() {
    let spec = profiles::network_like().scaled_down(scale() * 10);
    eprintln!("[gen] {}: {} records", spec.name, spec.total_records);
    let stream = generate(&spec);
    let oracle = Oracle::build(&stream);
    let weights = Weights::PERSISTENT;
    let k = 100;
    let truth = oracle.top_k(k, &weights);
    let n_per_period = stream.layout.records_per_period().unwrap();
    let kb = memory_sweep_kb(&[50])[0];

    let mut p_table = Table::new(
        "ablation_clock_precision",
        format!("Precision: count- vs time-driven CLOCK under burst (Network/10, 0:1, {kb} KB)"),
        "burst concentration (% of period holding all records)",
        vec![
            "count+DE".into(),
            "time+DE".into(),
            "count basic".into(),
            "time basic".into(),
        ],
    );
    let mut a_table = Table::new(
        "ablation_clock_are",
        format!("ARE: count- vs time-driven CLOCK under burst (Network/10, 0:1, {kb} KB)"),
        "burst concentration (% of period holding all records)",
        vec![
            "count+DE".into(),
            "time+DE".into(),
            "count basic".into(),
            "time basic".into(),
        ],
    );

    for burst_pct in [100u64, 50, 20, 5] {
        // Timestamps: period i's records land uniformly inside its first
        // burst_pct% of wall-clock.
        let mut results: Vec<(f64, f64)> = Vec::new();
        for (time_driven, variant) in [
            (false, Variant::FULL),
            (true, Variant::FULL),
            (false, Variant::LONG_TAIL_ONLY),
            (true, Variant::LONG_TAIL_ONLY),
        ] {
            let mut ltc = build(kb, time_driven, n_per_period, variant);
            for (pi, period) in stream.periods().enumerate() {
                let window = PERIOD_UNITS * burst_pct / 100;
                let base = pi as u64 * PERIOD_UNITS;
                let len = period.len().max(1) as u64;
                for (ri, &id) in period.iter().enumerate() {
                    if time_driven {
                        let t = base + (ri as u64 * window) / len;
                        ltc.insert_at(id, t);
                    } else {
                        ltc.insert(id);
                    }
                }
                if !time_driven {
                    ltc.end_period();
                }
            }
            if time_driven {
                ltc.end_period();
            }
            ltc.finalize();
            let reported: Vec<Estimate> = ltc.top_k(k);
            let p = metrics::tie_aware_precision(&reported, &truth, &oracle, &weights);
            let a = metrics::are(&reported, k, &oracle, &weights);
            eprintln!(
                "  [{} {}] burst {burst_pct:>3}%  precision {p:.3}  ARE {a:.3e}",
                if time_driven { "time " } else { "count" },
                if variant.deviation_eliminator {
                    "DE   "
                } else {
                    "basic"
                },
            );
            results.push((p, a));
        }
        p_table.push_row(burst_pct as f64, results.iter().map(|r| r.0).collect());
        a_table.push_row(burst_pct as f64, results.iter().map(|r| r.1).collect());
    }
    emit(&p_table);
    emit(&a_table);
}
