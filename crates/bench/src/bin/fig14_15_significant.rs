//! Figures 14 and 15: precision and ARE on finding **significant** items,
//! LTC vs the CM- and CU-based two-structure combiners, on three weightings
//! (α:β ∈ {1:10, 1:1, 10:1}).
//!
//! The paper's (b)–(d) subfigures sweep memory 25–300 KB at k=100 on
//! CAIDA/Network/Social; each algorithm appears once per weighting, so each
//! table has `3 algorithms × 3 weightings` series.

use ltc_bench::{dataset, emit, memory_sweep_kb, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::profiles;

fn main() {
    let lineup = AlgoSpec::significant_lineup();
    let weightings: [(&str, Weights); 3] = [
        ("1:10", Weights::new(1.0, 10.0)),
        ("1:1", Weights::new(1.0, 1.0)),
        ("10:1", Weights::new(10.0, 1.0)),
    ];
    let base_names = ["LTC", "CM-SIG", "CU-SIG"];
    let series: Vec<String> = weightings
        .iter()
        .flat_map(|(ratio, _)| base_names.iter().map(move |n| format!("{n} {ratio}")))
        .collect();
    let kbs = memory_sweep_kb(&[25, 50, 100, 200, 300]);
    let k = 100;

    for (sub, spec) in ["b", "c", "d"].iter().zip(profiles::all()) {
        let stream = dataset(spec);
        let oracle = Oracle::build(&stream);
        let mut p_table = Table::new(
            format!("fig14{sub}"),
            format!("Precision, significant items, vs memory ({})", spec.name),
            "memory (KB)",
            series.clone(),
        );
        let mut a_table = Table::new(
            format!("fig15{sub}"),
            format!("ARE, significant items, vs memory ({})", spec.name),
            "memory (KB)",
            series.clone(),
        );
        for &kb in &kbs {
            let mut p_row = Vec::new();
            let mut a_row = Vec::new();
            for (_, weights) in weightings {
                let truth = oracle.top_k(k, &weights);
                let point = sweep_point(
                    &lineup,
                    &stream,
                    &oracle,
                    &truth,
                    MemoryBudget::kilobytes(kb),
                    k,
                    weights,
                    7,
                );
                p_row.extend(point.precision);
                a_row.extend(point.are);
            }
            p_table.push_row(kb as f64, p_row);
            a_table.push_row(kb as f64, a_row);
        }
        emit(&p_table);
        emit(&a_table);
    }
}
