//! Reproducible baseline for the durability layer: checkpoint save cost
//! (full frame vs delta frame), crash-recovery speed, and the ingest-path
//! tax of running the background durability service. Writes
//! `BENCH_recovery.json` (repo root) so the numbers — and the host they
//! were measured on — are checked in alongside the code.
//!
//! ```sh
//! cargo run --release -p ltc-bench --bin recovery_speed
//! LTC_SCALE=50 cargo run --release -p ltc-bench --bin recovery_speed   # quick look
//! ```
//!
//! Ingest keys are in record-Mops (records/s). Save and recovery cost is
//! driven by the *table*, not the stream, so those keys are in cell-Mops —
//! millions of table cells covered per second, over a **fixed** table
//! geometry that `LTC_SCALE` does not shrink. That keeps every `mops` key
//! comparable between the checked-in full-scale baseline and the scaled
//! CI re-run (`xtask bench-compare` gates them all): a delta frame covers
//! the same table as its base in a fraction of the time, so
//! `delta_save_cells_mops` must sit far above `full_save_cells_mops`.

use ltc_bench::scale;
use ltc_common::Weights;
use ltc_core::checkpoint::Checkpointer;
use ltc_core::durability::{DurabilityPolicy, DurabilityService};
use ltc_core::{FaultPolicy, LtcConfig, ParallelLtc, Variant};
use ltc_workloads::generator::zipf_samples;
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Paper-scale workload: 4M Zipf(1.0) records over 50 periods.
const RECORDS: usize = 4_000_000;
const DISTINCT: usize = 400_000;
const PERIODS: usize = 50;
const SKEW: f64 = 1.0;
/// Runs per measurement; the minimum is reported.
const REPS: usize = 3;
/// Worker threads / hand-off batch for the pipeline under test.
const THREADS: usize = 2;
const BATCH: usize = 256;
/// Post-base tail dirtying only hot buckets, so the delta stays sparse the
/// way a real between-checkpoints window does under a skewed stream.
const HOT_TAIL: usize = 2_000;
/// Table geometry for the save/recovery measurements. Deliberately *not*
/// scaled by `LTC_SCALE`: frame encode/decode and fsync cost are table-
/// driven, so a fixed table keeps the cell-Mops keys comparable between
/// the full-scale baseline and scaled CI re-runs.
const SAVE_BUCKETS: usize = 16_384;
const CELLS_PER_BUCKET: usize = 8;

#[derive(Serialize)]
struct Workload {
    records: u64,
    distinct: u64,
    periods: u64,
    zipf_skew: f64,
    seed: u64,
    scale_divisor: u64,
}

#[derive(Serialize)]
struct Host {
    cpus: u64,
    os: String,
    arch: String,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host: Host,
    workload: Workload,
    /// Cells in the fixed save/recovery table (all shards).
    save_table_cells: u64,
    /// Full-frame checkpoint of the fixed table, cells/s.
    full_save_cells_mops: f64,
    /// Delta frame after a hot-key tail, same cell scale — the headline:
    /// deltas cover the table far faster than full frames.
    delta_save_cells_mops: f64,
    /// `restore_from` (newest generation = base + delta), cells/s.
    recovery_cells_mops: f64,
    /// Pipeline ingest without any durability service attached, records/s.
    ingest_plain_mops: f64,
    /// Same ingest with the background service checkpointing on a timer.
    ingest_durable_mops: f64,
    /// Frame sizes (bytes), for the compression story; not gated.
    full_frame_bytes: u64,
    delta_frame_bytes: u64,
    delta_to_full_ratio: f64,
}

fn mops(records: usize, secs: f64) -> f64 {
    records as f64 / secs / 1e6
}

/// Best-of-[`REPS`] wall-clock of `run`.
fn best_secs(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-recovery-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn main() {
    let s = scale() as usize;
    let records = (RECORDS / s).max(PERIODS);
    let distinct = (DISTINCT / s).max(1_000);
    let per_period = records / PERIODS;
    let buckets = (16_384 / s).max(64);
    let config = LtcConfig::builder()
        .buckets(buckets)
        .cells_per_bucket(8)
        .records_per_period((per_period / THREADS) as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build();
    eprintln!(
        "[gen] {records} Zipf({SKEW}) records, {distinct} distinct, {PERIODS} periods, \
         {buckets}x8 cells"
    );
    let stream = zipf_samples(records, distinct as u64, SKEW, 42);

    let ingest = |p: &mut ParallelLtc| {
        for period in stream.chunks(per_period) {
            p.insert_batch(period);
            p.end_period().expect("no shard faults");
        }
        p.sync().expect("no shard faults");
    };

    // ---- ingest tax ------------------------------------------------------
    eprintln!("[run] ingest, no durability");
    let ingest_plain_mops = mops(
        records,
        best_secs(|| {
            let mut p = ParallelLtc::with_batch_size(config, THREADS, BATCH);
            ingest(&mut p);
            p.finish().expect("no shard faults");
        }),
    );
    eprintln!("       {ingest_plain_mops:.2} Mops");

    eprintln!("[run] ingest, background durability service");
    let ingest_durable_mops = mops(
        records,
        best_secs(|| {
            let dir = scratch("ingest");
            let mut p = ParallelLtc::with_batch_size(config, THREADS, BATCH);
            let service = DurabilityService::attach(
                &p,
                Checkpointer::new(&dir).expect("store"),
                DurabilityPolicy {
                    interval: Duration::from_millis(100),
                    full_every: 8,
                    max_chain_len: 16,
                    faults: FaultPolicy::default(),
                    on_fault: Default::default(),
                },
            )
            .expect("durability service");
            ingest(&mut p);
            drop(service);
            p.finish().expect("no shard faults");
            let _ = std::fs::remove_dir_all(&dir);
        }),
    );
    eprintln!(
        "       {ingest_durable_mops:.2} Mops ({:.1}% of plain)",
        ingest_durable_mops / ingest_plain_mops * 100.0
    );

    // ---- save + recovery cost -------------------------------------------
    // One table at the fixed geometry (frame cost is table-driven, see the
    // module doc); full saves re-snapshot everything, the delta save covers
    // only the buckets dirtied by a hot-key tail (deltas are cumulative, so
    // repeating the measurement repeats identical work).
    let save_config = LtcConfig::builder()
        .buckets(SAVE_BUCKETS)
        .cells_per_bucket(CELLS_PER_BUCKET)
        .records_per_period((per_period / THREADS) as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build();
    let save_cells = SAVE_BUCKETS * CELLS_PER_BUCKET * THREADS;
    let mut p = ParallelLtc::with_batch_size(save_config, THREADS, BATCH);
    ingest(&mut p);
    let dir = scratch("saves");
    let store = Checkpointer::new(&dir).expect("store").keep_generations(64);

    eprintln!("[run] full-frame save ({SAVE_BUCKETS}x{CELLS_PER_BUCKET} cells x {THREADS} shards)");
    let full_secs = best_secs(|| {
        std::hint::black_box(p.save_full_checkpoint(&store).expect("save"));
    });
    let full_save_cells_mops = mops(save_cells, full_secs);
    eprintln!(
        "       {:.2} ms -> {full_save_cells_mops:.2} cell-Mops",
        full_secs * 1e3
    );

    // Dirty only hot buckets mid-period — the shape of a real
    // between-checkpoints window (a period boundary would sweep the CLOCK
    // across the whole table and dirty most of it).
    let mut chain = p.save_full_checkpoint(&store).expect("base");
    for i in 0..HOT_TAIL {
        p.insert((i % 16) as u64);
    }
    p.sync().expect("no shard faults");

    eprintln!("[run] delta-frame save");
    let delta_secs = best_secs(|| {
        let mut probe = chain;
        std::hint::black_box(p.save_delta_checkpoint(&store, &mut probe).expect("save"));
    });
    let delta_save_cells_mops = mops(save_cells, delta_secs);
    eprintln!(
        "       {:.2} ms -> {delta_save_cells_mops:.2} cell-Mops",
        delta_secs * 1e3
    );

    // Leave a real chain on disk for the recovery measurement and compare
    // the frame footprints from it.
    let delta_generation = p
        .save_delta_checkpoint(&store, &mut chain)
        .expect("chained delta");
    let full_frame_bytes = store.load(chain.base_generation).expect("base bytes").len() as u64;
    let delta_frame_bytes = store.load(delta_generation).expect("delta bytes").len() as u64;

    eprintln!("[run] crash recovery (base + delta)");
    let recovery_secs = best_secs(|| {
        let mut fresh = ParallelLtc::with_batch_size(save_config, THREADS, BATCH);
        fresh.restore_from(&store).expect("restore");
        fresh.finish().expect("no shard faults");
    });
    let recovery_cells_mops = mops(save_cells, recovery_secs);
    eprintln!(
        "       {:.2} ms -> {recovery_cells_mops:.2} cell-Mops",
        recovery_secs * 1e3
    );
    p.finish().expect("no shard faults");
    let _ = std::fs::remove_dir_all(&dir);

    let report = Report {
        bench: "recovery_speed".to_string(),
        host: Host {
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        },
        workload: Workload {
            records: records as u64,
            distinct: distinct as u64,
            periods: PERIODS as u64,
            zipf_skew: SKEW,
            seed: 42,
            scale_divisor: s as u64,
        },
        save_table_cells: save_cells as u64,
        full_save_cells_mops,
        delta_save_cells_mops,
        recovery_cells_mops,
        ingest_plain_mops,
        ingest_durable_mops,
        full_frame_bytes,
        delta_frame_bytes,
        delta_to_full_ratio: delta_frame_bytes as f64 / full_frame_bytes as f64,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = "BENCH_recovery.json";
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_recovery.json");
    eprintln!("[emit] wrote {path}");
    println!("{json}");
}
