//! Figure 11: effect of the **Deviation Eliminator** (optimized "Y" vs the
//! single-flag basic version "N") on finding persistent items (α=0, β=1),
//! Network dataset, k=1000, memory 10–50 KB.

use ltc_bench::{dataset, emit, k_sweep, memory_sweep_kb, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_core::Variant;
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::profiles;

fn main() {
    // Y = with DE (paper default), N = single flag (LTR stays on, as the
    // paper enables LTR by default from §V-D onwards).
    let lineup = [
        AlgoSpec::Ltc(Variant::FULL),
        AlgoSpec::Ltc(Variant::LONG_TAIL_ONLY),
    ];
    let names = vec!["Y (with DE)".to_string(), "N (single flag)".to_string()];
    let stream = dataset(profiles::network_like());
    let oracle = Oracle::build(&stream);
    let weights = Weights::PERSISTENT;
    let k = k_sweep(&[1000])[0].1;
    let truth = oracle.top_k(k, &weights);

    let mut table = Table::new(
        "fig11",
        "Deviation Eliminator: precision vs memory (Network, 0:1, k=1000)",
        "memory (KB)",
        names,
    );
    for kb in memory_sweep_kb(&[10, 20, 30, 40, 50]) {
        let p = sweep_point(
            &lineup,
            &stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        table.push_row(kb as f64, p.precision);
    }
    emit(&table);
}
