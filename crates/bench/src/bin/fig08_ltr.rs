//! Figure 8: effect of **Long-tail Replacement** (optimized "Y" vs basic
//! "N"), on the Network dataset.
//!
//! * 8(a): precision vs memory (50–300 KB), α=1, β=1, k=1000;
//! * 8(b): precision vs weighting (1:0, 1:1, 10:1, 1:10, 0:1) at 50 KB.

use ltc_bench::{dataset, emit, k_sweep, memory_sweep_kb, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_core::Variant;
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::profiles;

fn main() {
    // Y = with LTR (paper default), N = without (Deviation Eliminator only).
    let lineup = [
        AlgoSpec::Ltc(Variant::FULL),
        AlgoSpec::Ltc(Variant::DEVIATION_ONLY),
    ];
    let names = vec!["Y (with LTR)".to_string(), "N (without)".to_string()];
    let stream = dataset(profiles::network_like());
    let oracle = Oracle::build(&stream);
    let k = k_sweep(&[1000])[0].1;

    // (a): vs memory at α:β = 1:1.
    let weights = Weights::BALANCED;
    let truth = oracle.top_k(k, &weights);
    let mut table_a = Table::new(
        "fig08a",
        "Long-tail Replacement: precision vs memory (Network, 1:1, k=1000)",
        "memory (KB)",
        names.clone(),
    );
    for kb in memory_sweep_kb(&[50, 100, 150, 200, 250, 300]) {
        let p = sweep_point(
            &lineup,
            &stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        table_a.push_row(kb as f64, p.precision);
    }
    emit(&table_a);

    // (b): vs α:β at 50 KB. X encoded as the sweep index; labels printed.
    let mut table_b = Table::new(
        "fig08b",
        "Long-tail Replacement: precision vs parameters (Network, 50 KB) — x = index into [1:0, 1:1, 10:1, 1:10, 0:1]",
        "weighting #",
        names,
    );
    let kb = memory_sweep_kb(&[50])[0];
    for (i, ratio) in ["1:0", "1:1", "10:1", "1:10", "0:1"].iter().enumerate() {
        let weights: Weights = ratio.parse().expect("valid ratio");
        let truth = oracle.top_k(k, &weights);
        let p = sweep_point(
            &lineup,
            &stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        eprintln!("  (weighting {ratio})");
        table_b.push_row(i as f64, p.precision);
    }
    emit(&table_b);
}
