//! Ablation (paper technical-report appendix): the effect of bucket width
//! `d` at fixed total memory. The paper reports `d = 8` as the sweet spot
//! and uses it as the default (§V-C).
//!
//! Fixed memory ⇒ `w·d` constant: wider buckets mean fewer, longer buckets —
//! better protection against unlucky hashing, more candidates sharing one
//! Significance-Decrementing pool.

use ltc_bench::{dataset, emit, memory_sweep_kb};
use ltc_common::{MemoryBudget, Weights};
use ltc_core::{Ltc, LtcConfig, Variant};
use ltc_eval::algorithms::{Algorithm, BuildParams};
use ltc_eval::{run_algorithm, Oracle, Table};
use ltc_workloads::profiles;

fn build(d: usize, params: &BuildParams) -> Box<dyn Algorithm> {
    Box::new(Ltc::new(
        LtcConfig::with_memory(params.budget, d)
            .weights(params.weights)
            .records_per_period(params.records_per_period)
            .variant(Variant::FULL)
            .seed(params.seed)
            .build(),
    ))
}

fn main() {
    let stream = dataset(profiles::network_like());
    let oracle = Oracle::build(&stream);
    let weights = Weights::BALANCED;
    let k = 100;
    let truth = oracle.top_k(k, &weights);
    let ds = [1usize, 2, 4, 8, 16, 32];

    let mut p_table = Table::new(
        "ablation_d_precision",
        "Precision vs bucket width d (Network, 1:1, k=100)",
        "memory (KB)",
        ds.iter().map(|d| format!("d={d}")).collect(),
    );
    let mut a_table = Table::new(
        "ablation_d_are",
        "ARE vs bucket width d (Network, 1:1, k=100)",
        "memory (KB)",
        ds.iter().map(|d| format!("d={d}")).collect(),
    );
    for kb in memory_sweep_kb(&[10, 25, 50, 100]) {
        let mut p_row = Vec::new();
        let mut a_row = Vec::new();
        for &d in &ds {
            let params = BuildParams {
                budget: MemoryBudget::kilobytes(kb),
                k,
                weights,
                records_per_period: stream.layout.records_per_period().unwrap(),
                seed: 7,
            };
            let mut alg = build(d, &params);
            let outcome = run_algorithm(alg.as_mut(), &stream, k);
            p_row.push(outcome.tie_aware_precision(&truth, &oracle, &weights));
            a_row.push(outcome.are(k, &oracle, &weights));
            eprintln!(
                "  [d={d:>2}] {kb:>4} KB  precision {:.3}  ARE {:.3e}",
                p_row.last().unwrap(),
                a_row.last().unwrap()
            );
        }
        p_table.push_row(kb as f64, p_row);
        a_table.push_row(kb as f64, a_row);
    }
    emit(&p_table);
    emit(&a_table);
}
