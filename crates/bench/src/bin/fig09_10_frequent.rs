//! Figures 9 and 10: precision and ARE on finding **frequent** items
//! (α=1, β=0), LTC vs SS/LC/MG/CM/CU/Count.
//!
//! * 9(a)–(c) / 10(a)–(c): vs memory (5–50 KB), k=100, three datasets;
//! * 9(d) / 10(d): vs k (100–1000), 100 KB, Network.
//!
//! Both figures come from the same runs, so one binary emits all eight
//! tables. `LTC_SCALE=n` shrinks datasets, budgets and k together.

use ltc_bench::{dataset, emit, memory_sweep_kb, run_k_sweep, run_memory_sweep};
use ltc_common::Weights;
use ltc_eval::algorithms::AlgoSpec;
use ltc_workloads::profiles;

fn main() {
    let weights = Weights::FREQUENT;
    let lineup = AlgoSpec::frequent_lineup();
    let names: Vec<String> = ["LTC", "SS", "LC", "MG", "CM", "CU", "Count"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let kbs = memory_sweep_kb(&[5, 10, 20, 35, 50]);

    for (sub, spec) in ["a", "b", "c"].iter().zip(profiles::all()) {
        let stream = dataset(spec);
        let (p, a) = run_memory_sweep(
            &lineup,
            &names,
            &stream,
            &kbs,
            100,
            weights,
            &format!("fig09{sub}"),
            &format!("fig10{sub}"),
            &format!("frequent items, vs memory ({})", spec.name),
        );
        emit(&p);
        emit(&a);
    }

    let stream = dataset(profiles::network_like());
    let kb = memory_sweep_kb(&[100])[0];
    let (p, a) = run_k_sweep(
        &lineup,
        &names,
        &stream,
        kb,
        &[100, 250, 500, 750, 1000],
        weights,
        "fig09d",
        "fig10d",
        "frequent items, vs k (Network)",
    );
    emit(&p);
    emit(&a);
}
