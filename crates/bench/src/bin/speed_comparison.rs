//! Insertion-throughput comparison (the paper's "high speed" claim, §V):
//! million insertions per second for every algorithm on every dataset, at
//! the 50 KB default budget, measured on the live stream replay.
//!
//! Criterion microbenches (`cargo bench -p ltc-bench`) give the
//! statistically rigorous per-operation numbers; this binary gives the
//! end-to-end table across all algorithms and datasets in one shot.

use ltc_bench::{dataset, emit, memory_sweep_kb, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::profiles;

fn main() {
    let kb = memory_sweep_kb(&[50])[0];
    let k = 100;

    for (lineup, weights, names, id) in [
        (
            AlgoSpec::frequent_lineup(),
            Weights::FREQUENT,
            vec!["LTC", "SS", "LC", "MG", "CM", "CU", "Count"],
            "speed_frequent",
        ),
        (
            AlgoSpec::persistent_lineup(),
            Weights::PERSISTENT,
            vec!["LTC", "PIE", "CM+BF", "CU+BF"],
            "speed_persistent",
        ),
        (
            AlgoSpec::significant_lineup(),
            Weights::BALANCED,
            vec!["LTC", "CM-SIG", "CU-SIG"],
            "speed_significant",
        ),
    ] {
        let mut table = Table::new(
            id,
            format!("Insertion throughput (Mops) at {kb} KB"),
            "dataset #",
            names.iter().map(|s| s.to_string()).collect(),
        );
        for (i, spec) in profiles::all().into_iter().enumerate() {
            let stream = dataset(spec);
            let oracle = Oracle::build(&stream);
            let truth = oracle.top_k(k, &weights);
            let point = sweep_point(
                &lineup,
                &stream,
                &oracle,
                &truth,
                MemoryBudget::kilobytes(kb),
                k,
                weights,
                7,
            );
            eprintln!("  (dataset {} = {})", i, spec.name);
            table.push_row(i as f64, point.mops);
        }
        emit(&table);
    }
}
