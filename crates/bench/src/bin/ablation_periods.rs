//! Ablation (paper technical-report appendix): varying the **number of
//! periods** `T` on the persistent-items task. The paper reports LTC keeps
//! the highest precision and lowest ARE "for all settings of the number of
//! periods".

use ltc_bench::{emit, memory_sweep_kb, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::{generate, profiles};

fn main() {
    let weights = Weights::PERSISTENT;
    let lineup = AlgoSpec::persistent_lineup();
    let names: Vec<String> = ["LTC", "PIE", "CM+BF", "CU+BF"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let k = 100;
    let kb = memory_sweep_kb(&[100])[0];

    let mut p_table = Table::new(
        "ablation_t_precision",
        format!("Precision vs number of periods T (Network, 0:1, k=100, {kb} KB)"),
        "periods T",
        names.clone(),
    );
    let mut a_table = Table::new(
        "ablation_t_are",
        format!("ARE vs number of periods T (Network, 0:1, k=100, {kb} KB)"),
        "periods T",
        names,
    );
    for t in [100u64, 250, 500, 1000, 2000] {
        let spec = profiles::network_like()
            .scaled_down(ltc_bench::scale())
            .with_periods(t);
        eprintln!("[gen] Network with T={t}");
        let stream = generate(&spec);
        let oracle = Oracle::build(&stream);
        let truth = oracle.top_k(k, &weights);
        let point = sweep_point(
            &lineup,
            &stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        p_table.push_row(t as f64, point.precision);
        a_table.push_row(t as f64, point.are);
    }
    emit(&p_table);
    emit(&a_table);
}
