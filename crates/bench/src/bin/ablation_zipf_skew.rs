//! Ablation (paper technical-report appendix): synthetic Zipf streams with
//! varying skew γ. Long-tail Replacement leans on the long-tail assumption
//! (§III-D, "Shortcoming"), so flat streams (γ→0.5) should narrow — but not
//! reverse — LTC's margin.

use ltc_bench::{emit, memory_sweep_kb, scale, sweep_point};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::AlgoSpec;
use ltc_eval::{Oracle, Table};
use ltc_workloads::{generate, StreamSpec};

fn main() {
    let weights = Weights::BALANCED;
    let lineup = AlgoSpec::significant_lineup();
    let names: Vec<String> = ["LTC", "CM-SIG", "CU-SIG"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let k = 100;
    let kb = memory_sweep_kb(&[50])[0];
    let s = scale();

    let mut p_table = Table::new(
        "ablation_skew_precision",
        format!("Precision vs Zipf skew γ (synthetic, 1:1, k=100, {kb} KB)"),
        "skew γ",
        names.clone(),
    );
    let mut a_table = Table::new(
        "ablation_skew_are",
        format!("ARE vs Zipf skew γ (synthetic, 1:1, k=100, {kb} KB)"),
        "skew γ",
        names,
    );
    for skew in [0.6f64, 0.8, 1.0, 1.2, 1.5] {
        let spec = StreamSpec {
            name: "zipf-sweep",
            total_records: (10_000_000 / s).max(10_000),
            distinct_items: (1_000_000 / s).max(1_000),
            periods: 500,
            zipf_skew: skew,
            burst_fraction: 0.3,
            periodic_fraction: 0.1,
            seed: 1_234,
        };
        eprintln!("[gen] zipf γ={skew}");
        let stream = generate(&spec);
        let oracle = Oracle::build(&stream);
        let truth = oracle.top_k(k, &weights);
        let point = sweep_point(
            &lineup,
            &stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        p_table.push_row(skew, point.precision);
        a_table.push_row(skew, point.are);
    }
    emit(&p_table);
    emit(&a_table);
}
