//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*` / `ablation_*` binary follows the same pattern: build the
//! datasets at a chosen scale, sweep a parameter, run a line-up of
//! algorithms, and print one [`ltc_eval::Table`] per sub-figure (markdown to
//! stdout, JSON to `target/experiments/<id>.json` for EXPERIMENTS.md).
//!
//! **Scale.** The paper's streams are 1.5M–10M records. Full scale
//! regenerates faithfully but takes minutes per figure; `LTC_SCALE` divides
//! every dataset dimension for quick looks:
//!
//! ```sh
//! cargo run --release -p ltc-bench --bin fig09_freq_precision           # full
//! LTC_SCALE=20 cargo run --release -p ltc-bench --bin fig09_freq_precision
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ltc_common::{Estimate, MemoryBudget, Weights};
use ltc_eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
use ltc_eval::{run_algorithm, Oracle, Table};
use ltc_workloads::{generate, GeneratedStream, StreamSpec};
use std::io::Write as _;
use std::path::PathBuf;

/// The dataset down-scale factor from `LTC_SCALE` (default 1 = full size).
pub fn scale() -> u64 {
    std::env::var("LTC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Generate `spec` at the configured scale, logging progress to stderr.
///
/// The **period count is preserved** when scaling: persistency is bounded
/// by `T`, so shrinking `T` compresses the persistency range and creates
/// top-k ties that do not exist at the paper's scale. Shrinking records and
/// distinct items while keeping `T` preserves the metric's dynamic range.
pub fn dataset(spec: StreamSpec) -> GeneratedStream {
    let scaled = spec.scaled_down(scale()).with_periods(spec.periods);
    eprintln!(
        "[gen] {}: {} records, {} periods (scale 1/{})",
        scaled.name,
        scaled.total_records,
        scaled.periods,
        scale()
    );
    generate(&scaled)
}

/// One sweep point: run every algorithm in `lineup` on `stream` at `budget`
/// and return `(precision, are)` per algorithm, in lineup order.
pub struct SweepPoint {
    /// Precision per algorithm.
    pub precision: Vec<f64>,
    /// ARE per algorithm.
    pub are: Vec<f64>,
    /// Insertion Mops per algorithm.
    pub mops: Vec<f64>,
    /// Algorithm names, lineup order.
    pub names: Vec<&'static str>,
}

/// Run a full line-up at one `(budget, k, weights)` setting.
#[allow(clippy::too_many_arguments)] // experiment axes, mirrors the paper's setup
pub fn sweep_point(
    lineup: &[AlgoSpec],
    stream: &GeneratedStream,
    oracle: &Oracle,
    truth: &[Estimate],
    budget: MemoryBudget,
    k: usize,
    weights: Weights,
    seed: u64,
) -> SweepPoint {
    let params = BuildParams {
        budget,
        k,
        weights,
        records_per_period: stream.layout.records_per_period().unwrap(),
        seed,
    };
    let mut point = SweepPoint {
        precision: Vec::new(),
        are: Vec::new(),
        mops: Vec::new(),
        names: Vec::new(),
    };
    for &spec in lineup {
        let mut alg = build_algorithm(spec, &params);
        let outcome = run_algorithm(alg.as_mut(), stream, k);
        point.names.push(outcome.name);
        point
            .precision
            .push(outcome.tie_aware_precision(truth, oracle, &weights));
        point.are.push(outcome.are(k, oracle, &weights));
        point.mops.push(outcome.mops());
        eprintln!(
            "  [{:>7}] {:>8} KB  precision {:.3}  ARE {:.3e}  {:.1} Mops",
            outcome.name,
            budget.as_bytes() / 1024,
            point.precision.last().unwrap(),
            point.are.last().unwrap(),
            point.mops.last().unwrap()
        );
    }
    point
}

/// Print a table as markdown and persist it as JSON under
/// `target/experiments/`.
pub fn emit(table: &Table) {
    println!("{}", table.to_markdown());
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", table.id));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(serde_json::to_string_pretty(table).unwrap().as_bytes());
            eprintln!("[emit] wrote {}", path.display());
        }
    }
}

/// The memory sweep (KB) used by a figure, shrunk when `LTC_SCALE` shrinks
/// the datasets so the tight-memory regime is preserved.
pub fn memory_sweep_kb(paper_points: &[usize]) -> Vec<usize> {
    let s = scale() as usize;
    paper_points.iter().map(|&kb| (kb / s).max(1)).collect()
}

/// Run `lineup` over a memory sweep on one dataset and build the paired
/// precision/ARE tables (the paper always plots both for the same runs:
/// Figs. 9+10, 12+13, 14+15).
#[allow(clippy::too_many_arguments)]
pub fn run_memory_sweep(
    lineup: &[AlgoSpec],
    names: &[String],
    stream: &GeneratedStream,
    kbs: &[usize],
    k: usize,
    weights: Weights,
    precision_id: &str,
    are_id: &str,
    title: &str,
) -> (Table, Table) {
    let oracle = Oracle::build(stream);
    let truth = oracle.top_k(k, &weights);
    let mut p_table = Table::new(
        precision_id,
        format!("Precision, {title}"),
        "memory (KB)",
        names.to_vec(),
    );
    let mut a_table = Table::new(
        are_id,
        format!("ARE, {title}"),
        "memory (KB)",
        names.to_vec(),
    );
    for &kb in kbs {
        let point = sweep_point(
            lineup,
            stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        p_table.push_row(kb as f64, point.precision);
        a_table.push_row(kb as f64, point.are);
    }
    (p_table, a_table)
}

/// Run `lineup` over a k sweep at one budget and build the paired
/// precision/ARE tables ("(d)" subfigures).
#[allow(clippy::too_many_arguments)]
pub fn run_k_sweep(
    lineup: &[AlgoSpec],
    names: &[String],
    stream: &GeneratedStream,
    kb: usize,
    paper_ks: &[usize],
    weights: Weights,
    precision_id: &str,
    are_id: &str,
    title: &str,
) -> (Table, Table) {
    let oracle = Oracle::build(stream);
    let mut p_table = Table::new(
        precision_id,
        format!("Precision, {title}"),
        "k",
        names.to_vec(),
    );
    let mut a_table = Table::new(are_id, format!("ARE, {title}"), "k", names.to_vec());
    for (label_k, k) in k_sweep(paper_ks) {
        let truth = oracle.top_k(k, &weights);
        let point = sweep_point(
            lineup,
            stream,
            &oracle,
            &truth,
            MemoryBudget::kilobytes(kb),
            k,
            weights,
            7,
        );
        p_table.push_row(label_k as f64, point.precision);
        a_table.push_row(label_k as f64, point.are);
    }
    (p_table, a_table)
}

/// The k sweep for "vs k" subfigures: at reduced scale both the memory
/// budget and k shrink together (the regime that matters is cells-per-
/// reported-item and items-per-cell); rows are labelled with the *paper's*
/// k. Returns `(paper_k_label, effective_k)` pairs.
pub fn k_sweep(paper_points: &[usize]) -> Vec<(usize, usize)> {
    let s = scale() as usize;
    paper_points.iter().map(|&k| (k, (k / s).max(10))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // Env-var free test context.
        std::env::remove_var("LTC_SCALE");
        assert_eq!(scale(), 1);
    }

    #[test]
    fn memory_sweep_scales_and_floors() {
        std::env::remove_var("LTC_SCALE");
        assert_eq!(memory_sweep_kb(&[5, 10, 50]), vec![5, 10, 50]);
    }
}
