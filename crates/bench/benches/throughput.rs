//! Criterion microbenchmarks: per-record insertion cost of every algorithm
//! on an i.i.d. Zipf stream (the statistically rigorous counterpart of the
//! `speed_comparison` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
use ltc_workloads::generator::zipf_samples;

const RECORDS: usize = 100_000;
const PER_PERIOD: u64 = 10_000;

fn params(weights: Weights) -> BuildParams {
    BuildParams {
        budget: MemoryBudget::kilobytes(50),
        k: 100,
        weights,
        records_per_period: PER_PERIOD,
        seed: 7,
    }
}

fn bench_inserts(c: &mut Criterion) {
    let stream = zipf_samples(RECORDS, 100_000, 1.0, 42);
    let mut group = c.benchmark_group("insert_100k_zipf");
    group.throughput(Throughput::Elements(RECORDS as u64));
    group.sample_size(10);

    let cases: Vec<(&str, AlgoSpec, Weights)> = vec![
        (
            "ltc",
            AlgoSpec::Ltc(ltc_core::Variant::FULL),
            Weights::BALANCED,
        ),
        (
            "ltc_basic",
            AlgoSpec::Ltc(ltc_core::Variant::BASIC),
            Weights::BALANCED,
        ),
        ("space_saving", AlgoSpec::SpaceSaving, Weights::FREQUENT),
        ("lossy_counting", AlgoSpec::LossyCounting, Weights::FREQUENT),
        ("misra_gries", AlgoSpec::MisraGries, Weights::FREQUENT),
        ("cm_topk", AlgoSpec::CmTopK, Weights::FREQUENT),
        ("cu_topk", AlgoSpec::CuTopK, Weights::FREQUENT),
        ("count_topk", AlgoSpec::CountTopK, Weights::FREQUENT),
        ("cm_persistent", AlgoSpec::CmPersistent, Weights::PERSISTENT),
        ("cu_persistent", AlgoSpec::CuPersistent, Weights::PERSISTENT),
        ("pie", AlgoSpec::Pie, Weights::PERSISTENT),
        ("cm_significant", AlgoSpec::CmSignificant, Weights::BALANCED),
        ("cu_significant", AlgoSpec::CuSignificant, Weights::BALANCED),
    ];

    for (name, spec, weights) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || build_algorithm(spec, &params(weights)),
                |mut alg| {
                    for (i, &id) in stream.iter().enumerate() {
                        alg.insert(id);
                        if (i + 1) % PER_PERIOD as usize == 0 {
                            alg.end_period();
                        }
                    }
                    alg
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    use ltc_hash::{bob_hash_bytes, bob_hash_u64};
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(1));
    group.bench_function("bob_hash_u64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            std::hint::black_box(bob_hash_u64(k, 7))
        })
    });
    group.bench_function("bob_hash_16_bytes", |b| {
        let data = [0xabu8; 16];
        b.iter(|| std::hint::black_box(bob_hash_bytes(&data, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_hashing);
criterion_main!(benches);
