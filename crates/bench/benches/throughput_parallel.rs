//! Criterion microbenchmarks for the batched and parallel ingestion paths:
//! scalar `insert` vs `insert_batch` on a single table, and the
//! `ParallelLtc` runtime across thread counts. The `pipeline_speed` binary
//! is the reproducible sweep that writes `BENCH_pipeline.json`; this bench
//! is the statistically careful spot-check of the same paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ltc_common::{StreamProcessor, Weights};
use ltc_core::{Ltc, LtcConfig, ParallelLtc, ShardedLtc, Variant};
use ltc_workloads::generator::zipf_samples;

const RECORDS: usize = 100_000;
const PER_PERIOD: usize = 10_000;

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(400)
        .cells_per_bucket(8)
        .records_per_period(PER_PERIOD as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build()
}

fn bench_batch_vs_scalar(c: &mut Criterion) {
    let stream = zipf_samples(RECORDS, 100_000, 1.0, 42);
    let mut group = c.benchmark_group("ingest_100k_zipf");
    group.throughput(Throughput::Elements(RECORDS as u64));
    group.sample_size(10);

    group.bench_function("ltc_scalar", |b| {
        b.iter_batched(
            || Ltc::new(config()),
            |mut ltc| {
                for chunk in stream.chunks(PER_PERIOD) {
                    for &id in chunk {
                        ltc.insert(id);
                    }
                    ltc.end_period();
                }
                ltc
            },
            BatchSize::LargeInput,
        )
    });
    for batch in [64usize, 256, 1024] {
        group.bench_function(format!("ltc_batch_{batch}"), |b| {
            b.iter_batched(
                || Ltc::new(config()),
                |mut ltc| {
                    for period in stream.chunks(PER_PERIOD) {
                        for chunk in period.chunks(batch) {
                            ltc.insert_batch(chunk);
                        }
                        ltc.end_period();
                    }
                    ltc
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.bench_function("sharded4_batch_256", |b| {
        b.iter_batched(
            || ShardedLtc::new(config(), 4),
            |mut sharded| {
                for period in stream.chunks(PER_PERIOD) {
                    for chunk in period.chunks(256) {
                        sharded.insert_batch(chunk);
                    }
                    sharded.end_period();
                }
                sharded
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_parallel_runtime(c: &mut Criterion) {
    let stream = zipf_samples(RECORDS, 100_000, 1.0, 42);
    let mut group = c.benchmark_group("parallel_100k_zipf");
    group.throughput(Throughput::Elements(RECORDS as u64));
    group.sample_size(10);

    for threads in [1usize, 2, 4] {
        group.bench_function(format!("pipeline_{threads}t"), |b| {
            b.iter_batched(
                || ParallelLtc::with_batch_size(config(), threads, 256),
                |mut pipeline| {
                    for period in stream.chunks(PER_PERIOD) {
                        pipeline.insert_batch(period);
                        pipeline.end_period().expect("no shard faults");
                    }
                    // Reassembly joins the workers, so thread teardown is
                    // inside the measurement for every thread count alike.
                    pipeline.into_sharded().expect("no shard faults")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_scalar, bench_parallel_runtime);
criterion_main!(benches);
