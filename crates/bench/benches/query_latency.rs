//! Criterion microbenchmarks: top-k query latency after a loaded stream.
//!
//! The paper queries once at the end of each experiment; the interesting
//! contrast is LTC's O(cells) table scan vs the heap-backed sketches'
//! O(k log k) vs PIE's full joint decode.

use criterion::{criterion_group, criterion_main, Criterion};
use ltc_common::{MemoryBudget, Weights};
use ltc_eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
use ltc_workloads::generator::zipf_samples;

fn loaded(spec: AlgoSpec, weights: Weights) -> Box<dyn ltc_eval::Algorithm> {
    let params = BuildParams {
        budget: MemoryBudget::kilobytes(50),
        k: 100,
        weights,
        records_per_period: 5_000,
        seed: 7,
    };
    let stream = zipf_samples(50_000, 50_000, 1.0, 11);
    let mut alg = build_algorithm(spec, &params);
    for (i, &id) in stream.iter().enumerate() {
        alg.insert(id);
        if (i + 1) % 5_000 == 0 {
            alg.end_period();
        }
    }
    alg.finish();
    alg
}

fn bench_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_k_100");
    group.sample_size(20);
    for (name, spec, weights) in [
        (
            "ltc",
            AlgoSpec::Ltc(ltc_core::Variant::FULL),
            Weights::BALANCED,
        ),
        ("space_saving", AlgoSpec::SpaceSaving, Weights::FREQUENT),
        ("cu_topk", AlgoSpec::CuTopK, Weights::FREQUENT),
        ("cu_persistent", AlgoSpec::CuPersistent, Weights::PERSISTENT),
        ("cu_significant", AlgoSpec::CuSignificant, Weights::BALANCED),
        ("pie_decode", AlgoSpec::Pie, Weights::PERSISTENT),
    ] {
        let alg = loaded(spec, weights);
        group.bench_function(name, |b| b.iter(|| std::hint::black_box(alg.top_k(100))));
    }
    group.finish();
}

fn bench_point_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_estimate");
    let alg = loaded(AlgoSpec::Ltc(ltc_core::Variant::FULL), Weights::BALANCED);
    group.bench_function("ltc_hit_or_miss", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = id.wrapping_add(0x9e37_79b9);
            std::hint::black_box(alg.estimate(id))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_top_k, bench_point_query);
criterion_main!(benches);
