//! The Space-Time Bloom Filter: PIE's per-period recording structure.
//!
//! An array of cells; each cell carries a fingerprint of the item that set
//! it plus one fountain-code symbol of that item's id. Two different items
//! hashing to the same cell within one period *collide*: the cell is marked
//! unusable for decoding (PIE's design — better no evidence than wrong
//! evidence). Re-insertions of the same item are idempotent.

use crate::fountain::FountainCode;
use ltc_common::{ItemId, MemoryUsage};
use ltc_hash::{Fingerprint, HashFamily, SeededHash};

/// Accounting bytes per STBF cell: 12-bit fingerprint + 16-bit symbol +
/// 2 state bits, rounded to 4 bytes (mirrors the paper's 4-byte counters).
pub const STBF_CELL_BYTES: usize = 4;

/// One cell of a Space-Time Bloom Filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StbfCell {
    /// Nothing recorded this period.
    #[default]
    Empty,
    /// Exactly one distinct item (by fingerprint) recorded.
    Occupied {
        /// Fingerprint tag of the recorded item.
        fp: u32,
        /// Fountain symbol of the item id for this period.
        symbol: u16,
    },
    /// Two or more distinct items hashed here: unusable for decoding.
    Collided,
}

/// A per-period Space-Time Bloom Filter.
#[derive(Debug, Clone)]
pub struct Stbf {
    cells: Vec<StbfCell>,
    hashes: Vec<SeededHash>,
    fingerprint: Fingerprint,
    code: FountainCode,
    /// The period this filter records (drives the symbol index).
    period: u32,
}

impl Stbf {
    /// A filter of `cells` cells with `probes` hash positions per item,
    /// recording `period`. All filters of one PIE instance must share
    /// `seed` so cell positions align across periods.
    pub fn new(cells: usize, probes: usize, seed: u64, period: u32) -> Self {
        assert!(cells > 0, "STBF needs at least one cell");
        assert!(probes > 0, "STBF needs at least one probe");
        Self {
            cells: vec![StbfCell::Empty; cells],
            hashes: HashFamily::new(seed).members(probes as u32),
            fingerprint: Fingerprint::new(seed as u32 ^ 0xf1f1, 12),
            code: FountainCode::new(seed as u32 ^ 0xc0de),
            period,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the filter has zero cells (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The period this filter records.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// The cell positions `id` probes.
    pub fn positions<'a>(&'a self, id: ItemId) -> impl Iterator<Item = usize> + 'a {
        let n = self.cells.len();
        self.hashes.iter().map(move |h| h.index(id, n))
    }

    /// Record one occurrence of `id` (idempotent within the period).
    pub fn insert(&mut self, id: ItemId) {
        let fp = self.fingerprint.tag(id);
        let symbol = self.code.encode(id, self.period);
        let n = self.cells.len();
        for h in 0..self.hashes.len() {
            let pos = self.hashes[h].index(id, n);
            self.cells[pos] = match self.cells[pos] {
                StbfCell::Empty => StbfCell::Occupied { fp, symbol },
                StbfCell::Occupied { fp: old, .. } if old == fp => self.cells[pos],
                StbfCell::Occupied { .. } => StbfCell::Collided,
                StbfCell::Collided => StbfCell::Collided,
            };
        }
    }

    /// Read cell `pos`.
    pub fn cell(&self, pos: usize) -> StbfCell {
        self.cells[pos]
    }

    /// Iterate `(position, fp, symbol)` over clean occupied cells.
    pub fn clean_cells(&self) -> impl Iterator<Item = (usize, u32, u16)> + '_ {
        self.cells.iter().enumerate().filter_map(|(i, c)| match c {
            StbfCell::Occupied { fp, symbol } => Some((i, *fp, *symbol)),
            _ => None,
        })
    }

    /// Fraction of cells marked collided (diagnostic: decoding feasibility).
    pub fn collision_rate(&self) -> f64 {
        let collided = self
            .cells
            .iter()
            .filter(|c| matches!(c, StbfCell::Collided))
            .count();
        collided as f64 / self.cells.len() as f64
    }

    /// The fingerprint function (shared across an experiment).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The fountain code (shared across an experiment).
    pub fn code(&self) -> FountainCode {
        self.code
    }
}

impl MemoryUsage for Stbf {
    fn memory_bytes(&self) -> usize {
        self.cells.len() * STBF_CELL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent() {
        let mut f = Stbf::new(64, 2, 7, 0);
        f.insert(5);
        let snapshot: Vec<StbfCell> = (0..64).map(|i| f.cell(i)).collect();
        f.insert(5);
        let again: Vec<StbfCell> = (0..64).map(|i| f.cell(i)).collect();
        assert_eq!(snapshot, again, "re-insert changed the filter");
        assert_eq!(f.collision_rate(), 0.0);
    }

    #[test]
    fn distinct_items_same_cell_collide() {
        // 1 cell: everything collides once two distinct items arrive.
        let mut f = Stbf::new(1, 1, 7, 0);
        f.insert(1);
        assert!(matches!(f.cell(0), StbfCell::Occupied { .. }));
        f.insert(2);
        assert_eq!(f.cell(0), StbfCell::Collided);
        // Collided is absorbing.
        f.insert(1);
        assert_eq!(f.cell(0), StbfCell::Collided);
    }

    #[test]
    fn clean_cells_expose_symbols() {
        let mut f = Stbf::new(256, 1, 9, 3);
        f.insert(77);
        let clean: Vec<_> = f.clean_cells().collect();
        assert_eq!(clean.len(), 1);
        let (pos, fp, symbol) = clean[0];
        assert_eq!(pos, f.positions(77).next().unwrap());
        assert_eq!(fp, f.fingerprint().tag(77));
        assert_eq!(symbol, f.code().encode(77, 3));
    }

    #[test]
    fn positions_stable_across_periods() {
        // Same seed → same cell indices in every period's filter: the
        // property joint decoding relies on.
        let f0 = Stbf::new(512, 2, 42, 0);
        let f9 = Stbf::new(512, 2, 42, 9);
        for id in [1u64, 999, 123_456] {
            let a: Vec<usize> = f0.positions(id).collect();
            let b: Vec<usize> = f9.positions(id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn memory_charged_per_cell() {
        let f = Stbf::new(1000, 2, 1, 0);
        assert_eq!(f.memory_bytes(), 4000);
    }
}
