//! The PIE algorithm: one STBF per period + joint offline decoding.

use crate::fountain::SOURCE_BLOCKS;
use crate::stbf::{Stbf, STBF_CELL_BYTES};
use ltc_common::{
    top_k_of, Estimate, ItemId, MemoryBudget, MemoryUsage, SignificanceQuery, StreamProcessor,
};
use ltc_hash::{FxHashMap, FxHashSet};

/// PIE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PieConfig {
    /// Cells in each period's STBF.
    pub cells_per_period: usize,
    /// Hash positions each item probes per period.
    pub probes: usize,
    /// Hash/fingerprint/code seed (shared by all periods).
    pub seed: u64,
}

impl PieConfig {
    /// Size the **per-period** filter for a memory budget (the paper grants
    /// PIE `T×` the budget of the other algorithms — i.e. one full budget
    /// per period; pass that per-period budget here).
    pub fn with_memory_per_period(budget: MemoryBudget, probes: usize, seed: u64) -> Self {
        Self {
            cells_per_period: budget.entries(STBF_CELL_BYTES),
            probes,
            seed,
        }
    }
}

/// The PIE structure. Feed records with [`insert`](Pie::insert), close
/// periods with [`end_period`](Pie::end_period), then [`decode`](Pie::decode)
/// (or the [`SignificanceQuery`] methods, which decode on the fly) to
/// recover persistent items.
///
/// # Examples
///
/// ```
/// use ltc_pie::{Pie, PieConfig};
///
/// let mut pie = Pie::new(PieConfig { cells_per_period: 1024, probes: 2, seed: 1 });
/// for _period in 0..8 {
///     pie.insert(42); // every period → decodable, persistency 8
///     pie.end_period();
/// }
/// let decoded = pie.decode();
/// assert!(decoded.contains(&(42, 8)));
/// ```
#[derive(Debug, Clone)]
pub struct Pie {
    config: PieConfig,
    history: Vec<Stbf>,
    current: Stbf,
}

impl Pie {
    /// Create a PIE instance.
    pub fn new(config: PieConfig) -> Self {
        Self {
            config,
            history: Vec::new(),
            current: Stbf::new(config.cells_per_period, config.probes, config.seed, 0),
        }
    }

    /// Completed periods so far.
    pub fn periods_completed(&self) -> usize {
        self.history.len()
    }

    /// Record one occurrence of `id` in the current period.
    pub fn insert(&mut self, id: ItemId) {
        self.current.insert(id);
    }

    /// Close the current period and open the next.
    pub fn end_period(&mut self) {
        let next_period = self.history.len() as u32 + 1;
        let fresh = Stbf::new(
            self.config.cells_per_period,
            self.config.probes,
            self.config.seed,
            next_period,
        );
        self.history
            .push(std::mem::replace(&mut self.current, fresh));
    }

    /// Joint decode over all recorded periods: returns `(id, persistency
    /// estimate)` for every item whose id could be reconstructed.
    ///
    /// Cells are grouped by `(position, fingerprint)`; a group's symbols
    /// across periods form a GF(2) system which — when solvable and
    /// *verified* (fingerprint and probe positions re-checked against the
    /// decoded id) — yields the id. The persistency estimate is the number
    /// of distinct periods in which any of the item's cells was clean.
    pub fn decode(&self) -> Vec<(ItemId, u64)> {
        // (cell position, fingerprint) → [(period, symbol)].
        let mut groups: FxHashMap<(u32, u32), Vec<(u32, u16)>> = FxHashMap::default();
        for filter in self.history.iter().chain(std::iter::once(&self.current)) {
            let period = filter.period();
            for (pos, fp, symbol) in filter.clean_cells() {
                groups
                    .entry((pos as u32, fp))
                    .or_default()
                    .push((period, symbol));
            }
        }

        let fingerprint = self.current.fingerprint();
        let code = self.current.code();
        let mut periods_of: FxHashMap<ItemId, FxHashSet<u32>> = FxHashMap::default();
        for ((pos, fp), symbols) in &groups {
            // Fewer symbols than source blocks can never span GF(2)^4.
            if symbols.len() < SOURCE_BLOCKS {
                continue;
            }
            let Some(id) = code.decode(symbols) else {
                continue;
            };
            // Verification: the decoded id must actually produce this
            // fingerprint and probe this cell; otherwise the group was
            // cross-item noise that happened to be solvable.
            if fingerprint.tag(id) != *fp {
                continue;
            }
            if !self.current.positions(id).any(|p| p as u32 == *pos) {
                continue;
            }
            let entry = periods_of.entry(id).or_default();
            for &(period, _) in symbols {
                entry.insert(period);
            }
        }

        periods_of
            .into_iter()
            .map(|(id, periods)| (id, periods.len() as u64))
            .collect()
    }
}

impl StreamProcessor for Pie {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        Pie::insert(self, id);
    }

    fn end_period(&mut self) {
        Pie::end_period(self);
    }

    fn name(&self) -> &'static str {
        "PIE"
    }
}

impl SignificanceQuery for Pie {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.decode()
            .into_iter()
            .find(|&(d, _)| d == id)
            .map(|(_, p)| p as f64)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        top_k_of(
            self.decode()
                .into_iter()
                .map(|(id, p)| Estimate::new(id, p as f64))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for Pie {
    fn memory_bytes(&self) -> usize {
        (self.history.len() + 1) * self.config.cells_per_period * STBF_CELL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pie(cells: usize) -> Pie {
        Pie::new(PieConfig {
            cells_per_period: cells,
            probes: 2,
            seed: 99,
        })
    }

    #[test]
    fn persistent_item_decoded_with_exact_persistency() {
        let mut p = pie(1 << 10);
        let persistent = 0xdead_beef_1234_5678u64;
        for period in 0..12u64 {
            for rep in 0..5u64 {
                p.insert(persistent);
                p.insert(1_000_000 + period * 10 + rep); // per-period noise
            }
            p.end_period();
        }
        let decoded = p.decode();
        let hit = decoded.iter().find(|&&(id, _)| id == persistent);
        let (_, pers) = hit.expect("persistent item not decoded");
        assert_eq!(*pers, 12);
    }

    #[test]
    fn short_lived_items_not_decodable() {
        let mut p = pie(1 << 10);
        let flash = 0xaaaa_bbbb_cccc_ddddu64;
        // Appears in 2 periods < SOURCE_BLOCKS: cannot span GF(2)^4.
        for period in 0..8u64 {
            if period < 2 {
                p.insert(flash);
            }
            p.insert(5_000 + period);
            p.end_period();
        }
        assert!(
            !p.decode().iter().any(|&(id, _)| id == flash),
            "2-period item must be undecodable"
        );
    }

    #[test]
    fn decode_never_reports_ghost_ids() {
        // Every decoded id must have actually been inserted.
        let mut p = pie(128); // small: plenty of collisions
        let mut inserted = std::collections::HashSet::new();
        for period in 0..20u64 {
            for i in 0..60u64 {
                let id = (i * 2_654_435_761) ^ (period % 3);
                p.insert(id);
                inserted.insert(id);
            }
            p.end_period();
        }
        for (id, _) in p.decode() {
            assert!(inserted.contains(&id), "ghost id {id:#x}");
        }
    }

    #[test]
    fn persistency_never_overestimated() {
        let mut p = pie(1 << 9);
        let mut truth: std::collections::HashMap<u64, u64> = Default::default();
        for period in 0..16u64 {
            let mut seen = std::collections::HashSet::new();
            for i in 0..40u64 {
                let id = i % 25 + if period % 2 == 0 { 0 } else { 10 };
                p.insert(id);
                if seen.insert(id) {
                    *truth.entry(id).or_insert(0) += 1;
                }
            }
            p.end_period();
        }
        for (id, pers) in p.decode() {
            assert!(
                pers <= truth[&id],
                "id {id}: decoded persistency {pers} > true {}",
                truth[&id]
            );
        }
    }

    #[test]
    fn top_k_ranks_by_persistency() {
        let mut p = pie(1 << 10);
        // id 101: every period; id 202: every other period. (An item seen in
        // very few periods may not gather spanning symbols — that is PIE's
        // designed behaviour, pinned by `short_lived_items_not_decodable`.)
        for period in 0..16u64 {
            p.insert(101);
            if period % 2 == 0 {
                p.insert(202);
            }
            p.end_period();
        }
        let top = p.top_k(2);
        assert_eq!(top[0].id, 101);
        assert_eq!(top[0].value, 16.0);
        assert_eq!(top[1].id, 202);
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn tight_memory_collapses_decoding() {
        // The effect the paper leans on: with tiny filters, collisions mark
        // everything and PIE decodes (almost) nothing.
        let mut p = pie(8);
        for _period in 0..12u64 {
            for i in 0..500u64 {
                p.insert(i);
            }
            p.end_period();
        }
        assert!(
            p.decode().len() < 5,
            "tiny PIE should decode almost nothing, got {}",
            p.decode().len()
        );
    }

    #[test]
    fn memory_grows_per_period() {
        let mut p = pie(256);
        let one = p.memory_bytes();
        p.end_period();
        p.end_period();
        assert_eq!(p.memory_bytes(), 3 * one, "3 filters alive");
        assert_eq!(one, 256 * 4);
    }
}
