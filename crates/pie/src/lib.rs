//! # ltc-pie — the PIE persistent-items baseline
//!
//! PIE ("Persistent Items in-stream Estimation"; the paper's state-of-the-art
//! baseline \[16\] for finding top-k **persistent** items) works period by
//! period:
//!
//! 1. during each period, distinct items are recorded in a **Space-Time
//!    Bloom Filter** ([`stbf::Stbf`]) — an array of cells carrying a short
//!    fingerprint and one *encoded fragment* of the item id; colliding cells
//!    are marked unusable;
//! 2. after the stream, the per-period filters are decoded jointly
//!    ([`pie::Pie::decode`]): cells at the same index with the same
//!    fingerprint across different periods belong (w.h.p.) to the same item,
//!    and once enough independent fragments accumulate, the full id is
//!    reconstructed; the number of contributing periods estimates the item's
//!    persistency.
//!
//! **Substitution note** (see DESIGN.md §4): the original PIE encodes id
//! fragments with Raptor codes. We use a systematic LT-style fountain code
//! over GF(2) ([`fountain::FountainCode`]) with Gaussian-elimination
//! decoding. The structural behaviour PIE's evaluation depends on is
//! preserved: ids are spread across periods as rateless symbols, any
//! sufficiently many clean cells recover the id, and accuracy collapses when
//! memory (and thus clean-cell probability) is tight — exactly the regime
//! the LTC paper exercises by granting PIE `T×` the memory of everyone else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fountain;
pub mod pie;
pub mod stbf;

pub use fountain::FountainCode;
pub use pie::{Pie, PieConfig};
pub use stbf::{Stbf, StbfCell};
