//! A systematic LT-style fountain code over GF(2), standing in for PIE's
//! Raptor codes (see the crate docs for the substitution argument).
//!
//! The 64-bit item id is split into four 16-bit source blocks. Symbol `s`
//! is the XOR of a non-empty subset of blocks chosen by a 4-bit *mask*
//! derived from `s`: symbols 0–3 are **systematic** (mask = one block each,
//! like Raptor's systematic prefix), later symbols use pseudo-random masks.
//! Any set of symbols whose masks span GF(2)⁴ recovers the id by Gaussian
//! elimination — four independent symbols suffice, mirroring Raptor's
//! "slightly more than k symbols decode" property at our tiny k.

use ltc_hash::bob_hash_u64;

/// Number of 16-bit source blocks in a 64-bit id.
pub const SOURCE_BLOCKS: usize = 4;

/// The fountain code: pure functions of `(id, symbol index)` under a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FountainCode {
    seed: u32,
}

impl FountainCode {
    /// A code instance under `seed` (all encoders/decoders in one experiment
    /// must share it).
    pub const fn new(seed: u32) -> Self {
        Self { seed }
    }

    /// The 4-bit non-zero block mask of symbol `s`.
    #[inline]
    pub fn mask(&self, s: u32) -> u8 {
        if (s as usize) < SOURCE_BLOCKS {
            1 << s // systematic prefix
        } else {
            let m = (bob_hash_u64(u64::from(s), self.seed) & 0xf) as u8;
            if m == 0 {
                0b1111
            } else {
                m
            }
        }
    }

    /// Encode symbol `s` of `id`: XOR of the masked 16-bit blocks.
    #[inline]
    pub fn encode(&self, id: u64, s: u32) -> u16 {
        let mask = self.mask(s);
        let mut out = 0u16;
        for b in 0..SOURCE_BLOCKS {
            if mask & (1 << b) != 0 {
                out ^= (id >> (16 * b)) as u16;
            }
        }
        out
    }

    /// Decode from `(symbol index, value)` equations by GF(2) Gauss–Jordan.
    ///
    /// Returns the unique id when the masks span all four blocks, `None`
    /// when the system is underdetermined **or inconsistent** (inconsistency
    /// means the equations mix two different items — collision noise — and
    /// must not produce a bogus id).
    pub fn decode(&self, equations: &[(u32, u16)]) -> Option<u64> {
        // pivots[col]: a reduced row whose lowest set mask bit is `col`.
        let mut pivots: [Option<(u8, u16)>; SOURCE_BLOCKS] = [None; SOURCE_BLOCKS];
        for &(s, value) in equations {
            let mut m = self.mask(s);
            let mut v = value;
            while m != 0 {
                let col = m.trailing_zeros() as usize;
                match pivots[col] {
                    Some((pm, pv)) => {
                        m ^= pm;
                        v ^= pv;
                    }
                    None => {
                        pivots[col] = Some((m, v));
                        m = 0;
                        v = 0;
                    }
                }
            }
            if v != 0 {
                // 0 = v≠0: two distinct items' symbols got mixed.
                return None;
            }
        }
        // Back-substitute from the highest block down (each pivot's extra
        // bits are strictly above its column).
        let mut blocks = [0u16; SOURCE_BLOCKS];
        for col in (0..SOURCE_BLOCKS).rev() {
            let (pm, pv) = pivots[col]?;
            let mut v = pv;
            let mut rest = pm & !(1u8 << col);
            while rest != 0 {
                let c = rest.trailing_zeros() as usize;
                v ^= blocks[c];
                rest &= rest - 1;
            }
            blocks[col] = v;
        }
        let mut id = 0u64;
        for (b, &block) in blocks.iter().enumerate() {
            id |= u64::from(block) << (16 * b);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDS: [u64; 6] = [
        0,
        1,
        0xdead_beef_cafe_f00d,
        u64::MAX,
        0x0123_4567_89ab_cdef,
        42,
    ];

    #[test]
    fn systematic_prefix_is_identity() {
        let fc = FountainCode::new(9);
        for &id in &IDS {
            for s in 0..4u32 {
                assert_eq!(fc.encode(id, s), (id >> (16 * s)) as u16);
            }
        }
    }

    #[test]
    fn masks_nonzero() {
        let fc = FountainCode::new(3);
        for s in 0..1_000u32 {
            assert_ne!(fc.mask(s), 0, "symbol {s}");
            assert!(fc.mask(s) < 16);
        }
    }

    #[test]
    fn decode_from_systematic_symbols() {
        let fc = FountainCode::new(1);
        for &id in &IDS {
            let eqs: Vec<(u32, u16)> = (0..4).map(|s| (s, fc.encode(id, s))).collect();
            assert_eq!(fc.decode(&eqs), Some(id));
        }
    }

    #[test]
    fn decode_from_random_symbols() {
        let fc = FountainCode::new(7);
        for &id in &IDS {
            // Symbols 10..30: masks are pseudo-random; 20 symbols span
            // GF(2)^4 with overwhelming probability.
            let eqs: Vec<(u32, u16)> = (10..30).map(|s| (s, fc.encode(id, s))).collect();
            assert_eq!(fc.decode(&eqs), Some(id), "id {id:#x}");
        }
    }

    #[test]
    fn underdetermined_returns_none() {
        let fc = FountainCode::new(7);
        let id = 0x1111_2222_3333_4444u64;
        // Two systematic symbols cover only blocks 0 and 1.
        let eqs = vec![(0, fc.encode(id, 0)), (1, fc.encode(id, 1))];
        assert_eq!(fc.decode(&eqs), None);
    }

    #[test]
    fn inconsistent_mix_rejected() {
        // Symbols from two different ids on the same symbol indices: the
        // over-determined system must detect the contradiction.
        let fc = FountainCode::new(7);
        let (a, b) = (0xaaaa_bbbb_cccc_ddddu64, 0x1234_5678_9abc_def0u64);
        let mut eqs: Vec<(u32, u16)> = (0..4).map(|s| (s, fc.encode(a, s))).collect();
        eqs.extend((4..12).map(|s| (s, fc.encode(b, s))));
        assert_eq!(fc.decode(&eqs), None, "mixed-item decode must fail");
    }

    #[test]
    fn duplicate_symbols_are_harmless() {
        let fc = FountainCode::new(7);
        let id = 0x0f0f_1e1e_2d2d_3c3cu64;
        let mut eqs: Vec<(u32, u16)> = (0..4).map(|s| (s, fc.encode(id, s))).collect();
        eqs.extend_from_slice(&eqs.clone());
        assert_eq!(fc.decode(&eqs), Some(id));
    }

    #[test]
    fn roundtrip_random_subsets() {
        // Any 8 consecutive symbol indices should decode (masks span w.h.p.;
        // pinned deterministic since the code is seeded).
        let fc = FountainCode::new(123);
        let id = 0x9e37_79b9_7f4a_7c15u64;
        for start in (0..200u32).step_by(13) {
            let eqs: Vec<(u32, u16)> = (start..start + 8).map(|s| (s, fc.encode(id, s))).collect();
            if let Some(got) = fc.decode(&eqs) {
                assert_eq!(got, id, "start {start}");
            }
        }
    }
}
