//! Zero-dependency Rust tokenizer for the workspace linter.
//!
//! Produces a flat stream of [`Token`]s with byte spans and 1-based
//! line/column positions. The goal is *lint-grade* lexing: every
//! construct that can hide or fake rule-relevant text is classified
//! correctly — string/char/byte literals (plain, raw, any `#` depth),
//! `b'\''`-style escapes, lifetimes vs char literals, nested block
//! comments, doc vs plain comments, raw identifiers, shebang lines —
//! so the rules layer never has to guess whether `unwrap` is code or
//! prose.
//!
//! Numeric literal lexing is deliberately permissive (a linter does not
//! validate digits), but span boundaries are exact: concatenating every
//! token's `text` with the intervening whitespace reproduces the source
//! byte-for-byte, which the round-trip tests assert.

use std::fmt;

/// Token classification. Comments are real tokens (the waiver scanner
/// needs them); whitespace is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `#!/usr/bin/env ...` — only at byte 0 and only when not an inner
    /// attribute (`#![...]`).
    Shebang,
    /// Identifier or keyword (`is_keyword` distinguishes).
    Ident,
    /// `r#ident` raw identifier.
    RawIdent,
    /// `'a`, `'static`, `'_` — a quote introducing a name, not a char.
    Lifetime,
    /// `'x'`, `'\''`, `'\u{1F600}'`.
    Char,
    /// `b'x'`, `b'\''`.
    ByteChar,
    /// `"..."` with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, any hash depth.
    RawStr,
    /// `b"..."`.
    ByteStr,
    /// `br"..."`, `br#"..."#`.
    RawByteStr,
    /// Integer or float literal, including suffix (`1_000u64`, `2.5e-3`).
    Num,
    /// `// ...` (non-doc).
    LineComment,
    /// `/// ...` or `//! ...`.
    DocLineComment,
    /// `/* ... */`, nested (non-doc).
    BlockComment,
    /// `/** ... */` or `/*! ... */`.
    DocBlockComment,
    /// Operator or delimiter, maximal-munch (`<<=`, `..=`, `::`, `+=`, …).
    Punct,
}

impl TokenKind {
    /// Comments of any flavor.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment
                | TokenKind::DocLineComment
                | TokenKind::BlockComment
                | TokenKind::DocBlockComment
        )
    }

    /// Doc comments: excluded from waiver scanning (a waiver must be a
    /// real comment addressed to the linter, not rendered documentation).
    pub fn is_doc_comment(self) -> bool {
        matches!(self, TokenKind::DocLineComment | TokenKind::DocBlockComment)
    }

    /// String-ish literals (anything whose *content* is data, not code).
    pub fn is_string_like(self) -> bool {
        matches!(
            self,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::RawByteStr
                | TokenKind::Char
                | TokenKind::ByteChar
        )
    }
}

/// One lexed token. `text` is an owned copy of `source[start..end]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte within its line.
    pub col: usize,
    pub text: String,
}

/// A lexing failure with its position; returned instead of guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

/// Rust's strict and reserved keywords — the set that can legally
/// precede `[` without the bracket being an index expression, among
/// other disambiguations.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait",
    "true", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Whether `text` is a Rust keyword.
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Multi-character operators, longest first so maximal munch is a plain
/// prefix scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "&&", "||", "<<", ">>", "==", "!=", "<=", ">=", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a str,
    /// Char positions: (byte offset, char) pairs for lookahead.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars
            .get(self.pos.saturating_add(ahead))
            .map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Advance one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            self.pos = self.pos.saturating_add(1);
            if c == '\n' {
                self.line = self.line.saturating_add(1);
                self.col = 1;
            } else {
                self.col = self.col.saturating_add(c.len_utf8());
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn error(&self, message: String) -> LexError {
        LexError {
            line: self.line,
            col: self.col,
            message,
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        let end = self.byte_offset();
        self.tokens.push(Token {
            kind,
            start,
            end,
            line,
            col,
            text: self.src.get(start..end).unwrap_or("").to_string(),
        });
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        // Shebang: `#!` at byte 0, but `#![...]` is an inner attribute.
        if self.src.starts_with("#!") && !self.src[2..].trim_start().starts_with('[') {
            let (start, line, col) = (0, 1, 1);
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.bump();
            }
            self.push(TokenKind::Shebang, start, line, col);
        }
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.byte_offset(), self.line, self.col);
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line, col)?,
                '"' => {
                    self.bump();
                    self.string_body(0)?;
                    self.push(TokenKind::Str, start, line, col);
                }
                '\'' => self.quote(start, line, col)?,
                'b' | 'r' => {
                    if !self.byte_or_raw(start, line, col)? {
                        while self.peek(0).is_some_and(is_ident_continue) {
                            self.bump();
                        }
                        self.push(TokenKind::Ident, start, line, col);
                    }
                }
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => self.number(start, line, col),
                _ => self.punct(start, line, col),
            }
        }
        Ok(self.tokens)
    }

    fn line_comment(&mut self, start: usize, line: usize, col: usize) {
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        let text = &self.src[start..self.byte_offset()];
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if doc {
            TokenKind::DocLineComment
        } else {
            TokenKind::LineComment
        };
        self.push(kind, start, line, col);
    }

    fn block_comment(&mut self, start: usize, line: usize, col: usize) -> Result<(), LexError> {
        self.bump_n(2); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth = depth.saturating_add(1);
                    self.bump_n(2);
                }
                (Some('*'), Some('/')) => {
                    depth = depth.saturating_sub(1);
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => return Err(self.error("unterminated block comment".to_string())),
            }
        }
        let text = &self.src[start..self.byte_offset()];
        // `/**` (not `/***` or the empty `/**/`) and `/*!` are doc comments.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        let kind = if doc {
            TokenKind::DocBlockComment
        } else {
            TokenKind::BlockComment
        };
        self.push(kind, start, line, col);
        Ok(())
    }

    /// Body of a (raw) string after the opening quote: consume through
    /// the closing quote followed by `hashes` `#`s. `hashes == 0` means a
    /// plain string, where `\"` escapes are honored.
    fn string_body(&mut self, hashes: usize) -> Result<(), LexError> {
        loop {
            match self.peek(0) {
                None => return Err(self.error("unterminated string literal".to_string())),
                Some('\\') if hashes == 0 => self.bump_n(2),
                Some('"') => {
                    self.bump();
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        matched = matched.saturating_add(1);
                    }
                    if matched == hashes {
                        return Ok(());
                    }
                    // `"` closed fewer hashes than the raw string opened
                    // with — still inside the literal, keep scanning.
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// `'` — a char literal or a lifetime.
    fn quote(&mut self, start: usize, line: usize, col: usize) -> Result<(), LexError> {
        self.bump(); // `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape, then through
                // the closing quote (covers `'\''`, `'\u{..}'`).
                self.bump_n(2);
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.bump();
                }
                if self.peek(0).is_none() {
                    return Err(self.error("unterminated char literal".to_string()));
                }
                self.bump();
                self.push(TokenKind::Char, start, line, col);
            }
            Some(c) if is_ident_continue(c) => {
                if self.peek(1) == Some('\'') {
                    // 'x' — a one-char literal.
                    self.bump_n(2);
                    self.push(TokenKind::Char, start, line, col);
                } else {
                    // 'ident — a lifetime; no closing quote.
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, start, line, col);
                }
            }
            Some(_) => {
                // A non-identifier char like '(' or '['.
                self.bump();
                if self.peek(0) != Some('\'') {
                    return Err(self.error("unterminated char literal".to_string()));
                }
                self.bump();
                self.push(TokenKind::Char, start, line, col);
            }
            None => return Err(self.error("dangling `'` at end of input".to_string())),
        }
        Ok(())
    }

    /// Handle the `b` / `r` prefixes: `b'x'`, `b"..."`, `br#"..."#`,
    /// `r"..."`, `r#"..."#`, `r#ident`. Returns Ok(false) when the
    /// prefix turns out to start a plain identifier (caller falls
    /// through to ident lexing).
    fn byte_or_raw(&mut self, start: usize, line: usize, col: usize) -> Result<bool, LexError> {
        let (prefix_len, kind) = match (self.peek(0), self.peek(1)) {
            (Some('b'), Some('\'')) => {
                // b'x' / b'\''.
                self.bump(); // `b`
                self.quote(start, line, col)?;
                // Reclassify the Char token the quote lexer pushed.
                if let Some(tok) = self.tokens.last_mut() {
                    tok.kind = TokenKind::ByteChar;
                    tok.start = start;
                    tok.text = self.src.get(start..tok.end).unwrap_or("").to_string();
                }
                return Ok(true);
            }
            (Some('b'), Some('"')) => (1, TokenKind::ByteStr),
            (Some('b'), Some('r')) => (2, TokenKind::RawByteStr),
            (Some('r'), Some('"')) => (1, TokenKind::RawStr),
            (Some('r'), Some('#')) => (1, TokenKind::RawStr),
            _ => return Ok(false),
        };
        // Count hashes after the prefix; raw strings need `#...#"`,
        // `r#ident` has hashes followed by an identifier char.
        let mut ahead = prefix_len;
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead = ahead.saturating_add(1);
            hashes = hashes.saturating_add(1);
        }
        match self.peek(ahead) {
            Some('"') => {
                let raw = kind == TokenKind::RawStr || kind == TokenKind::RawByteStr;
                if !raw && hashes > 0 {
                    return Err(self.error("`b#` is not a valid literal prefix".to_string()));
                }
                self.bump_n(ahead.saturating_add(1)); // prefix + hashes + `"`
                self.string_body(hashes)?;
                self.push(kind, start, line, col);
                Ok(true)
            }
            _ if kind == TokenKind::RawStr && hashes == 1 => {
                // `r#ident` — a raw identifier, not a string.
                self.bump_n(2); // `r#`
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::RawIdent, start, line, col);
                Ok(true)
            }
            _ => Ok(false), // `b` / `r` starting a plain identifier
        }
    }

    fn number(&mut self, start: usize, line: usize, col: usize) {
        // Radix prefix.
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'))
            && self
                .peek(2)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            self.bump_n(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // Fractional part — only if the dot is followed by a digit, so
            // ranges (`0..n`) and method calls (`1.max(2)`) stay separate
            // tokens.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
                if self
                    .peek(1usize.saturating_add(sign))
                    .is_some_and(|c| c.is_ascii_digit())
                {
                    self.bump_n(1usize.saturating_add(sign));
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(TokenKind::Num, start, line, col);
    }

    fn punct(&mut self, start: usize, line: usize, col: usize) {
        let rest = &self.src[self.byte_offset()..];
        let munch = PUNCTS
            .iter()
            .find(|p| rest.starts_with(**p))
            .map_or(1, |p| p.chars().count());
        self.bump_n(munch);
        self.push(TokenKind::Punct, start, line, col);
    }
}

/// Tokenize `src`. Every byte is either part of a token or whitespace;
/// the only failures are genuinely malformed input (unterminated
/// string/comment/char), which a compiling tree can never contain.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}
