//! Structural `#[cfg(...)]` evaluation.
//!
//! The linter models the *production* compilation: `cfg(test)` is
//! definitively false, feature flags and target predicates are
//! **unknown** (three-valued Kleene logic), and an item is exempt from
//! every rule only when its `cfg` predicate evaluates to definitively
//! `False`. That way both arms of a `#[cfg(feature = "...")]` /
//! `#[cfg(not(feature = "..."))]` pair stay linted — weakening an
//! ordering behind a feature gate still fails the build — while test
//! modules and `#[cfg(all(test, ...))]` helpers are excluded
//! structurally, however they are formatted, with no brace-tracking
//! heuristics.
//!
//! An exempted attribute covers the attribute itself, any further
//! attributes stacked on the item, and the item through its terminating
//! `;` or body `{...}` (plus a trailing `;` for `= || { ... };`-style
//! items). Inner attributes (`#![cfg(...)]`) exempt their enclosing
//! scope.

use crate::lexer::{Token, TokenKind};
use crate::tokentree::{Delim, Tree};

/// Kleene three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }
}

/// A parsed `cfg` predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Bare flag: `test`, `unix`, `debug_assertions`, …
    Flag(String),
    /// `key = "value"`: `feature = "failpoints"`, `target_os = "linux"`.
    KeyValue(String, String),
    All(Vec<Pred>),
    Any(Vec<Pred>),
    Not(Box<Pred>),
    /// Anything the grammar above does not cover — evaluates Unknown.
    Opaque,
}

/// The evaluation context. `test` is always false (the linter models the
/// production build); features may be pinned either way, everything else
/// is unknown.
#[derive(Debug, Clone, Default)]
pub struct CfgContext {
    /// Features treated as enabled (`feature = "x"` → True).
    pub features_on: Vec<String>,
    /// Features treated as disabled (`feature = "x"` → False).
    pub features_off: Vec<String>,
}

impl Pred {
    pub fn eval(&self, ctx: &CfgContext) -> Truth {
        match self {
            Pred::Flag(name) if name == "test" => Truth::False,
            Pred::Flag(_) => Truth::Unknown,
            Pred::KeyValue(key, value) if key == "feature" => {
                if ctx.features_on.iter().any(|f| f == value) {
                    Truth::True
                } else if ctx.features_off.iter().any(|f| f == value) {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
            Pred::KeyValue(..) => Truth::Unknown,
            Pred::All(preds) => preds
                .iter()
                .fold(Truth::True, |acc, p| acc.and(p.eval(ctx))),
            Pred::Any(preds) => preds
                .iter()
                .fold(Truth::False, |acc, p| acc.or(p.eval(ctx))),
            Pred::Not(inner) => inner.eval(ctx).not(),
            Pred::Opaque => Truth::Unknown,
        }
    }
}

/// Unquote a string literal token's text (`"x"` → `x`). Escapes are left
/// as-is: feature names never contain them.
fn unquote(text: &str) -> String {
    text.trim_matches('"').to_string()
}

/// Parse one predicate from the children of a `cfg(...)` paren group.
/// `trees` must be exactly one predicate (possibly with a trailing
/// comma). Unknown shapes parse as [`Pred::Opaque`], never an error — a
/// linter must fail safe toward "linted", not "exempt".
pub fn parse_pred(tokens: &[Token], trees: &[Tree]) -> Pred {
    // Drop a trailing comma.
    let trees = match trees.last() {
        Some(Tree::Leaf(i)) if tokens.get(*i).is_some_and(|t| t.text == ",") => {
            &trees[..trees.len().saturating_sub(1)]
        }
        _ => trees,
    };
    match trees {
        // `flag`
        [Tree::Leaf(i)] => match tokens.get(*i) {
            Some(t) if t.kind == TokenKind::Ident => Pred::Flag(t.text.clone()),
            _ => Pred::Opaque,
        },
        // `key = "value"`
        [Tree::Leaf(k), Tree::Leaf(eq), Tree::Leaf(v)] => {
            match (tokens.get(*k), tokens.get(*eq), tokens.get(*v)) {
                (Some(key), Some(op), Some(val))
                    if key.kind == TokenKind::Ident
                        && op.text == "="
                        && val.kind == TokenKind::Str =>
                {
                    Pred::KeyValue(key.text.clone(), unquote(&val.text))
                }
                _ => Pred::Opaque,
            }
        }
        // `all(...)` / `any(...)` / `not(...)`
        [Tree::Leaf(i), Tree::Group(g)] if g.delim == Delim::Paren => {
            let name = match tokens.get(*i) {
                Some(t) if t.kind == TokenKind::Ident => t.text.as_str(),
                _ => return Pred::Opaque,
            };
            match name {
                "not" => Pred::Not(Box::new(parse_pred(tokens, &g.children))),
                "all" | "any" => {
                    let parts = split_commas(tokens, &g.children)
                        .into_iter()
                        .map(|part| parse_pred(tokens, part))
                        .collect();
                    if name == "all" {
                        Pred::All(parts)
                    } else {
                        Pred::Any(parts)
                    }
                }
                _ => Pred::Opaque,
            }
        }
        _ => Pred::Opaque,
    }
}

/// Split a tree sequence on top-level commas.
fn split_commas<'a>(tokens: &[Token], trees: &'a [Tree]) -> Vec<&'a [Tree]> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    for (i, tree) in trees.iter().enumerate() {
        if let Tree::Leaf(t) = tree {
            if tokens.get(*t).is_some_and(|tok| tok.text == ",") {
                parts.push(&trees[start..i]);
                start = i.saturating_add(1);
            }
        }
    }
    if start < trees.len() {
        parts.push(&trees[start..]);
    }
    parts
}

/// Per-token exemption mask: `true` means the token sits inside an item
/// whose `cfg` predicate evaluated to definitively `False` (e.g. a
/// `#[cfg(test)]` module) and is invisible to every rule.
pub fn exempt_mask(tokens: &[Token], root: &[Tree], ctx: &CfgContext) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    walk(tokens, root, ctx, &mut mask);
    mask
}

fn mark_tree(tree: &Tree, mask: &mut [bool]) {
    match tree {
        Tree::Leaf(i) => {
            if let Some(slot) = mask.get_mut(*i) {
                *slot = true;
            }
        }
        Tree::Group(g) => {
            if let Some(slot) = mask.get_mut(g.open) {
                *slot = true;
            }
            if let Some(slot) = mask.get_mut(g.close) {
                *slot = true;
            }
            for child in &g.children {
                mark_tree(child, mask);
            }
        }
    }
}

/// Does `trees[at..]` start an attribute, and if so is it a `cfg` whose
/// predicate is False? Returns `(tokens_in_attr, exempt)`:
/// the number of *trees* the attribute spans (2 for `#[...]`, 3 for
/// `#![...]`) and whether it disables the item.
fn attr_at(
    tokens: &[Token],
    trees: &[Tree],
    at: usize,
    ctx: &CfgContext,
) -> Option<(usize, bool, bool)> {
    let hash = match trees.get(at) {
        Some(Tree::Leaf(i)) if tokens.get(*i).is_some_and(|t| t.text == "#") => *i,
        _ => return None,
    };
    let _ = hash;
    let (len, inner) = match trees.get(at.saturating_add(1)) {
        Some(Tree::Leaf(i)) if tokens.get(*i).is_some_and(|t| t.text == "!") => (3usize, true),
        _ => (2usize, false),
    };
    let group_idx = at.saturating_add(len).saturating_sub(1);
    let group = match trees.get(group_idx) {
        Some(Tree::Group(g)) if g.delim == Delim::Bracket => g,
        _ => return None,
    };
    // `cfg ( ... )` inside the bracket?
    let exempt = match group.children.as_slice() {
        [Tree::Leaf(i), Tree::Group(args)]
            if tokens.get(*i).is_some_and(|t| t.text == "cfg") && args.delim == Delim::Paren =>
        {
            parse_pred(tokens, &args.children).eval(ctx) == Truth::False
        }
        _ => false,
    };
    Some((len, inner, exempt))
}

/// Walk a scope's tree sequence, marking cfg-disabled items; recurse
/// into every group for nested scopes.
fn walk(tokens: &[Token], trees: &[Tree], ctx: &CfgContext, mask: &mut [bool]) {
    let mut i = 0usize;
    while i < trees.len() {
        if let Some((len, inner, exempt)) = attr_at(tokens, trees, i, ctx) {
            if inner {
                if exempt {
                    // `#![cfg(false-pred)]`: the whole enclosing scope is
                    // disabled; the caller already owns these trees, so
                    // mark them all.
                    for tree in trees {
                        mark_tree(tree, mask);
                    }
                    return;
                }
                i = i.saturating_add(len);
                continue;
            }
            if exempt {
                // Mark the attribute, any stacked attributes, and the
                // item through its end.
                let start = i;
                let mut j = i.saturating_add(len);
                // Skip further outer attributes on the same item.
                while let Some((alen, ainner, _)) = attr_at(tokens, trees, j, ctx) {
                    if ainner {
                        break;
                    }
                    j = j.saturating_add(alen);
                }
                // Consume the item: up to and including the first `;`, or
                // the first brace group (plus a directly-following `;`).
                let mut end = trees.len();
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Leaf(t) if tokens.get(*t).is_some_and(|tk| tk.text == ";") => {
                            end = j.saturating_add(1);
                            break;
                        }
                        Tree::Group(g) if g.delim == Delim::Brace => {
                            end = j.saturating_add(1);
                            if let Some(Tree::Leaf(t)) = trees.get(end) {
                                if tokens.get(*t).is_some_and(|tk| tk.text == ";") {
                                    end = end.saturating_add(1);
                                }
                            }
                            break;
                        }
                        _ => j = j.saturating_add(1),
                    }
                }
                for tree in trees.iter().take(end).skip(start) {
                    mark_tree(tree, mask);
                }
                i = end.max(start.saturating_add(1));
                continue;
            }
            i = i.saturating_add(len);
            continue;
        }
        if let Tree::Group(g) = &trees[i] {
            walk(tokens, &g.children, ctx, mask);
        }
        i = i.saturating_add(1);
    }
}
