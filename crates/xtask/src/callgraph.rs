//! Conservative workspace call graph, effect collection and
//! reachability.
//!
//! For every collected function body this module records:
//!
//! * **Calls** — free calls (`helper(..)`), path calls
//!   (`Type::assoc(..)`, `module::helper(..)`, `Self::..`, turbofish
//!   included) and method calls (`recv.method(..)`), resolved against
//!   the [`Workspace`] indexes. Resolution is *conservative*: a typed
//!   receiver yields precise edges; an unknown receiver with a
//!   workspace-unique name yields edges to **all** same-name candidates
//!   (`Ambiguous`); a name that only exists in std stays external.
//! * **Opaque calls** — syntactically indirect invocations (`(f)(x)`,
//!   `table[i](x)`) that no name-based resolution can see. They are
//!   counted per function and budgeted by the `opaque_call_budget`
//!   rule, so the blind spots of the analysis are themselves measured.
//! * **Effects** — panic-capable constructs (`unwrap`/`expect`,
//!   panicking macros, index expressions, compound arithmetic
//!   assignment) plus calls into a curated std table of allocating,
//!   locking and I/O-performing names. Workspace-resolved calls carry
//!   no intrinsic effect — their bodies are analyzed instead.
//! * **`unsafe`** — whether the body contains a live `unsafe` token.
//!
//! Reachability is a plain BFS over resolved edges with parent
//! pointers, so every diagnostic can print the *call chain* that makes
//! a distant effect a hot-path problem.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lexer::{is_keyword, TokenKind};
use crate::resolve::Workspace;
use crate::rules::index::index_expr_open;
use crate::tokentree::{Delim, Tree};
use crate::FileAnalysis;

/// Effect categories the purity rule can deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    Panic,
    Index,
    Arith,
    Lock,
    Alloc,
    Io,
}

impl EffectKind {
    pub fn name(self) -> &'static str {
        match self {
            EffectKind::Panic => "panic",
            EffectKind::Index => "index",
            EffectKind::Arith => "arith",
            EffectKind::Lock => "lock",
            EffectKind::Alloc => "alloc",
            EffectKind::Io => "io",
        }
    }

    pub fn parse(s: &str) -> Option<EffectKind> {
        match s {
            "panic" => Some(EffectKind::Panic),
            "index" => Some(EffectKind::Index),
            "arith" => Some(EffectKind::Arith),
            "lock" => Some(EffectKind::Lock),
            "alloc" => Some(EffectKind::Alloc),
            "io" => Some(EffectKind::Io),
            _ => None,
        }
    }

    pub const ALL: &'static [&'static str] = &["panic", "index", "arith", "lock", "alloc", "io"];
}

/// One effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Effect {
    pub kind: EffectKind,
    /// Token index (in the owning file) the effect anchors to.
    pub token: usize,
    /// Human-readable description, e.g. "`.unwrap()`" or "`buf[...]` indexing".
    pub what: String,
}

/// How a call edge was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Name + receiver/path type pinned a unique definition set.
    Direct,
    /// Unknown receiver: edges to every same-name workspace method.
    Ambiguous,
}

/// One named call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name at the call site.
    pub token: usize,
    pub callee: String,
    /// Resolved workspace definitions (empty for external calls).
    pub targets: Vec<usize>,
    pub kind: CallKind,
}

/// Per-function facts the rules consume.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub effects: Vec<Effect>,
    pub calls: Vec<Call>,
    /// Token indices of the `(` of syntactically indirect calls.
    pub opaque: Vec<usize>,
    pub has_unsafe: bool,
}

/// The workspace call graph: facts parallel to `ws.fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub facts: Vec<FnFacts>,
}

// ---------------------------------------------------------------------------
// External effect tables (curated std knowledge)
// ---------------------------------------------------------------------------

/// Method names that panic on the error/None arm. Detected before
/// resolution: no workspace type shadows them.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally panic when reached. `assert!` and
/// `debug_assert!` stay allowed — they state contracts.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Unresolved method names that block or lock.
const LOCK_METHODS: &[&str] = &["lock", "wait", "wait_timeout", "recv", "join", "park"];

/// Unresolved method names that may allocate. `.write(`/`.read(` are
/// deliberately absent: on the hot path those are `MaybeUninit`/raw-ptr
/// operations, not I/O or allocation.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "reserve",
    "extend",
    "push",
    "insert",
];

/// Unresolved method names that perform file/stream I/O.
const IO_METHODS: &[&str] = &[
    "flush",
    "sync_all",
    "sync_data",
    "write_all",
    "write_fmt",
    "read_exact",
    "read_to_end",
    "read_to_string",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// I/O macros. `write!`/`writeln!` are absent: on a `fmt::Formatter`
/// they are pure formatting; real sinks are caught via their own paths.
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// `(qualifier, name)` path calls with a known std effect. A `"*"`
/// name matches any associated call on the qualifier.
const PATH_EFFECTS: &[(&str, &str, EffectKind)] = &[
    ("thread", "sleep", EffectKind::Lock),
    ("thread", "park", EffectKind::Lock),
    ("fs", "*", EffectKind::Io),
    ("File", "*", EffectKind::Io),
    ("OpenOptions", "*", EffectKind::Io),
    ("Box", "new", EffectKind::Alloc),
    ("Vec", "with_capacity", EffectKind::Alloc),
    ("Vec", "from", EffectKind::Alloc),
    ("String", "with_capacity", EffectKind::Alloc),
    ("String", "from", EffectKind::Alloc),
];

/// Method names so pervasive in std that an *unknown* receiver must
/// not produce ambiguous edges into same-name workspace methods —
/// `buf.write(..)`, `it.next()`, `v.len()` on an untyped local would
/// otherwise wire the graph to every `write`/`next`/`len` in the tree.
/// Typed receivers bypass this list entirely, so real workspace calls
/// (`lane.queue.push(..)` with `queue: Arc<SpscRing<_>>`) keep their
/// precise edges.
const STD_AMBIENT: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "push", "pop", "insert",
    "remove", "iter", "iter_mut", "next", "write", "read", "load", "store", "swap", "drop", "fmt",
    "eq", "cmp", "hash", "from", "into", "as_ref", "as_mut", "min", "max", "take", "map", "flush",
    "send", "set", "add", "inc", "record", "fill", "contains", "clear",
];

fn method_effect(name: &str) -> Option<EffectKind> {
    if PANIC_METHODS.contains(&name) {
        Some(EffectKind::Panic)
    } else if LOCK_METHODS.contains(&name) {
        Some(EffectKind::Lock)
    } else if ALLOC_METHODS.contains(&name) {
        Some(EffectKind::Alloc)
    } else if IO_METHODS.contains(&name) {
        Some(EffectKind::Io)
    } else {
        None
    }
}

fn macro_effect(name: &str) -> Option<EffectKind> {
    if PANIC_MACROS.contains(&name) {
        Some(EffectKind::Panic)
    } else if ALLOC_MACROS.contains(&name) {
        Some(EffectKind::Alloc)
    } else if IO_MACROS.contains(&name) {
        Some(EffectKind::Io)
    } else {
        None
    }
}

fn path_effect(qualifier: &str, name: &str) -> Option<EffectKind> {
    PATH_EFFECTS
        .iter()
        .find(|(q, n, _)| *q == qualifier && (*n == "*" || *n == name))
        .map(|(_, _, k)| *k)
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

/// Build the call graph for a resolved workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut facts = Vec::with_capacity(ws.fns.len());
    for def in &ws.fns {
        let fa = &ws.files[def.file].fa;
        let mut f = FnFacts::default();
        if let Some((open, close)) = def.body {
            scan_body(ws, def, fa, open, close, &mut f);
        }
        facts.push(f);
    }
    CallGraph { facts }
}

/// Close-bracket token → open-bracket token, for the attribute guard in
/// opaque-call detection.
fn bracket_closes(trees: &[Tree], out: &mut HashMap<usize, usize>) {
    for tree in trees {
        if let Tree::Group(g) = tree {
            if g.delim == Delim::Bracket {
                out.insert(g.close, g.open);
            }
            bracket_closes(&g.children, out);
        }
    }
}

struct BodyScan<'a> {
    ws: &'a Workspace,
    def: &'a crate::resolve::FnDef,
    fa: &'a FileAnalysis,
    bracket_close_to_open: HashMap<usize, usize>,
}

fn scan_body(
    ws: &Workspace,
    def: &crate::resolve::FnDef,
    fa: &FileAnalysis,
    open: usize,
    close: usize,
    out: &mut FnFacts,
) {
    let Some(start) = fa.code_pos(open) else {
        return;
    };
    let Some(end) = fa.code_pos(close) else {
        return;
    };
    let mut closes = HashMap::new();
    bracket_closes(&fa.root, &mut closes);
    let scan = BodyScan {
        ws,
        def,
        fa,
        bracket_close_to_open: closes,
    };

    let mut pos = start.saturating_add(1);
    while pos < end {
        let Some(tok) = fa.code_tok(pos) else {
            break;
        };
        let token_idx = fa.code[pos];
        if fa.exempt.get(token_idx).copied().unwrap_or(false) {
            pos = pos.saturating_add(1);
            continue;
        }
        match tok.kind {
            TokenKind::Ident if tok.text == "unsafe" => {
                out.has_unsafe = true;
            }
            TokenKind::Punct if tok.text == "." => {
                if let Some(next) = scan.method_site(pos, out) {
                    pos = next;
                    continue;
                }
            }
            TokenKind::Punct if matches!(tok.text.as_str(), "+=" | "-=" | "*=") => {
                out.effects.push(Effect {
                    kind: EffectKind::Arith,
                    token: token_idx,
                    what: format!("compound `{}` arithmetic", tok.text),
                });
            }
            TokenKind::Punct if tok.text == "(" => {
                // Opaque call: `(..)` applied directly to the result of
                // a call or an index — `(f)(x)`, `table[i](x)`.
                if let Some(prev) = pos.checked_sub(1).and_then(|p| fa.code_tok(p)) {
                    let prev_idx = fa.code[pos.saturating_sub(1)];
                    let indirect = match prev.text.as_str() {
                        ")" => true,
                        // An attribute's `]` (`#[inline]`) is not an
                        // indexable expression.
                        "]" => scan
                            .bracket_close_to_open
                            .get(&prev_idx)
                            .is_some_and(|&open| index_expr_open(fa, open).is_some()),
                        _ => false,
                    };
                    if indirect {
                        out.opaque.push(token_idx);
                    }
                }
            }
            TokenKind::Ident | TokenKind::RawIdent if !is_keyword(&tok.text) => {
                if let Some(next) = scan.named_site(pos, out) {
                    pos = next;
                    continue;
                }
            }
            _ => {}
        }
        pos = pos.saturating_add(1);
    }

    // Index-expression effects come from the file-wide bracket index,
    // filtered to this body's token range.
    for &bopen in &fa.bracket_opens {
        if bopen <= open || bopen >= close {
            continue;
        }
        if fa.exempt.get(bopen).copied().unwrap_or(false) {
            continue;
        }
        if let Some(prev) = index_expr_open(fa, bopen) {
            out.effects.push(Effect {
                kind: EffectKind::Index,
                token: bopen,
                what: format!("`{prev}[...]` indexing"),
            });
        }
    }
}

impl BodyScan<'_> {
    fn text(&self, pos: usize) -> &str {
        self.fa.code_tok(pos).map_or("", |t| t.text.as_str())
    }

    fn ident(&self, pos: usize) -> Option<&str> {
        self.fa
            .code_tok(pos)
            .filter(|t| {
                matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) && !is_keyword(&t.text)
            })
            .map(|t| t.text.as_str())
    }

    /// After the name at `pos`, skip an optional turbofish and return
    /// the position of the `(` if this is a call. `::` `<` … `>` `(`.
    fn call_paren(&self, pos: usize) -> Option<usize> {
        let mut p = pos.saturating_add(1);
        if self.text(p) == "::" && self.text(p.saturating_add(1)) == "<" {
            let mut depth: i64 = 0;
            p = p.saturating_add(1);
            loop {
                match self.text(p) {
                    "<" => depth = depth.saturating_add(1),
                    ">" => depth = depth.saturating_sub(1),
                    "<<" => depth = depth.saturating_add(2),
                    ">>" => depth = depth.saturating_sub(2),
                    "" => return None,
                    _ => {}
                }
                p = p.saturating_add(1);
                if depth <= 0 {
                    break;
                }
            }
        }
        (self.text(p) == "(").then_some(p)
    }

    /// Handle `.name(` method call sites. `pos` is the `.`. Returns the
    /// position to resume scanning from (the `(`), or None if this is
    /// not a call.
    fn method_site(&self, pos: usize, out: &mut FnFacts) -> Option<usize> {
        let name = self.ident(pos.saturating_add(1))?.to_string();
        let paren = self.call_paren(pos.saturating_add(1))?;
        let token_idx = *self.fa.code.get(pos.saturating_add(1))?;

        // `.await`, `.0` etc. never reach here (not idents / no paren).
        if PANIC_METHODS.contains(&name.as_str()) {
            out.effects.push(Effect {
                kind: EffectKind::Panic,
                token: token_idx,
                what: format!("`.{name}()`"),
            });
            return Some(paren);
        }

        let recv = self.receiver_type(pos);
        match recv {
            Some(ty) => {
                let ty = self.ws.resolve_alias(&ty).to_string();
                let key = (ty.clone(), name.clone());
                if let Some(targets) = self.ws.methods_by_type.get(&key) {
                    out.calls.push(Call {
                        token: token_idx,
                        callee: format!("{ty}::{name}"),
                        targets: targets.clone(),
                        kind: CallKind::Direct,
                    });
                } else if !self.ws.types.contains(&ty) {
                    // Known non-workspace receiver (Vec, Mutex, u64…):
                    // external — consult the std effect table.
                    if let Some(kind) = method_effect(&name) {
                        out.effects.push(Effect {
                            kind,
                            token: token_idx,
                            what: format!("`.{name}()`"),
                        });
                    }
                }
                // Workspace type without that method (derived/blanket
                // impls): effect-free by the curated-table rule — the
                // workspace's own derives don't lock or do I/O.
            }
            None => {
                // Effect-table names (`lock`, `wait`, `collect`…) on an
                // unknown receiver are read as the std method they almost
                // always are: record the conservative effect and do NOT
                // fan ambiguous edges out to every same-named workspace
                // method — `registry().lock()` must not manufacture a
                // path through an unrelated `Progress::lock`. STD_AMBIENT
                // names get the same treatment (most carry no effect).
                if STD_AMBIENT.contains(&name.as_str()) || method_effect(&name).is_some() {
                    if let Some(kind) = method_effect(&name) {
                        out.effects.push(Effect {
                            kind,
                            token: token_idx,
                            what: format!("`.{name}()`"),
                        });
                    }
                } else if let Some(targets) = self.ws.methods_by_name.get(&name) {
                    out.calls.push(Call {
                        token: token_idx,
                        callee: name.clone(),
                        targets: targets.clone(),
                        kind: CallKind::Ambiguous,
                    });
                }
            }
        }
        Some(paren)
    }

    /// Resolve the receiver chain ending at the `.` at `pos`:
    /// `self.m(` → impl type; `self.field.m(` → field type;
    /// `local.m(` / `local.field.m(` → declared local type (+hop).
    fn receiver_type(&self, dot: usize) -> Option<String> {
        let base = dot.checked_sub(1)?;
        let base_tok = self.fa.code_tok(base)?;
        if !matches!(base_tok.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return None;
        }
        let base_name = base_tok.text.as_str();
        // One-field hop: `<start>.field.m(` — the token before the base
        // must be a `.` preceded by the chain start.
        let hop = base
            .checked_sub(2)
            .filter(|_| self.text(base.saturating_sub(1)) == ".")
            .and_then(|p| {
                let t = self.fa.code_tok(p)?;
                matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent).then(|| t.text.clone())
            });
        match hop {
            Some(start) => {
                // Longer chains (`a.b.c.m(`) stay unresolved: the hop's
                // own predecessor being another `.` means we only see
                // the middle of the chain — give up rather than guess.
                let before = base.checked_sub(3).map(|p| self.text(p).to_string());
                if before.as_deref() == Some(".") {
                    return None;
                }
                let start_ty = if start == "self" {
                    self.def.self_type.clone()?
                } else {
                    self.def.local_types.get(&start)?.clone()
                };
                let start_ty = self.ws.resolve_alias(&start_ty).to_string();
                self.ws
                    .field_types
                    .get(&(start_ty, base_name.to_string()))
                    .cloned()
            }
            None => {
                if base_name == "self" {
                    self.def.self_type.clone()
                } else {
                    self.def.local_types.get(base_name).cloned()
                }
            }
        }
    }

    /// Handle free and path calls where `pos` is a candidate callee
    /// name: `helper(`, `module::helper(`, `Type::assoc(`, `Self::x(`.
    /// Returns the resume position (the `(`), or None if not a call.
    fn named_site(&self, pos: usize, out: &mut FnFacts) -> Option<usize> {
        let name = self.ident(pos)?.to_string();
        let token_idx = *self.fa.code.get(pos)?;

        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if self.text(pos.saturating_add(1)) == "!" {
            let delim = self.text(pos.saturating_add(2));
            if matches!(delim, "(" | "[" | "{") {
                if let Some(kind) = macro_effect(&name) {
                    out.effects.push(Effect {
                        kind,
                        token: token_idx,
                        what: format!("`{name}!`"),
                    });
                }
                return Some(pos.saturating_add(2));
            }
            return None;
        }

        let paren = self.call_paren(pos)?;
        // Skip if this ident is a path segment with more to come
        // (`a::B` where the *next* token is `::` was handled by
        // call_paren returning None unless a turbofish followed) or a
        // declaration (`fn name(`).
        let prev = pos.checked_sub(1).map(|p| self.text(p).to_string());
        match prev.as_deref() {
            Some("fn") | Some(".") => return None, // decl / method (handled at the dot)
            Some("::") => {
                // Path call: find the qualifier before the `::`.
                let qual = pos
                    .checked_sub(2)
                    .and_then(|p| self.fa.code_tok(p))
                    .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
                    .map(|t| t.text.clone());
                let Some(qual) = qual else {
                    // `<T as Trait>::f(` and friends: unresolvable
                    // shape; treat as external with no effect.
                    return Some(paren);
                };
                // `self::helper(` / `crate::helper(` → free-fn lookup.
                if qual == "self" || qual == "crate" || qual == "super" {
                    self.free_call(&name, token_idx, out);
                    return Some(paren);
                }
                let qual_res = if qual == "Self" {
                    match &self.def.self_type {
                        Some(t) => t.clone(),
                        None => return Some(paren),
                    }
                } else {
                    self.ws.resolve_alias(&qual).to_string()
                };
                let key = (qual_res.clone(), name.clone());
                if let Some(targets) = self.ws.methods_by_type.get(&key) {
                    out.calls.push(Call {
                        token: token_idx,
                        callee: format!("{qual_res}::{name}"),
                        targets: targets.clone(),
                        kind: CallKind::Direct,
                    });
                } else if self.ws.types.contains(&qual_res) {
                    // Workspace type, derived/absent assoc fn: external
                    // semantics (e.g. `Foo::default()`).
                    if let Some(kind) = path_effect(&qual_res, &name) {
                        out.effects.push(Effect {
                            kind,
                            token: token_idx,
                            what: format!("`{qual_res}::{name}`"),
                        });
                    }
                } else if let Some(targets) = self.ws.free_by_name.get(&name) {
                    // Module-qualified free fn (`seam::publish(..)`).
                    out.calls.push(Call {
                        token: token_idx,
                        callee: name.clone(),
                        targets: targets.clone(),
                        kind: CallKind::Direct,
                    });
                } else if let Some(kind) = path_effect(&qual_res, &name) {
                    out.effects.push(Effect {
                        kind,
                        token: token_idx,
                        what: format!("`{qual_res}::{name}`"),
                    });
                }
                return Some(paren);
            }
            _ => {}
        }

        self.free_call(&name, token_idx, out);
        Some(paren)
    }

    fn free_call(&self, name: &str, token_idx: usize, out: &mut FnFacts) {
        let resolved = self.ws.resolve_alias(name).to_string();
        if let Some(targets) = self.ws.free_by_name.get(&resolved) {
            out.calls.push(Call {
                token: token_idx,
                callee: resolved,
                targets: targets.clone(),
                kind: CallKind::Direct,
            });
        }
        // Unknown free names (`drop(..)`, tuple-struct constructors,
        // closure parameters shadowing nothing) are external and
        // effect-free by the curated-table rule.
    }
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

/// BFS result from one entry point.
#[derive(Debug)]
pub struct Reach {
    /// Every reachable `FnDef` id, entry included.
    pub set: HashSet<usize>,
    /// `parent[f] = (caller, call-site token)` on one shortest chain.
    pub parent: HashMap<usize, (usize, usize)>,
}

/// All functions reachable from `entry` over resolved edges.
pub fn reachable(graph: &CallGraph, entry: usize) -> Reach {
    let mut set = HashSet::new();
    let mut parent = HashMap::new();
    let mut queue = VecDeque::new();
    set.insert(entry);
    queue.push_back(entry);
    while let Some(f) = queue.pop_front() {
        let Some(facts) = graph.facts.get(f) else {
            continue;
        };
        for call in &facts.calls {
            for &t in &call.targets {
                if set.insert(t) {
                    parent.insert(t, (f, call.token));
                    queue.push_back(t);
                }
            }
        }
    }
    Reach { set, parent }
}

/// The call chain `entry -> … -> target` as `Type::fn (file:line)`
/// hops, reconstructed from BFS parent pointers.
pub fn blame_chain(ws: &Workspace, reach: &Reach, entry: usize, target: usize) -> String {
    let mut hops = vec![target];
    let mut cur = target;
    while cur != entry {
        let Some(&(p, _)) = reach.parent.get(&cur) else {
            break;
        };
        hops.push(p);
        cur = p;
        if hops.len() > 64 {
            break; // defensive: malformed parent map
        }
    }
    hops.reverse();
    hops.iter()
        .map(|&f| {
            let def = &ws.fns[f];
            format!(
                "{} ({}:{})",
                def.display(),
                ws.files[def.file].rel,
                def.line
            )
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Graphviz export: one node per function, solid edges for `Direct`,
/// dashed for `Ambiguous`; nodes with effects list them, unsafe nodes
/// are octagons.
pub fn to_dot(ws: &Workspace, graph: &CallGraph) -> String {
    let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, def) in ws.fns.iter().enumerate() {
        let facts = &graph.facts[i];
        let mut label = def.display();
        let mut kinds: Vec<&str> = facts
            .effects
            .iter()
            .map(|e| e.kind.name())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        kinds.sort_unstable();
        if !kinds.is_empty() {
            label.push_str("\\n[");
            label.push_str(&kinds.join(","));
            label.push(']');
        }
        let shape = if facts.has_unsafe {
            " shape=octagon"
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{i} [label=\"{}\" tooltip=\"{}:{}\"{shape}];\n",
            dot_escape(&label),
            dot_escape(&ws.files[def.file].rel),
            def.line
        ));
    }
    for (i, facts) in graph.facts.iter().enumerate() {
        for call in &facts.calls {
            let style = match call.kind {
                CallKind::Direct => "",
                CallKind::Ambiguous => " [style=dashed]",
            };
            let mut targets: Vec<usize> = call.targets.clone();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                out.push_str(&format!("  n{i} -> n{t}{style};\n"));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// JSON export: one object with `fns` and `edges` arrays. Hand-rolled
/// (the workspace is dependency-free) but escaped properly.
pub fn to_json(ws: &Workspace, graph: &CallGraph) -> String {
    let esc = crate::json_escape;
    let mut out = String::from("{\"fns\":[");
    for (i, def) in ws.fns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let facts = &graph.facts[i];
        let mut kinds: Vec<&str> = facts
            .effects
            .iter()
            .map(|e| e.kind.name())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        kinds.sort_unstable();
        let effects = kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"id\":{i},\"name\":\"{}\",\"self_type\":{},\"file\":\"{}\",\"line\":{},\
             \"pub\":{},\"unsafe\":{},\"effects\":[{effects}],\"opaque_calls\":{}}}",
            esc(&def.name),
            match &def.self_type {
                Some(t) => format!("\"{}\"", esc(t)),
                None => "null".to_string(),
            },
            esc(&ws.files[def.file].rel),
            def.line,
            def.is_pub,
            facts.has_unsafe,
            facts.opaque.len()
        ));
    }
    out.push_str("],\"edges\":[");
    let mut first = true;
    for (i, facts) in graph.facts.iter().enumerate() {
        for call in &facts.calls {
            let mut targets: Vec<usize> = call.targets.clone();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                if !first {
                    out.push(',');
                }
                first = false;
                let kind = match call.kind {
                    CallKind::Direct => "direct",
                    CallKind::Ambiguous => "ambiguous",
                };
                out.push_str(&format!("{{\"from\":{i},\"to\":{t},\"kind\":\"{kind}\"}}"));
            }
        }
    }
    out.push_str("]}");
    out
}
