//! `failpoint_gate`: `fail_point!` sites and `failpoint::` paths may
//! appear only in the allowlisted files — the fault-injection surface
//! stays deliberate, not something that spreads into arbitrary modules
//! unreviewed. A bare `failpoint` identifier (e.g. `pub mod failpoint;`)
//! is not usage.

use super::{exempt_at, listed, macro_call, path_at, push_at, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if listed(&config.failpoint_allow, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        let hit = macro_call(fa, pos, &["fail_point"]).is_some()
            || path_at(fa, pos, &["failpoint", "::"]);
        if hit {
            push_at(
                fa,
                out,
                pos,
                "failpoint_gate",
                format!(
                    "failpoint usage outside the allowlist ({}); fault-injection sites \
                     are deliberate — extend `[failpoints] allow` in lint.toml if this \
                     module really needs one",
                    config.failpoint_allow.join(", ")
                ),
            );
        }
    }
}
