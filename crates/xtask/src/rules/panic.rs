//! `no_panic`: hot-path files must not call `.unwrap()` / `.expect(...)`
//! or invoke the panicking macros. `assert!`/`debug_assert!` stay
//! allowed — they state entry-point contracts, not per-record control
//! flow.

use super::{exempt_at, listed, macro_call, method_call, push_at, Finding};
use crate::{Config, FileAnalysis};

const PANICKING_METHODS: &[&str] = &["unwrap", "expect"];
const PANICKING_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.hot_path, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        if let Some(name) = method_call(fa, pos, PANICKING_METHODS) {
            // Anchor on the method name, one past the dot.
            push_at(
                fa,
                out,
                pos.saturating_add(1),
                "no_panic",
                format!(
                    "`.{name}(...)` in a hot-path module; handle the case or add \
                     `// lint:allow(no_panic): <reason>`"
                ),
            );
        }
        if let Some(name) = macro_call(fa, pos, PANICKING_MACROS) {
            push_at(
                fa,
                out,
                pos,
                "no_panic",
                format!(
                    "`{name}!` in a hot-path module; handle the case or add \
                     `// lint:allow(no_panic): <reason>`"
                ),
            );
        }
    }
}
