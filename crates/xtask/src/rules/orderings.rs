//! Atomic-ordering rules over the configured concurrency files.
//!
//! * `no_relaxed`: in `[orderings] no_relaxed_files` every
//!   `Ordering::Relaxed` must carry a written justification — the loom
//!   models check the orderings that are there, not the ones someone
//!   quietly weakens later.
//!
//! * `ordering_protocol`: in `[orderings] protocol_files` every atomic
//!   declaration must carry a structured contract comment
//!
//!   ```text
//!   // ordering: load=Acquire, store=SeqCst -- why these orderings
//!   ```
//!
//!   on its own line directly above the declaration (or trailing on the
//!   declaration line). The rule then walks every `load`/`store`/RMW
//!   statement touching that field and flags:
//!
//!   1. an access **weaker than the contract** (per-kind lattices:
//!      loads `Relaxed < Acquire < SeqCst`, stores
//!      `Relaxed < Release < SeqCst`, RMWs
//!      `Relaxed < Acquire = Release < AcqRel < SeqCst`);
//!   2. an access of a kind the contract **does not declare**;
//!   3. an **undeclared atomic** (declaration without a contract);
//!   4. a **malformed contract** (unknown kind, invalid ordering for the
//!      kind, missing `--` rationale, or not attached to a declaration);
//!   5. a contract declaring `load=Acquire` with **no Release-or-stronger
//!      write** to the same field anywhere in the file — an acquire with
//!      nothing to pair with synchronizes nothing;
//!   6. an access whose ordering is **not a literal** `Ordering::` path —
//!      a computed ordering cannot be checked, so it must be justified
//!      with a waiver.
//!
//!   Like every rule, `// lint:allow(ordering_protocol): <reason>` on the
//!   access statement waives a finding (the SPSC single-writer cursor
//!   reads use this: the contract says `load=Acquire`, but a cursor's own
//!   writer may read it `Relaxed`).
//!
//!   Known under-approximations, on purpose: accesses are recognized as
//!   `receiver.field.method(...)` (plus one `[index]` step), so an atomic
//!   reached through a local binding or an iterator is not attributed;
//!   declarations are recognized as `name: AtomicT` / `name: [AtomicT; N]`,
//!   so generic wrappers (`Arc<AtomicU64>`) are not. Both patterns cover
//!   every protocol file in this workspace; the loom models remain the
//!   semantic backstop.

use super::{exempt_at, ident_at, listed, method_call, path_at, punct_at, push_at, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    no_relaxed(fa, config, out);
    ordering_protocol(fa, config, out);
}

fn no_relaxed(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.no_relaxed_files, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        if path_at(fa, pos, &["Ordering", "::", "Relaxed"]) {
            push_at(
                fa,
                out,
                pos.saturating_add(2),
                "no_relaxed",
                "`Ordering::Relaxed` without a `// lint:allow(no_relaxed): <reason>` \
                 justification"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// ordering_protocol
// ---------------------------------------------------------------------------

const RULE: &str = "ordering_protocol";

/// Atomic integer/bool/pointer type names recognized as declarations.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Rmw,
}

impl AccessKind {
    fn name(self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Rmw => "rmw",
        }
    }

    /// Position of `ordering` in this kind's strength lattice; `None` if
    /// the ordering is not legal for the kind (e.g. `Release` on a load).
    fn rank(self, ordering: &str) -> Option<u8> {
        match (self, ordering) {
            (AccessKind::Load, "Relaxed") => Some(0),
            (AccessKind::Load, "Acquire") => Some(1),
            (AccessKind::Load, "SeqCst") => Some(2),
            (AccessKind::Store, "Relaxed") => Some(0),
            (AccessKind::Store, "Release") => Some(1),
            (AccessKind::Store, "SeqCst") => Some(2),
            (AccessKind::Rmw, "Relaxed") => Some(0),
            (AccessKind::Rmw, "Acquire" | "Release") => Some(1),
            (AccessKind::Rmw, "AcqRel") => Some(2),
            (AccessKind::Rmw, "SeqCst") => Some(3),
            _ => None,
        }
    }

    /// Whether an access of this kind with this ordering has release
    /// semantics (can be the write half of an acquire/release pair).
    fn releases(self, ordering: &str) -> bool {
        match self {
            AccessKind::Load => false,
            AccessKind::Store => matches!(ordering, "Release" | "SeqCst"),
            AccessKind::Rmw => matches!(ordering, "Release" | "AcqRel" | "SeqCst"),
        }
    }
}

/// Atomic access methods and how the contract judges them. The second
/// ordering of the two-ordering methods (`compare_exchange*`,
/// `fetch_update`) is the failure/fetch *load*.
const METHODS: &[(&str, AccessKind)] = &[
    ("load", AccessKind::Load),
    ("store", AccessKind::Store),
    ("swap", AccessKind::Rmw),
    ("fetch_add", AccessKind::Rmw),
    ("fetch_sub", AccessKind::Rmw),
    ("fetch_and", AccessKind::Rmw),
    ("fetch_or", AccessKind::Rmw),
    ("fetch_xor", AccessKind::Rmw),
    ("fetch_update", AccessKind::Rmw),
    ("compare_exchange", AccessKind::Rmw),
    ("compare_exchange_weak", AccessKind::Rmw),
];

const METHOD_NAMES: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const TWO_ORDERING_METHODS: &[&str] =
    &["compare_exchange", "compare_exchange_weak", "fetch_update"];

/// One parsed `// ordering:` contract. Each kind maps to
/// `(ordering name, rank)` when declared.
#[derive(Debug)]
struct Contract {
    field: String,
    /// Code position of the declared field's identifier (decl anchor).
    decl_pos: usize,
    load: Option<(String, u8)>,
    store: Option<(String, u8)>,
    rmw: Option<(String, u8)>,
}

impl Contract {
    fn get(&self, kind: AccessKind) -> Option<&(String, u8)> {
        match kind {
            AccessKind::Load => self.load.as_ref(),
            AccessKind::Store => self.store.as_ref(),
            AccessKind::Rmw => self.rmw.as_ref(),
        }
    }
}

fn ordering_protocol(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.protocol_files, &fa.rel) {
        return;
    }
    let contracts = collect_contracts(fa, out);
    check_declarations(fa, &contracts, out);
    let released = check_accesses(fa, &contracts, out);
    // Violation class 5: an Acquire-load contract with nothing to pair
    // with in this file.
    for c in &contracts {
        let needs_release = c.load.as_ref().is_some_and(|(name, _)| name == "Acquire");
        if needs_release && !released.contains(&c.field) {
            push_at(
                fa,
                out,
                c.decl_pos,
                RULE,
                format!(
                    "`{}` declares `load=Acquire` but this file has no Release-or-stronger \
                     write to `{}` — an acquire load with no matching release store \
                     synchronizes nothing",
                    c.field, c.field
                ),
            );
        }
    }
}

/// Scan comment tokens for `// ordering:` contracts, parse them, and
/// attach each to the field declared on the same or next code line.
fn collect_contracts(fa: &FileAnalysis, out: &mut Vec<Finding>) -> Vec<Contract> {
    let mut contracts: Vec<Contract> = Vec::new();
    for tok in &fa.tokens {
        // A contract must be a real comment addressed to the linter (like
        // a waiver), not rendered documentation or prose mentioning the
        // word: `ordering:` has to lead the comment text.
        if !tok.kind.is_comment() || tok.kind.is_doc_comment() {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        let Some(spec) = body.strip_prefix("ordering:") else {
            continue;
        };
        let spec = spec.trim_end_matches("*/");
        // Attach to the first code token at or below the comment's line:
        // its line is the declaration line (covers both the
        // comment-above and trailing-comment placements).
        let decl = fa
            .code
            .iter()
            .position(|&i| fa.tokens.get(i).is_some_and(|t| t.line >= tok.line));
        let Some(first) = decl else {
            push_at(
                fa,
                out,
                fa.code.len().saturating_sub(1),
                RULE,
                "`// ordering:` contract with no declaration below it".to_string(),
            );
            continue;
        };
        let decl_line = fa.code_tok(first).map(|t| t.line).unwrap_or(0);
        let mut field: Option<(String, usize)> = None;
        let mut pos = first;
        while let Some(t) = fa.code_tok(pos) {
            if t.line != decl_line {
                break;
            }
            if ident_at(fa, pos).is_some() && punct_at(fa, pos.saturating_add(1), ":") {
                field = ident_at(fa, pos).map(|name| (name.to_string(), pos));
                break;
            }
            pos = pos.saturating_add(1);
        }
        let Some((field, decl_pos)) = field else {
            push_at(
                fa,
                out,
                first,
                RULE,
                "`// ordering:` contract is not attached to a `name: AtomicT` declaration"
                    .to_string(),
            );
            continue;
        };
        match parse_contract(spec) {
            Ok((load, store, rmw)) => contracts.push(Contract {
                field,
                decl_pos,
                load,
                store,
                rmw,
            }),
            Err(e) => push_at(
                fa,
                out,
                decl_pos,
                RULE,
                format!("malformed `// ordering:` contract on `{field}`: {e}"),
            ),
        }
    }
    contracts
}

type ContractEntries = (
    Option<(String, u8)>,
    Option<(String, u8)>,
    Option<(String, u8)>,
);

/// Parse `load=X, store=Y, rmw=Z -- rationale` (each kind optional, at
/// least one required, rationale required).
fn parse_contract(spec: &str) -> Result<ContractEntries, String> {
    let (entries, rationale) = spec
        .split_once("--")
        .ok_or("missing `-- <rationale>` (say why these orderings)")?;
    if rationale.trim().is_empty() {
        return Err("empty rationale after `--`".to_string());
    }
    let (mut load, mut store, mut rmw) = (None, None, None);
    for entry in entries.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err("empty entry (stray comma?)".to_string());
        }
        let (kind_name, ordering) = entry
            .split_once('=')
            .ok_or_else(|| format!("`{entry}` is not `kind=Ordering`"))?;
        let ordering = ordering.trim();
        let (kind, slot) = match kind_name.trim() {
            "load" => (AccessKind::Load, &mut load),
            "store" => (AccessKind::Store, &mut store),
            "rmw" => (AccessKind::Rmw, &mut rmw),
            other => return Err(format!("unknown kind `{other}` (load/store/rmw)")),
        };
        let rank = kind
            .rank(ordering)
            .ok_or_else(|| format!("`{ordering}` is not a valid {} ordering", kind.name()))?;
        if slot.replace((ordering.to_string(), rank)).is_some() {
            return Err(format!("duplicate `{}` entry", kind.name()));
        }
    }
    if load.is_none() && store.is_none() && rmw.is_none() {
        return Err("contract declares no orderings".to_string());
    }
    Ok((load, store, rmw))
}

/// Violation class 3: every atomic declaration in the file must have a
/// contract. Declarations are `name: AtomicT` or `name: [AtomicT; N]`
/// outside cfg-disabled items; `AtomicT::new(...)` initializer
/// expressions are filtered by the trailing `::`.
fn check_declarations(fa: &FileAnalysis, contracts: &[Contract], out: &mut Vec<Finding>) {
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        let Some(name) = ident_at(fa, pos) else {
            continue;
        };
        if !ATOMIC_TYPES.contains(&name) || punct_at(fa, pos.saturating_add(1), "::") {
            continue;
        }
        let field_pos = if punct_at(fa, pos.wrapping_sub(1), ":") {
            pos.checked_sub(2)
        } else if punct_at(fa, pos.wrapping_sub(1), "[") && punct_at(fa, pos.wrapping_sub(2), ":") {
            pos.checked_sub(3)
        } else {
            continue;
        };
        let Some(field) = field_pos.and_then(|p| ident_at(fa, p)) else {
            continue;
        };
        if !contracts.iter().any(|c| c.field == field) {
            push_at(
                fa,
                out,
                pos,
                RULE,
                format!(
                    "atomic `{field}` in a protocol file has no `// ordering:` contract — \
                     declare `// ordering: load=…, store=…, rmw=… -- <why>` on the line above"
                ),
            );
        }
    }
}

/// Violation classes 1, 2 and 6 over every attributed access; returns the
/// set of fields that have a Release-or-stronger write in this file.
fn check_accesses(
    fa: &FileAnalysis,
    contracts: &[Contract],
    out: &mut Vec<Finding>,
) -> Vec<String> {
    let mut released: Vec<String> = Vec::new();
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        let Some(name) = ident_at(fa, pos) else {
            continue;
        };
        let Some(contract) = contracts.iter().find(|c| c.field == name) else {
            continue;
        };
        // Field accesses only (`recv.field.method(…)`): requiring the
        // leading `.` keeps same-named locals out.
        if !punct_at(fa, pos.wrapping_sub(1), ".") {
            continue;
        }
        // Skip one `[index]` group (`cells.buckets[i].fetch_add(…)`).
        let mut after = pos.saturating_add(1);
        if punct_at(fa, after, "[") {
            let mut depth = 0usize;
            loop {
                if punct_at(fa, after, "[") {
                    depth = depth.saturating_add(1);
                } else if punct_at(fa, after, "]") {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        after = after.saturating_add(1);
                        break;
                    }
                } else if fa.code_tok(after).is_none() {
                    break;
                }
                after = after.saturating_add(1);
            }
        }
        let Some(method) = method_call(fa, after, METHOD_NAMES) else {
            continue;
        };
        let kind = METHODS
            .iter()
            .find(|(m, _)| *m == method)
            .map(|&(_, k)| k)
            .unwrap_or(AccessKind::Rmw);
        // Collect the literal `Ordering::X` arguments inside this
        // statement (the statement bound keeps a neighbouring statement's
        // orderings from leaking in; multi-line calls are one statement).
        let method_pos = after.saturating_add(1);
        let stmt = fa
            .code
            .get(method_pos)
            .and_then(|&i| fa.stmt_of.get(i).copied().flatten());
        let mut orderings: Vec<(usize, String)> = Vec::new();
        let mut q = after.saturating_add(3);
        while let Some(&ti) = fa.code.get(q) {
            if fa.stmt_of.get(ti).copied().flatten() != stmt {
                break;
            }
            if path_at(fa, q, &["Ordering", "::"]) {
                if let Some(x) = ident_at(fa, q.saturating_add(2)) {
                    orderings.push((q.saturating_add(2), x.to_string()));
                    q = q.saturating_add(3);
                    continue;
                }
            }
            q = q.saturating_add(1);
        }
        let two = TWO_ORDERING_METHODS.contains(&method);
        let needed = if two { 2 } else { 1 };
        if orderings.len() < needed {
            push_at(
                fa,
                out,
                method_pos,
                RULE,
                format!(
                    "`{name}.{method}(…)` without a literal `Ordering::` argument — a \
                     computed ordering cannot be checked against the contract"
                ),
            );
            continue;
        }
        // Primary ordering: the access's own kind. For two-ordering
        // methods the second is the failure/fetch load.
        check_one(fa, out, contract, name, method, kind, &orderings[0]);
        if two {
            check_one(
                fa,
                out,
                contract,
                name,
                method,
                AccessKind::Load,
                &orderings[1],
            );
        }
        if kind.releases(&orderings[0].1) && !released.iter().any(|f| f == name) {
            released.push(name.to_string());
        }
    }
    released
}

/// Judge one literal ordering of one access against the contract.
fn check_one(
    fa: &FileAnalysis,
    out: &mut Vec<Finding>,
    contract: &Contract,
    field: &str,
    method: &str,
    kind: AccessKind,
    &(ord_pos, ref ordering): &(usize, String),
) {
    let Some(rank) = kind.rank(ordering) else {
        push_at(
            fa,
            out,
            ord_pos,
            RULE,
            format!(
                "`Ordering::{ordering}` is not a valid {} ordering on `{field}.{method}(…)`",
                kind.name()
            ),
        );
        return;
    };
    match contract.get(kind) {
        None => push_at(
            fa,
            out,
            ord_pos,
            RULE,
            format!(
                "`{field}.{method}(…)` is a {} access but the `// ordering:` contract for \
                 `{field}` declares no {} ordering — extend the contract",
                kind.name(),
                kind.name()
            ),
        ),
        Some((want, want_rank)) if rank < *want_rank => push_at(
            fa,
            out,
            ord_pos,
            RULE,
            format!(
                "`{field}.{method}(Ordering::{ordering})` is weaker than the declared \
                 `{}={want}` contract",
                kind.name()
            ),
        ),
        Some(_) => {}
    }
}
