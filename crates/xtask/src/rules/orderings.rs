//! `no_relaxed`: in the configured concurrency files every
//! `Ordering::Relaxed` must carry a written justification — the loom
//! models check the orderings that are there, not the ones someone
//! quietly weakens later.

use super::{exempt_at, listed, path_at, push_at, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.no_relaxed_files, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        if path_at(fa, pos, &["Ordering", "::", "Relaxed"]) {
            push_at(
                fa,
                out,
                pos.saturating_add(2),
                "no_relaxed",
                "`Ordering::Relaxed` without a `// lint:allow(no_relaxed): <reason>` \
                 justification"
                    .to_string(),
            );
        }
    }
}
