//! Interprocedural (call-graph) rules: `hot_path_purity`,
//! `unsafe_reach` and `opaque_call_budget`.
//!
//! Unlike the per-file rules these run once over the whole workspace,
//! after every file has been analyzed and the call graph built. Their
//! diagnostics anchor at the *entry point* (or audited function) and
//! carry the **blame chain** — the call path that connects the entry to
//! the offending construct — because the fix is usually a restructuring
//! at one of the intermediate hops, not at the effect site.
//!
//! Waivers stay statement-anchored at the *effect site*: a
//! `// lint:allow(hot_path_purity)` on the offending statement waives
//! the transitive finding, and where a per-file base rule covers the
//! same construct in the same file (`no_panic` for panic effects,
//! `no_index` for indexing, in `[hot_path] files`), its existing waiver
//! is honored too — one justified escape hatch, not two.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::callgraph::{self, CallGraph, EffectKind};
use crate::resolve::Workspace;
use crate::{collect_waivers, parse_entry_spec, violation_at, Config, Violation, Waiver};

/// Rules evaluated on the call graph rather than per file. Their
/// waivers are usage-checked here, not by the per-file engine.
pub const GRAPH_RULES: &[&str] = &["hot_path_purity", "unsafe_reach", "opaque_call_budget"];

/// Default transitive deny set when `[callgraph] purity_deny` is
/// omitted: everything panic-capable plus blocking and I/O. `alloc`
/// and `arith` are opt-in — batch-amortized scratch allocation and
/// compound arithmetic on non-counter locals are policy decisions, not
/// universal hot-path sins.
const DEFAULT_DENY: &[EffectKind] = &[
    EffectKind::Panic,
    EffectKind::Index,
    EffectKind::Lock,
    EffectKind::Io,
];

/// Run all graph rules. `Err` is a configuration error (unknown entry
/// point, unresolvable spec) and fails the run with exit 2, exactly
/// like a dangling path in `lint.toml`.
pub fn run(ws: &Workspace, graph: &CallGraph, config: &Config) -> Result<Vec<Violation>, String> {
    let mut waivers: Vec<Vec<Waiver>> = ws.files.iter().map(|f| collect_waivers(&f.fa)).collect();
    let mut out = Vec::new();

    let entries = resolve_entries(ws, config)?;
    hot_path_purity(ws, graph, config, &entries, &mut waivers, &mut out);
    opaque_call_budget(ws, graph, config, &entries, &mut waivers, &mut out);
    unsafe_reach(ws, graph, config, &mut waivers, &mut out);

    // Waiver hygiene for graph rules: the per-file engine defers the
    // unused check for these names to us, since only a whole-tree run
    // knows whether they suppress anything.
    for (file, per_file) in waivers.iter().enumerate() {
        let fa = &ws.files[file].fa;
        for waiver in per_file {
            if fa.exempt.get(waiver.token).copied().unwrap_or(false) {
                continue;
            }
            for (k, rule) in waiver.rules.iter().enumerate() {
                if !GRAPH_RULES.contains(&rule.as_str()) {
                    continue;
                }
                if waiver.used.get(k).copied().unwrap_or(false) {
                    continue;
                }
                let message = format!(
                    "waiver for `{rule}` suppresses nothing reachable from the configured \
                     entry points; delete it"
                );
                if let Some(v) = violation_at(fa, waiver.token, "unused_waiver", message, false) {
                    out.push(v);
                }
            }
        }
    }
    Ok(out)
}

/// Resolve every `[callgraph] entries` spec to a `FnDef` id.
fn resolve_entries(ws: &Workspace, config: &Config) -> Result<Vec<usize>, String> {
    let mut entries = Vec::new();
    for spec in &config.callgraph_entries {
        let (file, ty, name) = parse_entry_spec(spec)?;
        let Some(file_idx) = ws.files.iter().position(|f| f.rel == file) else {
            return Err(format!(
                "lint.toml: [callgraph] entries: `{file}` is not part of the linted tree"
            ));
        };
        let matches: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.file == file_idx && d.name == name && d.self_type.as_deref() == ty.as_deref()
            })
            .map(|(i, _)| i)
            .collect();
        if matches.is_empty() {
            let available: Vec<String> = ws
                .fns
                .iter()
                .filter(|d| d.file == file_idx)
                .map(|d| d.display())
                .collect();
            return Err(format!(
                "lint.toml: [callgraph] entries: `{spec}` does not resolve to a function \
                 in `{file}` (found there: {})",
                if available.is_empty() {
                    "<none>".to_string()
                } else {
                    available.join(", ")
                }
            ));
        }
        entries.extend(matches);
    }
    Ok(entries)
}

/// Waive a graph finding anchored at `(file, token)` when any waiver on
/// that statement names one of `accepted`. Graph-rule names are marked
/// used; base-rule names (`no_panic` …) are left to the per-file pass,
/// which marks them against its own finding on the same statement.
fn waived_at(
    ws: &Workspace,
    waivers: &mut [Vec<Waiver>],
    file: usize,
    token: usize,
    accepted: &[&str],
) -> bool {
    let fa = &ws.files[file].fa;
    let Some(stmt) = fa.stmt_of.get(token).copied().flatten() else {
        return false;
    };
    let mut hit = false;
    for waiver in &mut waivers[file] {
        if waiver.stmt != Some(stmt) {
            continue;
        }
        for (k, rule) in waiver.rules.iter().enumerate() {
            if accepted.contains(&rule.as_str()) {
                hit = true;
                if GRAPH_RULES.contains(&rule.as_str()) {
                    if let Some(slot) = waiver.used.get_mut(k) {
                        *slot = true;
                    }
                }
            }
        }
    }
    hit
}

/// The per-file rule that covers `kind` at `rel`, if any — its waiver
/// is accepted for the transitive finding too.
fn base_rule(config: &Config, rel: &str, kind: EffectKind) -> Option<&'static str> {
    if !config.hot_path.iter().any(|f| f == rel) {
        return None;
    }
    match kind {
        EffectKind::Panic => Some("no_panic"),
        EffectKind::Index => Some("no_index"),
        EffectKind::Arith => Some("counter_arith"),
        _ => None,
    }
}

/// `hot_path_purity`: nothing in the denied effect set may be
/// transitively reachable from a declared hot-path entry point.
fn hot_path_purity(
    ws: &Workspace,
    graph: &CallGraph,
    config: &Config,
    entries: &[usize],
    waivers: &mut [Vec<Waiver>],
    out: &mut Vec<Violation>,
) {
    let deny: HashSet<EffectKind> = if config.purity_deny.is_empty() {
        DEFAULT_DENY.iter().copied().collect()
    } else {
        config
            .purity_deny
            .iter()
            .filter_map(|s| EffectKind::parse(s))
            .collect()
    };
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    for &entry in entries {
        let reach = callgraph::reachable(graph, entry);
        let mut order: Vec<usize> = reach.set.iter().copied().collect();
        order.sort_unstable();
        for f in order {
            let facts = &graph.facts[f];
            let def = &ws.fns[f];
            let rel = ws.files[def.file].rel.clone();
            for effect in &facts.effects {
                if !deny.contains(&effect.kind) {
                    continue;
                }
                if !seen.insert((entry, f, effect.token)) {
                    continue;
                }
                let mut accepted = vec!["hot_path_purity"];
                if let Some(base) = base_rule(config, &rel, effect.kind) {
                    accepted.push(base);
                }
                let waived = waived_at(ws, waivers, def.file, effect.token, &accepted);
                let entry_def = &ws.fns[entry];
                let effect_line = ws.files[def.file]
                    .fa
                    .tokens
                    .get(effect.token)
                    .map_or(0, |t| t.line);
                let chain = callgraph::blame_chain(ws, &reach, entry, f);
                let message = format!(
                    "hot-path entry `{}` transitively reaches {} ({}) at {rel}:{effect_line}; \
                     call chain: {chain}",
                    entry_def.display(),
                    effect.what,
                    effect.kind.name(),
                );
                let entry_fa = &ws.files[entry_def.file].fa;
                if let Some(v) = violation_at(
                    entry_fa,
                    entry_def.name_token,
                    "hot_path_purity",
                    message,
                    waived,
                ) {
                    out.push(v);
                }
            }
        }
    }
}

/// `opaque_call_budget`: functions on the hot path (reachable from any
/// entry) may not exceed the configured number of syntactically
/// indirect — and therefore unanalyzable — calls.
fn opaque_call_budget(
    ws: &Workspace,
    graph: &CallGraph,
    config: &Config,
    entries: &[usize],
    waivers: &mut [Vec<Waiver>],
    out: &mut Vec<Violation>,
) {
    let Some(budget) = config.opaque_budget else {
        return;
    };
    let mut hot: BTreeSet<usize> = BTreeSet::new();
    for &entry in entries {
        hot.extend(callgraph::reachable(graph, entry).set);
    }
    for f in hot {
        let count = graph.facts[f].opaque.len() as u64;
        if count <= budget {
            continue;
        }
        let def = &ws.fns[f];
        let fa = &ws.files[def.file].fa;
        let waived = waived_at(
            ws,
            waivers,
            def.file,
            def.name_token,
            &["opaque_call_budget"],
        );
        let message = format!(
            "hot-path fn `{}` makes {count} unresolved indirect call(s) (budget {budget}); \
             replace closures/fn-pointers with named calls the analysis can follow, or \
             raise `[callgraph] opaque_budget`",
            def.display(),
        );
        if let Some(v) = violation_at(fa, def.name_token, "opaque_call_budget", message, waived) {
            out.push(v);
        }
    }
}

/// `unsafe_reach`: every public fn in the audited files that
/// transitively reaches an `unsafe` block must name the unsafe module
/// (its file stem, e.g. `spsc`) in the doc/SAFETY comment block
/// directly above the fn.
fn unsafe_reach(
    ws: &Workspace,
    graph: &CallGraph,
    config: &Config,
    waivers: &mut [Vec<Waiver>],
    out: &mut Vec<Violation>,
) {
    for rel in &config.unsafe_reach_files {
        let Some(file_idx) = ws.files.iter().position(|f| &f.rel == rel) else {
            continue; // validate_config_paths guarantees existence on disk
        };
        let fns: Vec<usize> = ws.fns_in_file(file_idx).collect();
        for f in fns {
            let def = &ws.fns[f];
            if !def.is_pub || def.body.is_none() {
                continue;
            }
            let reach = callgraph::reachable(graph, f);
            // Unsafe modules this fn depends on, with one witness chain
            // per module for the diagnostic.
            let mut unsafe_files: BTreeMap<String, usize> = BTreeMap::new();
            for &t in &reach.set {
                if graph.facts[t].has_unsafe {
                    let file = ws.files[ws.fns[t].file].rel.clone();
                    unsafe_files.entry(file).or_insert(t);
                }
            }
            if unsafe_files.is_empty() {
                continue;
            }
            let fa = &ws.files[file_idx].fa;
            let doc = doc_text_above(fa, def.first_token);
            for (unsafe_rel, witness) in unsafe_files {
                let stem = file_stem(&unsafe_rel);
                if doc.contains(stem) {
                    continue;
                }
                let waived = waived_at(ws, waivers, def.file, def.name_token, &["unsafe_reach"]);
                let chain = callgraph::blame_chain(ws, &reach, f, witness);
                let message = format!(
                    "public fn `{}` transitively reaches unsafe code in {unsafe_rel} \
                     (call chain: {chain}) but its doc comment does not mention `{stem}`; \
                     document the safety dependency",
                    def.display(),
                );
                if let Some(v) = violation_at(fa, def.name_token, "unsafe_reach", message, waived) {
                    out.push(v);
                }
            }
        }
    }
}

/// The contiguous comment block directly above the token's line,
/// skipping attribute lines (`#[inline]`) that sit between docs and the
/// item. Returns the concatenated comment text.
fn doc_text_above(fa: &crate::FileAnalysis, token: usize) -> String {
    let Some(first_line) = fa.tokens.get(token).map(|t| t.line) else {
        return String::new();
    };
    let mut out = String::new();
    let mut line = first_line.saturating_sub(1);
    while line >= 1 {
        let text = fa
            .lines
            .get(line.saturating_sub(1))
            .map_or("", |l| l.trim());
        if fa.line_comment_only(line) {
            out.push_str(text);
            out.push('\n');
            line = line.saturating_sub(1);
        } else if text.starts_with("#[") || text.starts_with("#![") {
            line = line.saturating_sub(1);
        } else {
            break;
        }
    }
    out
}

/// `crates/core/src/spsc.rs` → `spsc`.
fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .strip_suffix(".rs")
        .unwrap_or(rel)
}
