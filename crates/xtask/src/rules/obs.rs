//! `obs_hot_path`: the wait-free metrics contract, in two parts.
//!
//! * **Metrics files** (the metric-cell implementation) must stay
//!   `Relaxed`-only: no locks (`Mutex`/`RwLock`/`Condvar`/`.lock()`)
//!   and no atomic ordering stronger than `Relaxed`.
//! * **Call-site files** (hot paths that bump metrics): a metric update
//!   (`.inc(` / `.record(` / `.add(` / `.set(`) must not share a
//!   **statement** with a lock or a strong ordering. Statement-level
//!   analysis closes the old line-break evasion (`lock()\n.map(|_|
//!   c.inc())` fires) and drops the old false positive where two
//!   independent statements merely shared a line (`stalls.inc(); let g
//!   = m.lock();` is clean — the lock is not on the metric's path).

use super::{exempt_at, ident_at, listed, method_call, path_at, Finding};
use crate::{Config, FileAnalysis};

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];
const LOCK_METHODS: &[&str] = &["lock", "try_lock"];
const STRONG_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];
const UPDATE_METHODS: &[&str] = &["inc", "record", "add", "set"];

/// If code position `pos` starts a blocking construct, a short label
/// for it.
fn blocking_at(fa: &FileAnalysis, pos: usize) -> Option<String> {
    if let Some(name) = ident_at(fa, pos) {
        if LOCK_TYPES.contains(&name) {
            return Some(format!("`{name}`"));
        }
        if name == "Ordering" {
            for ordering in STRONG_ORDERINGS {
                if path_at(fa, pos, &["Ordering", "::", ordering]) {
                    return Some(format!("`Ordering::{ordering}`"));
                }
            }
        }
    }
    if let Some(name) = method_call(fa, pos, LOCK_METHODS) {
        return Some(format!("`.{name}()`"));
    }
    None
}

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    // Part 1: the metric-cell and span-ring implementations are
    // Relaxed-only (a span record sits on the same hot path a counter
    // bump does).
    if listed(&config.obs_metrics_files, &fa.rel) || listed(&config.obs_trace_files, &fa.rel) {
        for pos in 0..fa.code.len() {
            if exempt_at(fa, pos) {
                continue;
            }
            if let Some(label) = blocking_at(fa, pos) {
                if let Some(&token) = fa.code.get(pos) {
                    out.push(Finding {
                        token,
                        rule: "obs_hot_path",
                        message: format!(
                            "{label} in a wait-free obs module; metric cells and span \
                             rings must use `Relaxed` atomics only — stronger \
                             primitives belong to the journal/registry tiers"
                        ),
                    });
                }
            }
        }
    }

    // Part 2: call sites — update and blocking construct in the same
    // statement.
    if !listed(&config.obs_call_site_files, &fa.rel) {
        return;
    }
    // Per statement: first update position and first blocking label.
    let mut updates: Vec<Option<usize>> = vec![None; fa.stmt_count];
    let mut blockers: Vec<Option<String>> = vec![None; fa.stmt_count];
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        let Some(stmt) = fa
            .code
            .get(pos)
            .and_then(|&i| fa.stmt_of.get(i).copied().flatten())
        else {
            continue;
        };
        if method_call(fa, pos, UPDATE_METHODS).is_some() {
            if let Some(slot) = updates.get_mut(stmt) {
                // Anchor on the method name token.
                slot.get_or_insert(pos.saturating_add(1));
            }
        }
        if let Some(label) = blocking_at(fa, pos) {
            if let Some(slot) = blockers.get_mut(stmt) {
                slot.get_or_insert(label);
            }
        }
    }
    for (stmt, update) in updates.iter().enumerate() {
        let (Some(update_pos), Some(label)) = (update, blockers.get(stmt).and_then(|b| b.as_ref()))
        else {
            continue;
        };
        if let Some(&token) = fa.code.get(*update_pos) {
            out.push(Finding {
                token,
                rule: "obs_hot_path",
                message: format!(
                    "metric update sharing a statement with {label}; hot-path \
                     instrumentation must stay wait-free — keep locks and strong \
                     orderings out of the metric-update statement"
                ),
            });
        }
    }
}
