//! `atomic_io`: in checkpoint-I/O modules, bare file-writing calls
//! (`File::create`, `fs::write`, `OpenOptions::new`) are banned —
//! checkpoint bytes must flow through the temp-file + fsync +
//! atomic-rename helper so a crash can never tear a published
//! generation in place. The helper itself carries the one waiver.

use super::{exempt_at, listed, path_at, push_at, Finding};
use crate::{Config, FileAnalysis};

const BARE_WRITE_PATHS: &[&[&str]] = &[
    &["File", "::", "create"],
    &["fs", "::", "write"],
    &["OpenOptions", "::", "new"],
];

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.atomic_io_files, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        for path in BARE_WRITE_PATHS {
            if path_at(fa, pos, path) {
                push_at(
                    fa,
                    out,
                    pos,
                    "atomic_io",
                    format!(
                        "bare `{}` in a checkpoint-I/O module; write through the \
                         temp-file + fsync + atomic-rename helper (or add \
                         `// lint:allow(atomic_io): <reason>` on the helper itself)",
                        path.join("")
                    ),
                );
            }
        }
    }
}
