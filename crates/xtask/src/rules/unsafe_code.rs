//! `unsafe_allowlist` + `safety_comment`: `unsafe` may appear only in
//! the configured files, and every `unsafe` token there must be covered
//! by a `// SAFETY:` comment on the same line or in the contiguous
//! comment block directly above.

use super::{exempt_at, ident_at, listed, push_at, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    let allowed = listed(&config.unsafe_allow, &fa.rel);
    for pos in 0..fa.code.len() {
        if ident_at(fa, pos) != Some("unsafe") || exempt_at(fa, pos) {
            continue;
        }
        if !allowed {
            push_at(
                fa,
                out,
                pos,
                "unsafe_allowlist",
                format!(
                    "`unsafe` outside the allowlist ({}); move the code behind a safe \
                     abstraction or extend `[unsafe_code] allow` in lint.toml",
                    config.unsafe_allow.join(", ")
                ),
            );
        } else if !safety_covered(fa, pos) {
            push_at(
                fa,
                out,
                pos,
                "safety_comment",
                "`unsafe` without a `// SAFETY:` comment explaining why the invariants hold"
                    .to_string(),
            );
        }
    }
}

/// SAFETY coverage: a comment containing `SAFETY:` on the token's line,
/// or in the contiguous run of comment-only lines directly above it.
fn safety_covered(fa: &FileAnalysis, pos: usize) -> bool {
    let Some(tok) = fa.code_tok(pos) else {
        return false;
    };
    let line = tok.line; // 1-based
    if fa.line_has_safety(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l = l.saturating_sub(1);
        if !fa.line_comment_only(l) {
            return false;
        }
        if fa.line_has_safety(l) {
            return true;
        }
    }
    false
}
