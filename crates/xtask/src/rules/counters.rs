//! `counter_arith`: compound arithmetic assignment (`+=`, `-=`, `*=`)
//! on the configured counter fields is banned in hot-path files — the
//! overflow mode must be spelled out (`saturating_*` / `checked_*` /
//! `wrapping_*`). Tokenization gives exact word boundaries: `freq += 1`
//! fires, `frequency += 1` does not.

use super::{exempt_at, ident_at, listed, push_at, Finding};
use crate::{Config, FileAnalysis};

const COMPOUND_OPS: &[&str] = &["+=", "-=", "*="];

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.hot_path, &fa.rel) {
        return;
    }
    for pos in 0..fa.code.len() {
        if exempt_at(fa, pos) {
            continue;
        }
        let Some(name) = ident_at(fa, pos) else {
            continue;
        };
        if !config.counter_fields.iter().any(|f| f == name) {
            continue;
        }
        let compound = fa
            .code_tok(pos.saturating_add(1))
            .is_some_and(|t| COMPOUND_OPS.contains(&t.text.as_str()));
        if compound {
            push_at(
                fa,
                out,
                pos,
                "counter_arith",
                format!(
                    "compound arithmetic on counter `{name}`; use \
                     saturating_*/checked_*/wrapping_* instead"
                ),
            );
        }
    }
}
