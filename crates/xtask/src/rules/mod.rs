//! Token-tree lint rules.
//!
//! Every rule is a pure function over a [`FileAnalysis`] (tokens +
//! tree + statement map + cfg-exemption mask) that emits raw
//! [`Finding`]s — token index, rule name, message. Waiver matching,
//! position resolution and formatting happen in the engine
//! (`lib.rs`), so a rule only has to recognize its pattern in *code*
//! tokens; comments, strings and `#[cfg(test)]` items are already
//! invisible by construction.

use crate::lexer::TokenKind;
use crate::FileAnalysis;

pub mod atomic_io;
pub mod counters;
pub mod failpoints;
pub mod graph;
pub mod index;
pub mod obs;
pub mod orderings;
pub mod panic;
pub mod simd;
pub mod unsafe_code;

/// A raw rule hit: `token` is the index (into `FileAnalysis::tokens`)
/// of the token the diagnostic anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub token: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Rules a `// lint:allow(<rule>)` comment may waive. `unsafe_allowlist`
/// is deliberately absent: the allowlist in lint.toml *is* its waiver
/// mechanism, and `safety_comment` is fixed by writing the SAFETY
/// comment itself.
pub const WAIVABLE_RULES: &[&str] = &[
    "no_panic",
    "no_index",
    "counter_arith",
    "no_relaxed",
    "ordering_protocol",
    "failpoint_gate",
    "atomic_io",
    "obs_hot_path",
    "hot_path_purity",
    "unsafe_reach",
    "opaque_call_budget",
];

/// Run every rule over one analyzed file.
pub fn run_all(fa: &FileAnalysis, config: &crate::Config) -> Vec<Finding> {
    let mut out = Vec::new();
    unsafe_code::check(fa, config, &mut out);
    simd::check(fa, config, &mut out);
    panic::check(fa, config, &mut out);
    index::check(fa, config, &mut out);
    counters::check(fa, config, &mut out);
    orderings::check(fa, config, &mut out);
    failpoints::check(fa, config, &mut out);
    atomic_io::check(fa, config, &mut out);
    obs::check(fa, config, &mut out);
    out
}

// ---- shared token-pattern helpers (code positions, not token indices) ----

/// The identifier text at code position `pos`, if it is an identifier.
pub(crate) fn ident_at(fa: &FileAnalysis, pos: usize) -> Option<&str> {
    let tok = fa.code_tok(pos)?;
    (tok.kind == TokenKind::Ident).then_some(tok.text.as_str())
}

/// Whether code position `pos` is the punct `text`.
pub(crate) fn punct_at(fa: &FileAnalysis, pos: usize, text: &str) -> bool {
    fa.code_tok(pos)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// `path_at(fa, pos, &["Ordering", "::", "Relaxed"])` — exact token run.
pub(crate) fn path_at(fa: &FileAnalysis, pos: usize, parts: &[&str]) -> bool {
    parts.iter().enumerate().all(|(k, part)| {
        fa.code_tok(pos.saturating_add(k))
            .is_some_and(|t| t.text == *part)
    })
}

/// Method-call pattern at code position `pos`: `.` NAME `(` where NAME is
/// in `names`. Returns the matched name.
pub(crate) fn method_call<'a>(fa: &FileAnalysis, pos: usize, names: &[&'a str]) -> Option<&'a str> {
    if !punct_at(fa, pos, ".") {
        return None;
    }
    let name = ident_at(fa, pos.saturating_add(1))?;
    if !punct_at(fa, pos.saturating_add(2), "(") {
        return None;
    }
    names.iter().find(|n| **n == name).copied()
}

/// Macro-invocation pattern: NAME `!` where NAME is in `names`.
pub(crate) fn macro_call<'a>(fa: &FileAnalysis, pos: usize, names: &[&'a str]) -> Option<&'a str> {
    let name = ident_at(fa, pos)?;
    if !punct_at(fa, pos.saturating_add(1), "!") {
        return None;
    }
    names.iter().find(|n| **n == name).copied()
}

/// Whether the code token at position `pos` sits in a cfg-disabled item.
pub(crate) fn exempt_at(fa: &FileAnalysis, pos: usize) -> bool {
    fa.code
        .get(pos)
        .is_some_and(|&i| fa.exempt.get(i).copied().unwrap_or(false))
}

/// Push a finding anchored at code position `pos`.
pub(crate) fn push_at(
    fa: &FileAnalysis,
    out: &mut Vec<Finding>,
    pos: usize,
    rule: &'static str,
    message: String,
) {
    if let Some(&token) = fa.code.get(pos) {
        out.push(Finding {
            token,
            rule,
            message,
        });
    }
}

/// Whether `rel` appears in `list` (exact workspace-relative match).
pub(crate) fn listed(list: &[String], rel: &str) -> bool {
    list.iter().any(|f| f == rel)
}
