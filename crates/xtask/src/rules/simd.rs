//! `simd_gate`: explicit SIMD stays quarantined.
//!
//! Two patterns are restricted to the modules listed in `[simd] modules`
//! (lint.toml):
//!
//! * `core::arch` / `std::arch` paths — naming an intrinsic module
//!   anywhere else means vector code is leaking out of the gated,
//!   runtime-detected scan module.
//! * `allow(unsafe_code)` — the file-level escape hatch from the crate's
//!   `#![deny(unsafe_code)]`. It is additionally permitted in the
//!   `[unsafe_code] allow` files (the SPSC ring), since those files hold
//!   their own file-level allow; anywhere else it would silently widen
//!   the unsafe surface without tripping `unsafe_allowlist` until real
//!   `unsafe` tokens appear.
//!
//! Deliberately not waivable: like `unsafe_allowlist`, the config list
//! *is* the waiver mechanism.

use super::{ident_at, listed, path_at, push_at, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    let simd_listed = listed(&config.simd_allow, &fa.rel);
    let unsafe_listed = listed(&config.unsafe_allow, &fa.rel);
    for pos in 0..fa.code.len() {
        // Arch-intrinsic paths. No exempt_at: a cfg-gated intrinsic in the
        // wrong file is still vector code in the wrong file.
        if !simd_listed
            && (path_at(fa, pos, &["core", "::", "arch"])
                || path_at(fa, pos, &["std", "::", "arch"]))
        {
            push_at(
                fa,
                out,
                pos,
                "simd_gate",
                format!(
                    "arch intrinsics outside the simd modules ({}); keep explicit \
                     vector code in the gated scan module or extend `[simd] modules` \
                     in lint.toml",
                    join_or_none(&config.simd_allow)
                ),
            );
        }
        // `allow ( unsafe_code )` — both `#![allow(...)]` and `#[allow(...)]`
        // reduce to this token run once delimiters are individual tokens.
        if !simd_listed
            && !unsafe_listed
            && ident_at(fa, pos) == Some("allow")
            && path_at(fa, pos.saturating_add(1), &["(", "unsafe_code", ")"])
        {
            push_at(
                fa,
                out,
                pos,
                "simd_gate",
                "`allow(unsafe_code)` outside the unsafe/simd allowlists; the crate-level \
                 `deny(unsafe_code)` must not be overridden elsewhere"
                    .to_string(),
            );
        }
    }
}

fn join_or_none(list: &[String]) -> String {
    if list.is_empty() {
        "<none configured>".to_string()
    } else {
        list.join(", ")
    }
}
