//! `no_index`: expression-level `[...]` indexing detection in hot-path
//! files.
//!
//! A `[` opening a bracket group is an *index expression* iff the
//! previous code token can end an indexable expression: an identifier
//! that is not a keyword, a raw identifier, or a closing `)` / `]`.
//! Everything else — attributes (`#[...]`), macro invocations
//! (`vec![...]`), slice patterns (`let [a, b] = ..`), array types
//! (`[u8; 4]`), array literals (`= [1, 2]`) — is structurally not an
//! index and never flagged, so no waiver is needed for them.

use crate::lexer::{is_keyword, TokenKind};
use crate::rules::{listed, Finding};
use crate::{Config, FileAnalysis};

/// Shared predicate: the `[` at token index `open` starts an *index
/// expression* (as opposed to an attribute, macro body, slice pattern,
/// array type or array literal). Returns the text of the indexed
/// expression's last token when it does. Reused by the interprocedural
/// purity analysis so both layers agree on what indexing *is*.
pub(crate) fn index_expr_open(fa: &FileAnalysis, open: usize) -> Option<String> {
    let pos = fa.code_pos(open)?;
    let prev = pos.checked_sub(1).and_then(|p| fa.code_tok(p))?;
    let indexes = match prev.kind {
        TokenKind::Ident => !is_keyword(&prev.text),
        TokenKind::RawIdent => true,
        TokenKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    };
    indexes.then(|| prev.text.clone())
}

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.hot_path, &fa.rel) {
        return;
    }
    for &open in &fa.bracket_opens {
        if fa.exempt.get(open).copied().unwrap_or(false) {
            continue;
        }
        if let Some(prev) = index_expr_open(fa, open) {
            out.push(Finding {
                token: open,
                rule: "no_index",
                message: format!(
                    "`{prev}[...]` indexing in a hot-path module; use `.get()` or add \
                     `// lint: index-ok (<reason>)`"
                ),
            });
        }
    }
}
