//! `no_index`: expression-level `[...]` indexing detection in hot-path
//! files.
//!
//! A `[` opening a bracket group is an *index expression* iff the
//! previous code token can end an indexable expression: an identifier
//! that is not a keyword, a raw identifier, or a closing `)` / `]`.
//! Everything else — attributes (`#[...]`), macro invocations
//! (`vec![...]`), slice patterns (`let [a, b] = ..`), array types
//! (`[u8; 4]`), array literals (`= [1, 2]`) — is structurally not an
//! index and never flagged, so no waiver is needed for them.

use crate::lexer::{is_keyword, TokenKind};
use crate::rules::{listed, Finding};
use crate::{Config, FileAnalysis};

pub fn check(fa: &FileAnalysis, config: &Config, out: &mut Vec<Finding>) {
    if !listed(&config.hot_path, &fa.rel) {
        return;
    }
    for &open in &fa.bracket_opens {
        if fa.exempt.get(open).copied().unwrap_or(false) {
            continue;
        }
        let Some(pos) = fa.code_pos(open) else {
            continue;
        };
        let Some(prev) = pos.checked_sub(1).and_then(|p| fa.code_tok(p)) else {
            continue;
        };
        let indexes = match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::RawIdent => true,
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if indexes {
            out.push(Finding {
                token: open,
                rule: "no_index",
                message: format!(
                    "`{}[...]` indexing in a hot-path module; use `.get()` or add \
                     `// lint: index-ok (<reason>)`",
                    prev.text
                ),
            });
        }
    }
}
