//! Brace-matched token trees and statement segmentation.
//!
//! The tree layer groups the flat token stream into nested
//! `(...)`/`[...]`/`{...}` groups (comments and the shebang are left
//! out, so "previous sibling" means the previous *code* token), then
//! assigns every code token to its innermost **statement** — the unit
//! the rules and waivers operate on.
//!
//! Statement model: only `{...}` groups open a statement scope. Within
//! a scope, statements split at `;` and after a nested brace group,
//! unless the token following the group continues the expression
//! (`.`, `?`, `;`, `=>`, `else`) — so `match x { .. }` headers,
//! `if/else` chains and `S { .. }.method()` stay one statement while
//! consecutive items (`fn a() {..} fn b() {..}`) split. Paren/bracket
//! group contents belong to the enclosing statement; a closure body
//! `|| { ... }` opens its own scope like any other brace group.

use crate::lexer::{Token, TokenKind};

/// Delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

impl Delim {
    fn of(text: &str) -> Option<(Delim, bool)> {
        match text {
            "(" => Some((Delim::Paren, true)),
            ")" => Some((Delim::Paren, false)),
            "[" => Some((Delim::Bracket, true)),
            "]" => Some((Delim::Bracket, false)),
            "{" => Some((Delim::Brace, true)),
            "}" => Some((Delim::Brace, false)),
            _ => None,
        }
    }
}

/// A node: either a single non-delimiter token (by index into the token
/// vector) or a delimited group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    Leaf(usize),
    Group(Group),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter.
    pub close: usize,
    pub children: Vec<Tree>,
}

impl Tree {
    /// Token index of the first token of this node.
    pub fn first_token(&self) -> usize {
        match self {
            Tree::Leaf(i) => *i,
            Tree::Group(g) => g.open,
        }
    }
}

/// Build the forest for a whole file. Comments and the shebang are
/// excluded. Fails on unbalanced or mismatched delimiters.
pub fn build(tokens: &[Token]) -> Result<Vec<Tree>, String> {
    let mut stack: Vec<Group> = Vec::new();
    let mut root: Vec<Tree> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind.is_comment() || tok.kind == TokenKind::Shebang {
            continue;
        }
        let delim = if tok.kind == TokenKind::Punct {
            Delim::of(&tok.text)
        } else {
            None
        };
        match delim {
            Some((d, true)) => stack.push(Group {
                delim: d,
                open: i,
                close: i,
                children: Vec::new(),
            }),
            Some((d, false)) => {
                let mut group = stack
                    .pop()
                    .ok_or_else(|| format!("{}:{}: unmatched `{}`", tok.line, tok.col, tok.text))?;
                if group.delim != d {
                    return Err(format!(
                        "{}:{}: mismatched delimiter `{}`",
                        tok.line, tok.col, tok.text
                    ));
                }
                group.close = i;
                let tree = Tree::Group(group);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(tree),
                    None => root.push(tree),
                }
            }
            None => {
                let tree = Tree::Leaf(i);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(tree),
                    None => root.push(tree),
                }
            }
        }
    }
    if let Some(open) = stack.last() {
        let tok = &tokens[open.open];
        return Err(format!("{}:{}: unclosed `{}`", tok.line, tok.col, tok.text));
    }
    Ok(root)
}

/// Per-token statement assignment: `stmt_of[token_index]` is the id of
/// the innermost statement containing that token (`None` for comments
/// and the shebang).
#[derive(Debug, Clone)]
pub struct Statements {
    pub stmt_of: Vec<Option<usize>>,
    /// Number of statements assigned.
    pub count: usize,
}

/// Tokens that, when following a `}` group, continue the current
/// statement instead of ending it.
fn continues_statement(tok: &Token) -> bool {
    match tok.kind {
        TokenKind::Punct => matches!(tok.text.as_str(), "." | "?" | ";" | "=>"),
        TokenKind::Ident => tok.text == "else",
        _ => false,
    }
}

struct Segmenter<'a> {
    tokens: &'a [Token],
    stmt_of: Vec<Option<usize>>,
    /// Global id counter — statement ids are unique across all scopes.
    counter: usize,
}

impl Segmenter<'_> {
    fn new_id(&mut self) -> usize {
        let id = self.counter;
        self.counter = self.counter.saturating_add(1);
        id
    }

    fn assign(&mut self, i: usize, stmt: usize) {
        if let Some(slot) = self.stmt_of.get_mut(i) {
            *slot = Some(stmt);
        }
    }

    /// Assign a subtree to statement `stmt`; nested brace groups open
    /// their own statement scopes (delimiters stay with `stmt`).
    fn assign_tree(&mut self, tree: &Tree, stmt: usize) {
        match tree {
            Tree::Leaf(i) => self.assign(*i, stmt),
            Tree::Group(g) => {
                self.assign(g.open, stmt);
                self.assign(g.close, stmt);
                if g.delim == Delim::Brace {
                    self.scope(&g.children);
                } else {
                    for child in &g.children {
                        self.assign_tree(child, stmt);
                    }
                }
            }
        }
    }

    /// Segment a brace scope (or the file root) into statements.
    fn scope(&mut self, trees: &[Tree]) {
        let mut current: Option<usize> = None;
        let mut iter = trees.iter().peekable();
        while let Some(tree) = iter.next() {
            let stmt = match current {
                Some(id) => id,
                None => {
                    let id = self.new_id();
                    current = Some(id);
                    id
                }
            };
            match tree {
                Tree::Leaf(i) => {
                    self.assign(*i, stmt);
                    if self.tokens.get(*i).is_some_and(|t| t.text == ";") {
                        current = None;
                    }
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    self.assign(g.open, stmt);
                    self.assign(g.close, stmt);
                    self.scope(&g.children);
                    let cont = iter.peek().is_some_and(|next| match next {
                        Tree::Leaf(j) => self.tokens.get(*j).is_some_and(continues_statement),
                        Tree::Group(_) => false,
                    });
                    if !cont {
                        current = None;
                    }
                }
                Tree::Group(_) => self.assign_tree(tree, stmt),
            }
        }
    }
}

/// Compute the statement assignment for a file.
pub fn segment(tokens: &[Token], root: &[Tree]) -> Statements {
    let mut seg = Segmenter {
        tokens,
        stmt_of: vec![None; tokens.len()],
        counter: 0,
    };
    seg.scope(root);
    Statements {
        stmt_of: seg.stmt_of,
        count: seg.counter,
    }
}
