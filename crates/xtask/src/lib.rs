//! Workspace invariant linter (`cargo run -p xtask -- lint`).
//!
//! Enforces the concurrency-and-overflow discipline that the loom models
//! and the clippy configuration establish, so it cannot erode silently:
//!
//! * **unsafe_allowlist** — `unsafe` may appear only in the files listed
//!   under `[unsafe_code] allow` in `lint.toml`.
//! * **safety_comment** — every `unsafe` token (block or impl) must be
//!   covered by a `// SAFETY:` comment on the same line or in the comment
//!   block directly above it.
//! * **no_panic** — hot-path files must not call `.unwrap()`, `.expect(`,
//!   or the panicking macros (`panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`). `assert!`/`debug_assert!` stay allowed: they state
//!   entry-point contracts, not per-record control flow.
//! * **no_index** — hot-path files must not use `expr[...]` indexing;
//!   `.get()`-based access or an explicit waiver is required.
//! * **counter_arith** — compound arithmetic assignment (`+=`, `-=`, `*=`)
//!   on the configured counter fields is banned in hot-path files; the
//!   overflow mode must be spelled out (`saturating_*`, `checked_*`,
//!   `wrapping_*`).
//! * **no_relaxed** — in the configured concurrency files, every
//!   `Ordering::Relaxed` needs a written justification.
//! * **failpoint_gate** — `fail_point!` / `failpoint::` may appear only in
//!   the files listed under `[failpoints] allow`: the fault-injection
//!   surface stays deliberate, not something that spreads into arbitrary
//!   modules (and production binaries compile it out via the `failpoints`
//!   feature).
//! * **atomic_io** — in the files listed under `[atomic_io] files`, bare
//!   file-writing calls (`File::create`, `fs::write`, `OpenOptions::new`)
//!   are banned: checkpoint bytes must flow through the temp-file +
//!   fsync + atomic-rename helper so a crash can never tear a generation
//!   in place.
//! * **obs_hot_path** — the wait-free metrics contract. Files under
//!   `[obs] metrics_files` (the metric-cell implementation) may not use
//!   locks (`Mutex`, `RwLock`, `Condvar`, `.lock(`) or any atomic ordering
//!   stronger than `Relaxed`; in `[obs] call_site_files` (the hot paths
//!   that bump metrics) a metric update (`.inc(`, `.record(`, `.add(`,
//!   `.set(`) must not share a line with a lock or a strong ordering —
//!   instrumentation must never add a wait to the record path.
//!
//! The analysis is lexical, not syntactic: comments, string/char literals
//! and raw strings are blanked first (preserving line structure), then the
//! rules pattern-match the remaining code. `#[cfg(test)]` item bodies are
//! exempt — unit tests may use `unwrap` and plain arithmetic, the test
//! profile compiles them with overflow checks.
//!
//! Waivers, on the offending line or the line directly above:
//!
//! ```text
//! // lint:allow(<rule>): <reason>
//! // lint: index-ok (<reason>)        — shorthand for no_index
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, formatted as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Directories (relative to the workspace root) to lint.
    pub roots: Vec<String>,
    /// Directory names skipped anywhere under a root.
    pub skip: Vec<String>,
    /// Files allowed to contain `unsafe`.
    pub unsafe_allow: Vec<String>,
    /// Hot-path files subject to no_panic / no_index / counter_arith.
    pub hot_path: Vec<String>,
    /// Counter field names checked by counter_arith.
    pub counter_fields: Vec<String>,
    /// Files where `Ordering::Relaxed` needs a justification.
    pub no_relaxed_files: Vec<String>,
    /// Files allowed to reference the failpoint facility.
    pub failpoint_allow: Vec<String>,
    /// Files whose file-writing calls must go through the atomic-rename
    /// helper.
    pub atomic_io_files: Vec<String>,
    /// Metric-cell implementation files that must stay wait-free: no locks,
    /// no atomic ordering stronger than `Relaxed`.
    pub obs_metrics_files: Vec<String>,
    /// Hot-path files where a metric update must not share a line with a
    /// lock or a strong atomic ordering.
    pub obs_call_site_files: Vec<String>,
}

/// Parse the TOML subset `lint.toml` uses: `[section]` headers and
/// `key = "string"` / `key = ["array", "of", "strings"]` entries (arrays
/// may span lines). Anything fancier is rejected loudly rather than
/// misread silently.
pub fn parse_config(text: &str) -> Result<Config, String> {
    let mut config = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multiline array: keep consuming lines until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            for (cont_idx, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_toml_comment(cont).trim());
                if balanced_array(&value) {
                    break;
                }
                if cont_idx + 1 == text.lines().count() {
                    return Err(format!("lint.toml:{}: unterminated array", idx + 1));
                }
            }
        }
        let values = parse_string_array(&value)
            .map_err(|e| format!("lint.toml:{}: {} (key `{}`)", idx + 1, e, key))?;
        match (section.as_str(), key) {
            ("paths", "roots") => config.roots = values,
            ("paths", "skip") => config.skip = values,
            ("unsafe_code", "allow") => config.unsafe_allow = values,
            ("hot_path", "files") => config.hot_path = values,
            ("counters", "fields") => config.counter_fields = values,
            ("orderings", "no_relaxed_files") => config.no_relaxed_files = values,
            ("failpoints", "allow") => config.failpoint_allow = values,
            ("atomic_io", "files") => config.atomic_io_files = values,
            ("obs", "metrics_files") => config.obs_metrics_files = values,
            ("obs", "call_site_files") => config.obs_call_site_files = values,
            _ => {
                return Err(format!(
                    "lint.toml:{}: unknown key `{}` in section `[{}]`",
                    idx + 1,
                    key,
                    section
                ))
            }
        }
    }
    if config.roots.is_empty() {
        return Err("lint.toml: `[paths] roots` must list at least one directory".to_string());
    }
    Ok(config)
}

/// Drop a `#` comment, respecting `"` quoting.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(value: &str) -> bool {
    value.starts_with('[') && value.trim_end().ends_with(']')
}

/// Parse `"a"` or `["a", "b"]` into a vector of strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got `{value}`"))
}

/// Blank comments, string literals, char literals and raw strings from
/// Rust source, preserving every newline (so line numbers survive) and
/// replacing other blanked characters with spaces. Lifetimes (`'a`) are
/// left intact; nested block comments are handled.
pub fn strip(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let blank = |out: &mut String, c: char| {
        out.push(if c == '\n' { '\n' } else { ' ' });
    };
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < bytes.len() && bytes[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            blank(&mut out, bytes[i]);
            blank(&mut out, bytes[i + 1]);
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
        } else if is_raw_string_start(&bytes, i) {
            // r"...", r#"..."#, br#"..."# — skip prefix, count hashes.
            let start = i;
            while bytes[i] == 'b' || bytes[i] == 'r' {
                out.push(bytes[i]);
                i += 1;
            }
            let mut hashes = 0usize;
            while bytes.get(i) == Some(&'#') {
                out.push('#');
                hashes += 1;
                i += 1;
            }
            debug_assert!(bytes.get(i) == Some(&'"'), "raw string at {start}");
            out.push('"');
            i += 1;
            'raw: while i < bytes.len() {
                if bytes[i] == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes;
                        break 'raw;
                    }
                }
                blank(&mut out, bytes[i]);
                i += 1;
            }
        } else if c == '"' {
            out.push('"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    blank(&mut out, bytes[i]);
                    if let Some(&esc) = bytes.get(i + 1) {
                        blank(&mut out, esc);
                    }
                    i += 2;
                } else if bytes[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Distinguish a char literal from a lifetime: 'x' / '\n' close
            // with a quote; 'ident does not.
            if next == Some('\\') {
                out.push('\'');
                i += 1;
                while i < bytes.len() && bytes[i] != '\'' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                if i < bytes.len() {
                    out.push('\'');
                    i += 1;
                }
            } else if bytes.get(i + 2) == Some(&'\'') {
                out.push('\'');
                blank(&mut out, bytes[i + 1]);
                out.push('\'');
                i += 3;
            } else {
                out.push('\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // At an identifier boundary, match r" / r# / br" / br# .
    if i > 0 && is_ident(bytes[i - 1]) {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = match rest {
        ['b', 'r', ..] => &rest[2..],
        ['r', ..] => &rest[1..],
        _ => return false,
    };
    let mut j = 0;
    while after_prefix.get(j) == Some(&'#') {
        j += 1;
    }
    after_prefix.get(j) == Some(&'"')
}

/// Per-line flags for `#[cfg(test)]` item bodies (true = exempt from the
/// rules). Detection is brace-matching on blanked code: the attribute arms
/// the next `{`, whose whole block is exempt.
pub fn test_exempt_lines(code: &str) -> Vec<bool> {
    let line_count = code.lines().count();
    let mut exempt = vec![false; line_count];
    let mut line = 0usize;
    let mut depth = 0usize;
    let mut armed = false;
    let mut region_depth: Option<usize> = None;
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '\n' => line += 1,
            '#' => {
                let rest: String = chars[i..].iter().take(16).collect();
                let compact: String = rest.chars().filter(|c| !c.is_whitespace()).collect();
                if compact.starts_with("#[cfg(test)]") && region_depth.is_none() {
                    armed = true;
                    if let Some(slot) = exempt.get_mut(line) {
                        *slot = true; // the attribute line itself
                    }
                }
            }
            '{' => {
                if armed && region_depth.is_none() {
                    region_depth = Some(depth);
                    armed = false;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if region_depth == Some(depth) {
                    region_depth = None;
                    if let Some(slot) = exempt.get_mut(line) {
                        *slot = true; // the closing-brace line
                    }
                }
            }
            _ => {}
        }
        if region_depth.is_some() || armed {
            if let Some(slot) = exempt.get_mut(line) {
                *slot = true;
            }
        }
        i += 1;
    }
    exempt
}

/// Whether `raw_lines[line]` (or the line above) waives `rule`.
fn waived(raw_lines: &[&str], line: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    let check = |l: usize| raw_lines.get(l).is_some_and(|text| text.contains(&marker));
    check(line) || (line > 0 && check(line - 1))
}

/// The no_index shorthand waiver.
fn index_waived(raw_lines: &[&str], line: usize) -> bool {
    let check = |l: usize| {
        raw_lines.get(l).is_some_and(|text| {
            text.contains("lint: index-ok") || text.contains("lint:allow(no_index)")
        })
    };
    check(line) || (line > 0 && check(line - 1))
}

/// Whether the `unsafe` token on `line` is covered by a `SAFETY:` comment:
/// on the same line, or in the contiguous `//` comment block directly
/// above.
fn safety_covered(raw_lines: &[&str], line: usize) -> bool {
    if raw_lines.get(line).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let text = raw_lines.get(l).map_or("", |t| t.trim_start());
        if text.starts_with("//") {
            if text.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Find word-boundary occurrences of `needle` in `haystack`, returning
/// byte offsets.
fn find_word(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after = at + needle.len();
        let after_ok = !haystack[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = after;
    }
    out
}

/// Tokens that break the wait-free metrics contract: locks and atomic
/// orderings stronger than `Relaxed`.
const OBS_BLOCKING_TOKENS: &[&str] = &[
    "Ordering::SeqCst",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Mutex",
    "RwLock",
    "Condvar",
    ".lock(",
];

/// Metric-update calls whose call sites the obs_hot_path rule guards.
const OBS_UPDATE_TOKENS: &[&str] = &[".inc(", ".record(", ".add(", ".set("];

const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "move", "ref", "as",
    "dyn", "where", "unsafe", "const", "static", "pub", "use", "fn", "impl", "for", "while",
    "loop", "box", "await", "yield",
];

/// Lint one source file. `rel` is the workspace-relative path with forward
/// slashes; rules apply according to which config lists contain it.
pub fn lint_source(rel: &str, source: &str, config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let raw_lines: Vec<&str> = source.lines().collect();
    let code = strip(source);
    let code_lines: Vec<&str> = code.lines().collect();
    let exempt = test_exempt_lines(&code);

    let unsafe_allowed = config.unsafe_allow.iter().any(|f| f == rel);
    let hot = config.hot_path.iter().any(|f| f == rel);
    let no_relaxed = config.no_relaxed_files.iter().any(|f| f == rel);
    let failpoint_allowed = config.failpoint_allow.iter().any(|f| f == rel);
    let atomic_io = config.atomic_io_files.iter().any(|f| f == rel);
    let obs_metrics = config.obs_metrics_files.iter().any(|f| f == rel);
    let obs_call_site = config.obs_call_site_files.iter().any(|f| f == rel);

    let mut push = |line: usize, rule: &'static str, message: String| {
        violations.push(Violation {
            file: rel.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (idx, line) in code_lines.iter().enumerate() {
        if exempt.get(idx).copied().unwrap_or(false) {
            continue;
        }

        // unsafe_allowlist + safety_comment
        if !find_word(line, "unsafe").is_empty() {
            if !unsafe_allowed {
                push(
                    idx,
                    "unsafe_allowlist",
                    format!(
                        "`unsafe` outside the allowlist ({}); move the code behind a safe \
                         abstraction or extend `[unsafe_code] allow` in lint.toml",
                        config.unsafe_allow.join(", ")
                    ),
                );
            } else if !safety_covered(&raw_lines, idx) {
                push(
                    idx,
                    "safety_comment",
                    "`unsafe` without a `// SAFETY:` comment explaining why the invariants hold"
                        .to_string(),
                );
            }
        }

        if hot {
            // no_panic
            for pattern in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if line.contains(pattern) && !waived(&raw_lines, idx, "no_panic") {
                    push(
                        idx,
                        "no_panic",
                        format!(
                            "`{pattern}` in a hot-path module; handle the case or add \
                             `// lint:allow(no_panic): <reason>`"
                        ),
                    );
                }
            }

            // no_index
            if !bracket_index_positions(line).is_empty() && !index_waived(&raw_lines, idx) {
                push(
                    idx,
                    "no_index",
                    "`[...]` indexing in a hot-path module; use `.get()` or add \
                     `// lint: index-ok (<reason>)`"
                        .to_string(),
                );
            }

            // counter_arith
            for field in &config.counter_fields {
                for at in find_word(line, field) {
                    let rest = line[at + field.len()..].trim_start();
                    let compound =
                        rest.starts_with("+=") || rest.starts_with("-=") || rest.starts_with("*=");
                    if compound && !waived(&raw_lines, idx, "counter_arith") {
                        push(
                            idx,
                            "counter_arith",
                            format!(
                                "compound arithmetic on counter `{field}`; use \
                                 saturating_*/checked_*/wrapping_* instead"
                            ),
                        );
                    }
                }
            }
        }

        // no_relaxed
        if no_relaxed
            && line.contains("Ordering::Relaxed")
            && !waived(&raw_lines, idx, "no_relaxed")
        {
            push(
                idx,
                "no_relaxed",
                "`Ordering::Relaxed` without a `// lint:allow(no_relaxed): <reason>` \
                 justification"
                    .to_string(),
            );
        }

        // failpoint_gate
        if !failpoint_allowed
            && (line.contains("fail_point!") || line.contains("failpoint::"))
            && !waived(&raw_lines, idx, "failpoint_gate")
        {
            push(
                idx,
                "failpoint_gate",
                format!(
                    "failpoint usage outside the allowlist ({}); fault-injection sites \
                     are deliberate — extend `[failpoints] allow` in lint.toml if this \
                     module really needs one",
                    config.failpoint_allow.join(", ")
                ),
            );
        }

        // obs_hot_path: the metric-cell implementation is Relaxed-only.
        if obs_metrics {
            for token in OBS_BLOCKING_TOKENS {
                if line.contains(token) && !waived(&raw_lines, idx, "obs_hot_path") {
                    push(
                        idx,
                        "obs_hot_path",
                        format!(
                            "`{token}` in a wait-free metrics module; metric cells must \
                             use `Relaxed` atomics only — stronger primitives belong to \
                             the journal/registry tiers"
                        ),
                    );
                }
            }
        }

        // obs_hot_path: metric updates on hot paths must not pair with a
        // lock or a strong ordering on the same statement line.
        if obs_call_site && OBS_UPDATE_TOKENS.iter().any(|t| line.contains(t)) {
            for token in OBS_BLOCKING_TOKENS {
                if line.contains(token) && !waived(&raw_lines, idx, "obs_hot_path") {
                    push(
                        idx,
                        "obs_hot_path",
                        format!(
                            "metric update sharing a line with `{token}`; hot-path \
                             instrumentation must stay wait-free — keep locks and \
                             strong orderings off the metric-update statement"
                        ),
                    );
                }
            }
        }

        // atomic_io
        if atomic_io {
            for pattern in ["File::create", "fs::write", "OpenOptions::new"] {
                if line.contains(pattern) && !waived(&raw_lines, idx, "atomic_io") {
                    push(
                        idx,
                        "atomic_io",
                        format!(
                            "bare `{pattern}` in a checkpoint-I/O module; write through \
                             the temp-file + fsync + atomic-rename helper (or add \
                             `// lint:allow(atomic_io): <reason>` on the helper itself)"
                        ),
                    );
                }
            }
        }
    }
    violations
}

/// Byte offsets of `[` tokens that open an *index* expression: preceded
/// (ignoring spaces) by an identifier, `)` or `]` — and not by a keyword,
/// attribute `#`, or macro `!`.
fn bracket_index_positions(line: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (at, c) in line.char_indices() {
        if c != '[' {
            continue;
        }
        let before = line[..at].trim_end();
        let Some(prev) = before.chars().next_back() else {
            continue;
        };
        if prev == ')' || prev == ']' {
            out.push(at);
        } else if is_ident(prev) {
            let word_start = before
                .char_indices()
                .rev()
                .take_while(|&(_, c)| is_ident(c))
                .last()
                .map_or(0, |(i, _)| i);
            let word = &before[word_start..];
            if !KEYWORDS_BEFORE_BRACKET.contains(&word) {
                out.push(at);
            }
        }
    }
    out
}

/// Recursively lint every `.rs` file under the configured roots.
pub fn lint_tree(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for dir in &config.roots {
        collect_rs_files(&root.join(dir), &config.skip, &mut files)?;
    }
    files.sort();
    let mut violations = Vec::new();
    for path in files {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        violations.extend(lint_source(&rel, &source, config));
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, skip: &[String], out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // a configured root may not exist in a partial tree
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !skip.contains(&name) {
                collect_rs_files(&path, skip, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// CLI entry point; returns the process exit code. `args` excludes the
/// binary name.
pub fn run(args: &[String]) -> i32 {
    let mut args = args.iter();
    match args.next().map(String::as_str) {
        Some("lint") => {}
        other => {
            if let Some(command) = other {
                eprintln!("unknown command `{command}`");
            }
            eprintln!("usage: cargo run -p xtask -- lint [--root <dir>] [--config <lint.toml>]");
            return 2;
        }
    }
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        let value = args.next();
        match (flag.as_str(), value) {
            ("--root", Some(v)) => root = Some(PathBuf::from(v)),
            ("--config", Some(v)) => config_path = Some(PathBuf::from(v)),
            _ => {
                eprintln!("unknown or incomplete option `{flag}`");
                return 2;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", config_path.display());
            return 2;
        }
    };
    let config = match parse_config(&config_text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return 2;
        }
    };
    match lint_tree(&root, &config) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            0
        }
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            1
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            2
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) => root.to_path_buf(),
        None => manifest,
    }
}
