//! Workspace invariant linter (`cargo run -p xtask -- lint`).
//!
//! Enforces the concurrency-and-overflow discipline that the loom
//! models and the clippy configuration establish, so it cannot erode
//! silently. The analysis is **syntax-aware**, not lexical: a
//! zero-dependency Rust tokenizer ([`lexer`]) feeds a brace-matched
//! token tree ([`tokentree`]) with per-token spans; `#[cfg(...)]`
//! attributes are genuinely evaluated ([`cfg`] — `test` is false,
//! features are unknown, only a definitively-false predicate exempts
//! its item); and every rule ([`rules`]) pattern-matches *code tokens*,
//! so nothing hidden in strings, comments or macros-as-text can fire or
//! evade a rule.
//!
//! The rules (configured by `lint.toml`, schema-checked — unknown
//! sections/keys and dangling paths are hard errors):
//!
//! * **unsafe_allowlist** — `unsafe` only in `[unsafe_code] allow`.
//! * **safety_comment** — every `unsafe` token covered by a
//!   `// SAFETY:` comment on the same line or the contiguous comment
//!   block directly above.
//! * **no_panic** — hot-path files: no `.unwrap()` / `.expect(...)` /
//!   panicking macros (`assert!`/`debug_assert!` stay allowed).
//! * **no_index** — hot-path files: no `expr[...]` *index expressions*.
//!   Attributes, macro invocations, slice patterns, array types and
//!   array literals are structurally not indexing and never flagged.
//! * **counter_arith** — no `+=`/`-=`/`*=` on the configured counter
//!   fields in hot-path files; spell out the overflow mode.
//! * **no_relaxed** — every `Ordering::Relaxed` in the configured
//!   concurrency files carries a justification.
//! * **failpoint_gate** — `fail_point!` / `failpoint::` only in
//!   `[failpoints] allow`.
//! * **atomic_io** — no bare `File::create` / `fs::write` /
//!   `OpenOptions::new` in checkpoint-I/O modules.
//! * **obs_hot_path** — metric-cell files stay `Relaxed`-only; in
//!   call-site files a metric update must not share a *statement* with
//!   a lock or strong ordering (line breaks neither evade nor
//!   false-positive the rule).
//! * **unused_waiver** — a waiver that names an unknown rule or
//!   suppresses nothing is itself a violation, so every shipped waiver
//!   stays load-bearing.
//!
//! Waivers are real comments (never strings or doc text) and attach to
//! the enclosing **statement**:
//!
//! ```text
//! // lint:allow(<rule>): <reason>     — on the statement's line, the
//! //                                    line above, or inside it
//! // lint: index-ok (<reason>)        — shorthand for no_index
//! ```
//!
//! Output formats: human `file:line:col: [rule] message` (default),
//! `--format json` (one `{rule, file, line, col, snippet, waived,
//! message}` record per line, waived findings included), and
//! `--format github` (workflow `::error` annotations).

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

pub mod bench_compare;
pub mod callgraph;
pub mod cfg;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod tokentree;

use cfg::CfgContext;
use lexer::{Token, TokenKind};
use tokentree::{Delim, Tree};

/// One rule finding with full position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// 1-based byte column one past the anchor token (for range
    /// annotations; equals `col + token length` on single-line anchors).
    pub end_col: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
    /// The trimmed source line the finding anchors to.
    pub snippet: String,
    /// True when an attached waiver suppresses this finding. Waived
    /// findings are reported in `--format json` but do not fail the
    /// build.
    pub waived: bool,
}

impl Violation {
    /// Findings that fail the build.
    pub fn is_active(&self) -> bool {
        !self.waived
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Keep only the findings that fail the build.
pub fn active(violations: &[Violation]) -> Vec<&Violation> {
    violations.iter().filter(|v| v.is_active()).collect()
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Config {
    /// Directories (relative to the workspace root) to lint.
    pub roots: Vec<String>,
    /// Directory names skipped anywhere under a root.
    pub skip: Vec<String>,
    /// Files allowed to contain `unsafe`.
    pub unsafe_allow: Vec<String>,
    /// Modules allowed to name `core::arch`/`std::arch` and carry a
    /// file-level `allow(unsafe_code)` (simd_gate rule).
    pub simd_allow: Vec<String>,
    /// Hot-path files subject to no_panic / no_index / counter_arith.
    pub hot_path: Vec<String>,
    /// Counter field names checked by counter_arith.
    pub counter_fields: Vec<String>,
    /// Files where `Ordering::Relaxed` needs a justification.
    pub no_relaxed_files: Vec<String>,
    /// Files whose atomics must each declare an `// ordering:` contract,
    /// checked against every access (ordering_protocol rule).
    pub protocol_files: Vec<String>,
    /// Files allowed to reference the failpoint facility.
    pub failpoint_allow: Vec<String>,
    /// Files whose file-writing calls must go through the atomic-rename
    /// helper.
    pub atomic_io_files: Vec<String>,
    /// Metric-cell implementation files that must stay wait-free.
    pub obs_metrics_files: Vec<String>,
    /// Span-ring implementation files under the same wait-free contract
    /// as the metric cells (trace record sits on the hot path).
    pub obs_trace_files: Vec<String>,
    /// Hot-path files where a metric update must not share a statement
    /// with a lock or a strong atomic ordering.
    pub obs_call_site_files: Vec<String>,
    /// Default relative tolerance (percent) for `bench-compare`, from
    /// `[bench] tolerance`. `None` falls back to the built-in default;
    /// the `--tolerance` / `--max-regress` flags override either.
    pub bench_tolerance: Option<f64>,
    /// Hot-path entry points for the interprocedural purity analysis:
    /// `"path/to/file.rs::Type::fn"` (or `file.rs::fn` for free fns).
    pub callgraph_entries: Vec<String>,
    /// Effect categories denied transitively from the entry points
    /// (subset of panic/index/arith/lock/alloc/io). Empty means the
    /// default deny set (panic, index, lock, io).
    pub purity_deny: Vec<String>,
    /// Max unresolved indirect calls per hot-path function
    /// (opaque_call_budget rule). `None` disables the rule.
    pub opaque_budget: Option<u64>,
    /// Files whose public fns are audited by unsafe_reach: reaching an
    /// `unsafe` block requires the unsafe module's name in the doc text.
    pub unsafe_reach_files: Vec<String>,
}

impl Config {
    /// Whether any interprocedural (call-graph) analysis is configured.
    pub fn callgraph_enabled(&self) -> bool {
        !self.callgraph_entries.is_empty() || !self.unsafe_reach_files.is_empty()
    }
}

/// The `lint.toml` schema: every section and the keys it accepts.
/// Anything outside this table is a hard configuration error — the
/// config can never silently rot.
const SCHEMA: &[(&str, &[&str])] = &[
    ("paths", &["roots", "skip"]),
    ("unsafe_code", &["allow"]),
    ("simd", &["modules"]),
    ("hot_path", &["files"]),
    ("counters", &["fields"]),
    ("orderings", &["no_relaxed_files", "protocol_files"]),
    ("failpoints", &["allow"]),
    ("atomic_io", &["files"]),
    ("obs", &["metrics_files", "trace_files", "call_site_files"]),
    ("bench", &["tolerance"]),
    (
        "callgraph",
        &[
            "entries",
            "purity_deny",
            "opaque_budget",
            "unsafe_reach_files",
        ],
    ),
];

/// Parse the TOML subset `lint.toml` uses: `[section]` headers and
/// `key = "string"` / `key = ["array", "of", "strings"]` entries
/// (arrays may span lines). Unknown sections and keys are rejected
/// loudly rather than ignored silently.
pub fn parse_config(text: &str) -> Result<Config, String> {
    let mut config = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            if !SCHEMA.iter().any(|(s, _)| *s == section) {
                return Err(format!(
                    "lint.toml:{}: unknown section `[{}]` (known: {})",
                    idx + 1,
                    section,
                    SCHEMA
                        .iter()
                        .map(|(s, _)| format!("[{s}]"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multiline array: keep consuming lines until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            let mut closed = false;
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_toml_comment(cont).trim());
                if balanced_array(&value) {
                    closed = true;
                    break;
                }
            }
            if !closed {
                return Err(format!("lint.toml:{}: unterminated array", idx + 1));
            }
        }
        // `[bench] tolerance` is the one numeric key in the schema.
        if section == "bench" && key == "tolerance" {
            let pct: f64 = value.parse().map_err(|_| {
                format!(
                    "lint.toml:{}: `tolerance` must be a number (percent), got `{value}`",
                    idx + 1
                )
            })?;
            if !pct.is_finite() || pct < 0.0 {
                return Err(format!(
                    "lint.toml:{}: `tolerance` must be a finite non-negative percent",
                    idx + 1
                ));
            }
            config.bench_tolerance = Some(pct);
            continue;
        }
        // `[callgraph] opaque_budget` is the one integer key.
        if section == "callgraph" && key == "opaque_budget" {
            let n: u64 = value.parse().map_err(|_| {
                format!(
                    "lint.toml:{}: `opaque_budget` must be a non-negative integer, got `{value}`",
                    idx + 1
                )
            })?;
            config.opaque_budget = Some(n);
            continue;
        }
        let values = parse_string_array(&value)
            .map_err(|e| format!("lint.toml:{}: {} (key `{}`)", idx + 1, e, key))?;
        match (section.as_str(), key) {
            ("paths", "roots") => config.roots = values,
            ("paths", "skip") => config.skip = values,
            ("unsafe_code", "allow") => config.unsafe_allow = values,
            ("simd", "modules") => config.simd_allow = values,
            ("hot_path", "files") => config.hot_path = values,
            ("counters", "fields") => config.counter_fields = values,
            ("orderings", "no_relaxed_files") => config.no_relaxed_files = values,
            ("orderings", "protocol_files") => config.protocol_files = values,
            ("failpoints", "allow") => config.failpoint_allow = values,
            ("atomic_io", "files") => config.atomic_io_files = values,
            ("obs", "metrics_files") => config.obs_metrics_files = values,
            ("obs", "trace_files") => config.obs_trace_files = values,
            ("obs", "call_site_files") => config.obs_call_site_files = values,
            ("callgraph", "entries") => config.callgraph_entries = values,
            ("callgraph", "purity_deny") => {
                for v in &values {
                    if callgraph::EffectKind::parse(v).is_none() {
                        return Err(format!(
                            "lint.toml:{}: unknown effect `{v}` in `purity_deny` (known: {})",
                            idx + 1,
                            callgraph::EffectKind::ALL.join(", ")
                        ));
                    }
                }
                config.purity_deny = values;
            }
            ("callgraph", "unsafe_reach_files") => config.unsafe_reach_files = values,
            _ => {
                let known = SCHEMA
                    .iter()
                    .find(|(s, _)| *s == section)
                    .map_or("<none>".to_string(), |(_, keys)| keys.join(", "));
                return Err(format!(
                    "lint.toml:{}: unknown key `{}` in section `[{}]` (known keys: {})",
                    idx + 1,
                    key,
                    section,
                    known
                ));
            }
        }
    }
    if config.roots.is_empty() {
        return Err("lint.toml: `[paths] roots` must list at least one directory".to_string());
    }
    Ok(config)
}

/// Validate that every path the config names actually exists under
/// `root`, so a rename can never silently drop a file out of a rule's
/// coverage. `[paths] skip` entries are directory *names*, not paths,
/// and are exempt.
pub fn validate_config_paths(config: &Config, root: &Path) -> Result<(), String> {
    for dir in &config.roots {
        if !root.join(dir).is_dir() {
            return Err(format!(
                "lint.toml: [paths] roots: `{dir}` is not a directory under {}",
                root.display()
            ));
        }
    }
    let file_lists: &[(&str, &[String])] = &[
        ("[unsafe_code] allow", &config.unsafe_allow),
        ("[simd] modules", &config.simd_allow),
        ("[hot_path] files", &config.hot_path),
        ("[orderings] no_relaxed_files", &config.no_relaxed_files),
        ("[orderings] protocol_files", &config.protocol_files),
        ("[failpoints] allow", &config.failpoint_allow),
        ("[atomic_io] files", &config.atomic_io_files),
        ("[obs] metrics_files", &config.obs_metrics_files),
        ("[obs] trace_files", &config.obs_trace_files),
        ("[obs] call_site_files", &config.obs_call_site_files),
        ("[callgraph] unsafe_reach_files", &config.unsafe_reach_files),
    ];
    for (key, list) in file_lists {
        for file in *list {
            if !root.join(file).is_file() {
                return Err(format!(
                    "lint.toml: {key}: `{file}` does not exist — fix the path or remove \
                     the stale entry"
                ));
            }
        }
    }
    // Entry specs: the file part must exist; the fn part is resolved
    // against the collected workspace symbols at analysis time.
    for spec in &config.callgraph_entries {
        let (file, _, _) = parse_entry_spec(spec)?;
        if !root.join(&file).is_file() {
            return Err(format!(
                "lint.toml: [callgraph] entries: `{file}` does not exist — fix the path \
                 or remove the stale entry"
            ));
        }
    }
    Ok(())
}

/// Split `"path/file.rs::Type::fn"` / `"path/file.rs::fn"` into
/// `(file, Some(type), fn)` / `(file, None, fn)`.
pub(crate) fn parse_entry_spec(spec: &str) -> Result<(String, Option<String>, String), String> {
    let parts: Vec<&str> = spec.split("::").collect();
    match parts.as_slice() {
        [file, name] if file.ends_with(".rs") => Ok((file.to_string(), None, name.to_string())),
        [file, ty, name] if file.ends_with(".rs") => {
            Ok((file.to_string(), Some(ty.to_string()), name.to_string()))
        }
        _ => Err(format!(
            "lint.toml: [callgraph] entries: `{spec}` is not of the form \
             `path/to/file.rs::fn` or `path/to/file.rs::Type::fn`"
        )),
    }
}

/// Drop a `#` comment, respecting `"` quoting.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(value: &str) -> bool {
    value.starts_with('[') && value.trim_end().ends_with(']')
}

/// Parse `"a"` or `["a", "b"]` into a vector of strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got `{value}`"))
}

// ---------------------------------------------------------------------------
// File analysis
// ---------------------------------------------------------------------------

/// Everything the rules need to know about one source file: the token
/// stream, the token tree, the statement map, the cfg-exemption mask
/// and per-line comment info for SAFETY scanning.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    pub rel: String,
    pub tokens: Vec<Token>,
    pub root: Vec<Tree>,
    /// Per token: sits inside a cfg-disabled item (e.g. `#[cfg(test)]`).
    pub exempt: Vec<bool>,
    /// Per token: innermost statement id (None for comments/shebang).
    pub stmt_of: Vec<Option<usize>>,
    pub stmt_count: usize,
    /// Indices of non-comment, non-shebang tokens, in source order.
    pub code: Vec<usize>,
    /// Token index → position in `code`.
    code_positions: Vec<Option<usize>>,
    /// Token indices of `[` delimiters that open bracket groups.
    pub bracket_opens: Vec<usize>,
    /// Per line (0-based): contains only comment tokens.
    comment_only_lines: Vec<bool>,
    /// Per line (0-based): a comment containing `SAFETY:` touches it.
    safety_lines: Vec<bool>,
    /// Source lines, for snippets.
    pub lines: Vec<String>,
}

impl FileAnalysis {
    /// Analyze with the default cfg context (`test` false, features
    /// unknown).
    pub fn analyze(rel: &str, source: &str) -> Result<FileAnalysis, String> {
        FileAnalysis::analyze_with(rel, source, &CfgContext::default())
    }

    pub fn analyze_with(rel: &str, source: &str, ctx: &CfgContext) -> Result<FileAnalysis, String> {
        let tokens = lexer::tokenize(source).map_err(|e| e.to_string())?;
        let root = tokentree::build(&tokens)?;
        let exempt = cfg::exempt_mask(&tokens, &root, ctx);
        let statements = tokentree::segment(&tokens, &root);

        let mut code = Vec::new();
        let mut code_positions = vec![None; tokens.len()];
        for (i, tok) in tokens.iter().enumerate() {
            if !tok.kind.is_comment() && tok.kind != TokenKind::Shebang {
                if let Some(slot) = code_positions.get_mut(i) {
                    *slot = Some(code.len());
                }
                code.push(i);
            }
        }

        let mut bracket_opens = Vec::new();
        collect_bracket_opens(&root, &mut bracket_opens);

        let lines: Vec<String> = source.lines().map(str::to_string).collect();
        let n = lines.len();
        let mut has_code = vec![false; n];
        let mut has_comment = vec![false; n];
        let mut safety_lines = vec![false; n];
        for tok in &tokens {
            let span = tok.line..=tok.line.saturating_add(tok.text.matches('\n').count());
            let comment = tok.kind.is_comment();
            let safety = comment && tok.text.contains("SAFETY:");
            for line in span {
                let Some(idx) = line.checked_sub(1) else {
                    continue;
                };
                if comment {
                    if let Some(slot) = has_comment.get_mut(idx) {
                        *slot = true;
                    }
                    if safety {
                        if let Some(slot) = safety_lines.get_mut(idx) {
                            *slot = true;
                        }
                    }
                } else if let Some(slot) = has_code.get_mut(idx) {
                    *slot = true;
                }
            }
        }
        let comment_only_lines = has_comment
            .iter()
            .zip(&has_code)
            .map(|(&c, &k)| c && !k)
            .collect();

        Ok(FileAnalysis {
            rel: rel.to_string(),
            tokens,
            root,
            exempt,
            stmt_of: statements.stmt_of,
            stmt_count: statements.count,
            code,
            code_positions,
            bracket_opens,
            comment_only_lines,
            safety_lines,
            lines,
        })
    }

    /// The token at code position `pos`.
    pub fn code_tok(&self, pos: usize) -> Option<&Token> {
        self.code.get(pos).and_then(|&i| self.tokens.get(i))
    }

    /// Position in `code` of token index `i`.
    pub fn code_pos(&self, i: usize) -> Option<usize> {
        self.code_positions.get(i).copied().flatten()
    }

    /// 1-based `line` contains only comments.
    pub fn line_comment_only(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.comment_only_lines.get(i).copied())
            .unwrap_or(false)
    }

    /// 1-based `line` is touched by a comment containing `SAFETY:`.
    pub fn line_has_safety(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.safety_lines.get(i).copied())
            .unwrap_or(false)
    }

    /// Trimmed source text of 1-based `line`.
    pub(crate) fn snippet(&self, line: usize) -> String {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or(String::new(), |l| l.trim().to_string())
    }
}

fn collect_bracket_opens(trees: &[Tree], out: &mut Vec<usize>) {
    for tree in trees {
        if let Tree::Group(g) = tree {
            if g.delim == Delim::Bracket {
                out.push(g.open);
            }
            collect_bracket_opens(&g.children, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// A waiver parsed from a real (non-doc) comment. Attaches to the
/// enclosing statement: the statement whose tokens share the comment's
/// line (looking backward), else the next statement after the comment.
#[derive(Debug, Clone)]
pub(crate) struct Waiver {
    /// Comment token index.
    pub(crate) token: usize,
    /// Statement the waiver attaches to.
    pub(crate) stmt: Option<usize>,
    /// Rule names the comment waives.
    pub(crate) rules: Vec<String>,
    /// Per rule: suppressed at least one finding.
    pub(crate) used: Vec<bool>,
}

/// Extract waived rule names from a comment's text: every
/// `lint:allow(a, b)` list plus the `lint: index-ok` shorthand.
fn waiver_rules(text: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("lint:allow(") {
        let args = &rest[at.saturating_add("lint:allow(".len())..];
        let Some(close) = args.find(')') else {
            break;
        };
        for rule in args[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                rules.push(rule.to_string());
            }
        }
        rest = &args[close..];
    }
    if text.contains("lint: index-ok") && !rules.iter().any(|r| r == "no_index") {
        rules.push("no_index".to_string());
    }
    rules
}

/// Attach a waiver comment to a statement: the statement of the nearest
/// preceding code token that ends on the comment's line, else the
/// statement of the next code token after the comment.
fn attach_stmt(fa: &FileAnalysis, comment_idx: usize) -> Option<usize> {
    let comment = fa.tokens.get(comment_idx)?;
    for j in (0..comment_idx).rev() {
        let Some(tok) = fa.tokens.get(j) else {
            continue;
        };
        if tok.kind.is_comment() || tok.kind == TokenKind::Shebang {
            continue;
        }
        let end_line = tok.line.saturating_add(tok.text.matches('\n').count());
        if end_line == comment.line {
            return fa.stmt_of.get(j).copied().flatten();
        }
        break;
    }
    for (j, tok) in fa
        .tokens
        .iter()
        .enumerate()
        .skip(comment_idx.saturating_add(1))
    {
        if tok.kind.is_comment() || tok.kind == TokenKind::Shebang {
            continue;
        }
        return fa.stmt_of.get(j).copied().flatten();
    }
    None
}

pub(crate) fn collect_waivers(fa: &FileAnalysis) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (i, tok) in fa.tokens.iter().enumerate() {
        // Doc comments are rendered documentation, not linter
        // directives; strings never carry waivers at all (they are not
        // comment tokens).
        if !tok.kind.is_comment() || tok.kind.is_doc_comment() {
            continue;
        }
        let rules = waiver_rules(&tok.text);
        if rules.is_empty() {
            continue;
        }
        let used = vec![false; rules.len()];
        waivers.push(Waiver {
            token: i,
            stmt: attach_stmt(fa, i),
            rules,
            used,
        });
    }
    waivers
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Build a [`Violation`] anchored at token `token` of `fa`.
pub(crate) fn violation_at(
    fa: &FileAnalysis,
    token: usize,
    rule: &'static str,
    message: String,
    waived: bool,
) -> Option<Violation> {
    let tok = fa.tokens.get(token)?;
    let end_col = if tok.text.contains('\n') {
        tok.col.saturating_add(1)
    } else {
        tok.col.saturating_add(tok.text.len())
    };
    Some(Violation {
        file: fa.rel.clone(),
        line: tok.line,
        col: tok.col,
        end_col,
        rule,
        message,
        snippet: fa.snippet(tok.line),
        waived,
    })
}

/// Lint one source file. `rel` is the workspace-relative path with
/// forward slashes; rules apply according to which config lists contain
/// it. Returns **all** findings — waived ones carry `waived: true` and
/// do not fail the build; use [`active`] to filter. A file that fails
/// to tokenize or brace-match yields a single `syntax` finding.
pub fn lint_source(rel: &str, source: &str, config: &Config) -> Vec<Violation> {
    match FileAnalysis::analyze(rel, source) {
        Ok(fa) => file_violations(&fa, config),
        Err(message) => vec![syntax_violation(rel, message)],
    }
}

fn syntax_violation(rel: &str, message: String) -> Violation {
    // Error strings start with `line:col: `.
    let mut parts = message.splitn(3, ':');
    let line = parts.next().and_then(|p| p.parse().ok()).unwrap_or(1);
    let col: usize = parts.next().and_then(|p| p.parse().ok()).unwrap_or(1);
    Violation {
        file: rel.to_string(),
        line,
        col,
        end_col: col.saturating_add(1),
        rule: "syntax",
        message,
        snippet: String::new(),
        waived: false,
    }
}

/// Per-file rules + waiver matching for one analyzed file. Graph-rule
/// waivers (`hot_path_purity` etc.) are skipped by the unused-waiver
/// hygiene check here — only a whole-tree run can tell whether they
/// suppress anything, and [`lint_tree`]'s graph phase performs that
/// check.
pub(crate) fn file_violations(fa: &FileAnalysis, config: &Config) -> Vec<Violation> {
    let findings = rules::run_all(fa, config);
    let mut waivers = collect_waivers(fa);
    let mut violations = Vec::new();

    for finding in findings {
        let stmt = fa.stmt_of.get(finding.token).copied().flatten();
        let mut waived = false;
        if stmt.is_some() {
            for waiver in &mut waivers {
                if waiver.stmt != stmt {
                    continue;
                }
                for (k, rule) in waiver.rules.iter().enumerate() {
                    if rule == finding.rule {
                        waived = true;
                        if let Some(slot) = waiver.used.get_mut(k) {
                            *slot = true;
                        }
                    }
                }
            }
        }
        if let Some(v) = violation_at(fa, finding.token, finding.rule, finding.message, waived) {
            violations.push(v);
        }
    }

    // Waiver hygiene: unknown rule names and waivers that suppress
    // nothing are violations themselves, so the shipped set of waivers
    // stays load-bearing.
    for waiver in &waivers {
        if fa.exempt.get(waiver.token).copied().unwrap_or(false) {
            continue;
        }
        for (k, rule) in waiver.rules.iter().enumerate() {
            let message = if !rules::WAIVABLE_RULES.contains(&rule.as_str()) {
                format!(
                    "waiver names unknown rule `{rule}` (waivable rules: {})",
                    rules::WAIVABLE_RULES.join(", ")
                )
            } else if rules::graph::GRAPH_RULES.contains(&rule.as_str()) {
                continue; // usage is only known after the graph phase
            } else if !waiver.used.get(k).copied().unwrap_or(false) {
                format!("waiver for `{rule}` suppresses nothing on its statement; delete it")
            } else {
                continue;
            };
            if let Some(v) = violation_at(fa, waiver.token, "unused_waiver", message, false) {
                violations.push(v);
            }
        }
    }

    violations.sort_by(|a, b| {
        (a.line, a.col, a.rule)
            .cmp(&(b.line, b.col, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    violations
}

/// Recursively lint every `.rs` file under the configured roots, then
/// run the interprocedural graph rules over the whole workspace (when
/// `[callgraph]` is configured). Returns all findings, waived included.
pub fn lint_tree(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    lint_tree_filtered(root, config, None)
}

/// [`lint_tree`] with an optional changed-file filter: per-file
/// findings are restricted to `changed` paths, but the graph rules are
/// inherently cross-file and always run over (and report against) the
/// full workspace.
pub fn lint_tree_filtered(
    root: &Path,
    config: &Config,
    changed: Option<&[String]>,
) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for dir in &config.roots {
        collect_rs_files(&root.join(dir), &config.skip, &mut files)?;
    }
    files.sort();
    let mut violations = Vec::new();
    let mut ws = resolve::Workspace::default();
    for path in files {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let include = changed.is_none_or(|list| list.iter().any(|f| f == &rel));
        match FileAnalysis::analyze(&rel, &source) {
            Ok(fa) => {
                if include {
                    violations.extend(file_violations(&fa, config));
                }
                ws.add_file(&rel, fa);
            }
            Err(message) => {
                if include {
                    violations.push(syntax_violation(&rel, message));
                }
            }
        }
    }
    if config.callgraph_enabled() {
        let graph = callgraph::build(&ws);
        violations.extend(rules::graph::run(&ws, &graph, config)?);
    }
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule)
            .cmp(&(b.file.as_str(), b.line, b.col, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(violations)
}

/// Build the resolved workspace for export commands (no linting).
pub fn build_workspace(root: &Path, config: &Config) -> Result<resolve::Workspace, String> {
    let mut files = Vec::new();
    for dir in &config.roots {
        collect_rs_files(&root.join(dir), &config.skip, &mut files)?;
    }
    files.sort();
    let mut ws = resolve::Workspace::default();
    for path in files {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match FileAnalysis::analyze(&rel, &source) {
            Ok(fa) => ws.add_file(&rel, fa),
            Err(message) => return Err(format!("{rel}: {message}")),
        }
    }
    Ok(ws)
}

fn collect_rs_files(dir: &Path, skip: &[String], out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // a configured root may not exist in a partial tree
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !skip.contains(&name) {
                collect_rs_files(&path, skip, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

/// Escape a string for a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One machine-readable record:
/// `{"rule":…,"file":…,"line":…,"col":…,"snippet":…,"waived":…,"message":…}`.
pub fn json_record(v: &Violation) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"snippet\":\"{}\",\
         \"waived\":{},\"message\":\"{}\"}}",
        json_escape(v.rule),
        json_escape(&v.file),
        v.line,
        v.col,
        json_escape(&v.snippet),
        v.waived,
        json_escape(&v.message)
    )
}

/// A GitHub Actions workflow annotation (`::error file=…`). Newlines in
/// the message are `%0A`-encoded per the workflow-command spec. The
/// annotation carries the full column range (`col`/`endColumn`) and
/// repeats the rule name inside the message body — the `title`
/// property is dropped by some renderers (e.g. the PR files tab), so
/// the rule must survive in the message itself.
pub fn github_annotation(v: &Violation) -> String {
    let message = format!("[{}] {}", v.rule, v.message)
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    format!(
        "::error file={},line={},endLine={},col={},endColumn={},title=xtask lint ({})::{}",
        v.file, v.line, v.line, v.col, v.end_col, v.rule, message
    )
}

/// Output format for the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
    Github,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

/// CLI entry point; returns the process exit code. `args` excludes the
/// binary name. All output goes to `out` (the real binary passes
/// stdout).
pub fn run_with(args: &[String], out: &mut dyn Write) -> i32 {
    fn fail(out: &mut dyn Write, message: String) -> i32 {
        let _ = writeln!(out, "xtask lint: {message}");
        2
    }
    let mut args = args.iter();
    let mut callgraph_cmd = false;
    match args.next().map(String::as_str) {
        Some("lint") => {}
        Some("callgraph") => callgraph_cmd = true,
        Some("bench-compare") => {
            let mut rest: Vec<String> = args.cloned().collect();
            // Default the tolerance source to the workspace lint.toml
            // (`[bench] tolerance`) unless the caller names a config.
            if !rest.iter().any(|a| a == "--config") {
                let shipped = workspace_root().join("lint.toml");
                if shipped.is_file() {
                    rest.push("--config".to_string());
                    rest.push(shipped.display().to_string());
                }
            }
            return bench_compare::run(&rest, out);
        }
        other => {
            if let Some(command) = other {
                let _ = writeln!(out, "unknown command `{command}`");
            }
            let _ = writeln!(
                out,
                "usage: cargo run -p xtask -- lint [--root <dir>] [--config <lint.toml>] \
                 [--format text|json|github] [--changed]\n       \
                 cargo run -p xtask -- callgraph [--root <dir>] [--config <lint.toml>] \
                 [--format dot|json]\n       \
                 cargo run -p xtask -- bench-compare <baseline.json> <new.json> \
                 [--tolerance <pct>] [--key-filter <substr>] [--config <lint.toml>]"
            );
            return 2;
        }
    }
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format_arg: Option<String> = None;
    let mut changed_only = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--changed" => changed_only = true,
            "--root" | "--config" | "--format" => {
                let Some(v) = args.next() else {
                    return fail(out, format!("option `{flag}` needs a value"));
                };
                match flag.as_str() {
                    "--root" => root = Some(PathBuf::from(v)),
                    "--config" => config_path = Some(PathBuf::from(v)),
                    _ => format_arg = Some(v.clone()),
                }
            }
            _ => return fail(out, format!("unknown or incomplete option `{flag}`")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => return fail(out, format!("cannot read {}: {e}", config_path.display())),
    };
    let config = match parse_config(&config_text) {
        Ok(config) => config,
        Err(e) => return fail(out, e),
    };
    if let Err(e) = validate_config_paths(&config, &root) {
        return fail(out, e);
    }
    if callgraph_cmd {
        let format = format_arg.as_deref().unwrap_or("dot");
        if format != "dot" && format != "json" {
            return fail(
                out,
                format!("unknown format `{format}` (expected dot or json)"),
            );
        }
        let ws = match build_workspace(&root, &config) {
            Ok(ws) => ws,
            Err(e) => return fail(out, e),
        };
        let graph = callgraph::build(&ws);
        let text = if format == "dot" {
            callgraph::to_dot(&ws, &graph)
        } else {
            callgraph::to_json(&ws, &graph)
        };
        let _ = writeln!(out, "{text}");
        return 0;
    }
    let format = match format_arg.as_deref() {
        None => Format::Text,
        Some(v) => match Format::parse(v) {
            Some(f) => f,
            None => {
                return fail(
                    out,
                    format!("unknown format `{v}` (expected text, json or github)"),
                )
            }
        },
    };
    let changed_list = if changed_only {
        changed_files(&root)
    } else {
        None
    };
    if changed_only && changed_list.is_none() && format == Format::Text {
        let _ = writeln!(
            out,
            "xtask lint: --changed: not a git checkout (or git unavailable); running full lint"
        );
    }
    let violations = match lint_tree_filtered(&root, &config, changed_list.as_deref()) {
        Ok(violations) => violations,
        Err(e) => return fail(out, e),
    };
    let active: Vec<&Violation> = violations.iter().filter(|v| v.is_active()).collect();
    let waived_count = violations.len().saturating_sub(active.len());
    match format {
        Format::Text => {
            for violation in &active {
                let _ = writeln!(out, "{violation}");
            }
            if active.is_empty() {
                let _ = writeln!(out, "xtask lint: clean ({waived_count} waived)");
            } else {
                let _ = writeln!(
                    out,
                    "xtask lint: {} violation(s) ({waived_count} waived)",
                    active.len()
                );
            }
        }
        Format::Json => {
            // Machine-readable: every finding, waived included, one
            // record per line; no summary line.
            for violation in &violations {
                let _ = writeln!(out, "{}", json_record(violation));
            }
        }
        Format::Github => {
            for violation in &active {
                let _ = writeln!(out, "{}", github_annotation(violation));
            }
            let _ = writeln!(
                out,
                "xtask lint: {} violation(s), {waived_count} waived",
                active.len()
            );
        }
    }
    i32::from(!active.is_empty())
}

/// CLI entry point writing to stdout.
pub fn run(args: &[String]) -> i32 {
    let mut stdout = std::io::stdout();
    run_with(args, &mut stdout)
}

/// Workspace-relative paths of files changed in the enclosing git
/// checkout (unstaged + staged), for `lint --changed`. `None` when the
/// root is not inside a work tree or git is unavailable — the caller
/// falls back to a full run.
pub fn changed_files(root: &Path) -> Option<Vec<String>> {
    fn git(root: &Path, args: &[&str]) -> Option<String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        Some(String::from_utf8_lossy(&out.stdout).into_owned())
    }
    // Paths come back relative to the repository toplevel; the
    // workspace root may sit deeper, so strip its prefix.
    let prefix = git(root, &["rev-parse", "--show-prefix"])?;
    let prefix = prefix.trim();
    let mut files = std::collections::BTreeSet::new();
    for extra in [None, Some("--cached")] {
        let mut args = vec!["diff", "--name-only"];
        if let Some(extra) = extra {
            args.push(extra);
        }
        let listing = git(root, &args)?;
        for line in listing.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rel = if prefix.is_empty() {
                line
            } else {
                match line.strip_prefix(prefix) {
                    Some(rest) => rest,
                    None => continue, // changed outside the workspace
                }
            };
            files.insert(rel.to_string());
        }
    }
    Some(files.into_iter().collect())
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) => root.to_path_buf(),
        None => manifest,
    }
}
