//! Workspace symbol resolution for the interprocedural analysis layer.
//!
//! Walks every analyzed file's token tree and collects the *definition
//! index* the call-graph builder resolves against:
//!
//! * **fn items** — free functions, inherent/trait-impl methods and
//!   trait default methods, each with the token range of its body, its
//!   visibility and its enclosing self type. Items under a
//!   definitively-false `#[cfg]` and everything inside `macro_rules!`
//!   bodies are skipped (a macro body is a template, not code).
//! * **impl blocks** — the self type is resolved from the header
//!   (`impl<T> Ring<T>`, `impl Trait for Type`, `impl fmt::Debug for X`
//!   all yield the final type segment), so `self.method()` and
//!   `Self::assoc()` calls resolve precisely.
//! * **struct fields and fn parameters/let bindings** — the *first
//!   significant* type segment (skipping `&`, `mut`, lifetimes and the
//!   transparent wrappers `Arc`/`Rc`/`Box`) is recorded so one-hop
//!   receiver chains like `self.store.probe(..)` or `lane.queue.push(..)`
//!   resolve by receiver type instead of falling back to name matching.
//! * **`use` renames** — `use a::b as c` registers a global alias
//!   `c → b`, so a call through a re-exported rename still reaches the
//!   real definition. Resolution is name-global (no module hygiene):
//!   a deliberate over-approximation, which is sound for reachability.
//!
//! Everything here is *conservative*: when two definitions share a name
//! the resolver keeps all of them as candidates; precision only ever
//! removes edges that provably cannot exist (a receiver typed `Vec`
//! never dispatches into a workspace method).

use std::collections::{HashMap, HashSet};

use crate::lexer::{is_keyword, TokenKind};
use crate::tokentree::{Delim, Tree};
use crate::FileAnalysis;

/// Type names treated as transparent for receiver typing: a method call
/// on `Arc<SpscRing<T>>` dispatches (via auto-deref) into `SpscRing`.
const TRANSPARENT_WRAPPERS: &[&str] = &["Arc", "Rc", "Box"];

/// One collected function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing impl/trait self type, if any (`None` for free fns).
    pub self_type: Option<String>,
    /// Token index (in the file's token vector) of the name.
    pub name_token: usize,
    /// Token index of the first token of the item (`pub`, `fn`, …) —
    /// the anchor for doc-comment lookups.
    pub first_token: usize,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Token range `(open, close)` of the body brace group, `None` for
    /// bodyless declarations (trait requirements, extern fns).
    pub body: Option<(usize, usize)>,
    /// Position of the name token, for diagnostics.
    pub line: usize,
    pub col: usize,
    /// Local name → first significant type segment, from typed
    /// parameters and annotated/constructor `let` bindings.
    pub local_types: HashMap<String, String>,
}

impl FnDef {
    /// `Type::name` or the bare name for free fns.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One analyzed file plus its workspace-relative path.
#[derive(Debug)]
pub struct FileSyms {
    pub rel: String,
    pub fa: FileAnalysis,
}

/// The resolved workspace: every file's analysis plus the definition
/// indexes the call-graph builder queries.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<FileSyms>,
    pub fns: Vec<FnDef>,
    /// Free functions by bare name.
    pub free_by_name: HashMap<String, Vec<usize>>,
    /// Methods by bare name across all self types (conservative pool).
    pub methods_by_name: HashMap<String, Vec<usize>>,
    /// Methods by `(self type, name)`.
    pub methods_by_type: HashMap<(String, String), Vec<usize>>,
    /// `use … as alias` renames: alias → original final segment.
    pub aliases: HashMap<String, String>,
    /// `(struct, field)` → first significant type segment.
    pub field_types: HashMap<(String, String), String>,
    /// Every type-like name defined in the workspace (structs, enums,
    /// traits, impl self types, type aliases).
    pub types: HashSet<String>,
}

impl Workspace {
    /// Add one analyzed file and collect its symbols.
    pub fn add_file(&mut self, rel: &str, fa: FileAnalysis) {
        let file = self.files.len();
        let mut collector = Collector {
            ws: self,
            file,
            fa: &fa,
        };
        collector.scope(&fa.root, None);
        self.files.push(FileSyms {
            rel: rel.to_string(),
            fa,
        });
    }

    /// Follow the rename-alias chain from `name` to a fixpoint
    /// (bounded, so an accidental alias cycle cannot loop).
    pub fn resolve_alias<'a>(&'a self, name: &'a str) -> &'a str {
        let mut current = name;
        for _ in 0..8 {
            match self.aliases.get(current) {
                Some(next) if next != current => current = next,
                _ => break,
            }
        }
        current
    }

    /// Strip transparent wrappers from a receiver type.
    pub fn concrete_type<'a>(&'a self, name: &'a str) -> &'a str {
        // The wrapper strip happens at collection time; here we only
        // chase renames.
        self.resolve_alias(name)
    }

    /// All `FnDef` ids defined in `file`.
    pub fn fns_in_file(&self, file: usize) -> impl Iterator<Item = usize> + '_ {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.file == file)
            .map(|(i, _)| i)
    }
}

/// Token-tree walker collecting definitions for one file.
struct Collector<'a> {
    ws: &'a mut Workspace,
    file: usize,
    fa: &'a FileAnalysis,
}

impl Collector<'_> {
    fn text(&self, tree: &Tree) -> &str {
        match tree {
            Tree::Leaf(i) => self.fa.tokens.get(*i).map_or("", |t| t.text.as_str()),
            Tree::Group(_) => "",
        }
    }

    fn is_exempt(&self, token: usize) -> bool {
        self.fa.exempt.get(token).copied().unwrap_or(false)
    }

    /// Walk one brace scope (or the file root). `self_type` is the
    /// enclosing impl/trait type for method registration.
    fn scope(&mut self, trees: &[Tree], self_type: Option<&str>) {
        let mut pending_pub: Option<bool> = None; // Some(restricted?)
        let mut i = 0;
        while i < trees.len() {
            let tree = &trees[i];
            match tree {
                Tree::Leaf(tok) => {
                    let text = self
                        .fa
                        .tokens
                        .get(*tok)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    match text.as_str() {
                        "pub" => {
                            pending_pub = Some(false);
                            // `pub(crate)` / `pub(super)`: a paren group
                            // directly after marks the visibility as
                            // restricted.
                            if let Some(Tree::Group(g)) = trees.get(i.saturating_add(1)) {
                                if g.delim == Delim::Paren {
                                    pending_pub = Some(true);
                                    i = i.saturating_add(1);
                                }
                            }
                        }
                        "fn" => {
                            i = self.fn_item(trees, i, *tok, self_type, pending_pub);
                            pending_pub = None;
                        }
                        "impl" => {
                            i = self.impl_item(trees, i);
                            pending_pub = None;
                        }
                        "trait" => {
                            i = self.trait_item(trees, i);
                            pending_pub = None;
                        }
                        "struct" => {
                            i = self.struct_item(trees, i);
                            pending_pub = None;
                        }
                        "enum" | "union" => {
                            self.register_type_after(trees, Some(i.saturating_add(1)));
                            i = self.skip_item_with_body(trees, i);
                            pending_pub = None;
                        }
                        "type" => {
                            // `type Alias = …;` — register the name as a
                            // type; the walker skips to the `;`.
                            self.register_type_after(trees, Some(i.saturating_add(1)));
                            i = skip_to_semi(trees, i, self);
                            pending_pub = None;
                        }
                        "use" => {
                            i = self.use_item(trees, i);
                            pending_pub = None;
                        }
                        "mod" => {
                            // Inline `mod name { … }` — descend (names
                            // are global in this model); `mod name;` — skip.
                            let mut j = i.saturating_add(1);
                            while j < trees.len() {
                                match &trees[j] {
                                    Tree::Group(g) if g.delim == Delim::Brace => {
                                        self.scope(&g.children, None);
                                        break;
                                    }
                                    Tree::Leaf(t)
                                        if self
                                            .fa
                                            .tokens
                                            .get(*t)
                                            .is_some_and(|t| t.text == ";") =>
                                    {
                                        break;
                                    }
                                    _ => j = j.saturating_add(1),
                                }
                            }
                            i = j;
                            pending_pub = None;
                        }
                        "macro_rules" => {
                            // `macro_rules! name { … }` — the body is a
                            // template, never walked.
                            i = self.skip_item_with_body(trees, i);
                            pending_pub = None;
                        }
                        ";" => pending_pub = None,
                        _ => {}
                    }
                }
                Tree::Group(g) => {
                    // A stray brace group at item level (e.g. a block
                    // expression in a body scope we descended into):
                    // walk it for nested items.
                    if g.delim == Delim::Brace {
                        self.scope(&g.children, self_type);
                    }
                }
            }
            i = i.saturating_add(1);
        }
    }

    /// Parse a `fn` item starting at sibling index `i` (the `fn` leaf).
    /// Returns the sibling index of the last consumed tree (body or `;`).
    fn fn_item(
        &mut self,
        trees: &[Tree],
        i: usize,
        fn_tok: usize,
        self_type: Option<&str>,
        pending_pub: Option<bool>,
    ) -> usize {
        // Name is the next leaf identifier.
        let Some(name_tree) = trees.get(i.saturating_add(1)) else {
            return i;
        };
        let Tree::Leaf(name_tok) = name_tree else {
            return i;
        };
        let Some(name) = self.fa.tokens.get(*name_tok).filter(|t| {
            matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) && !is_keyword(&t.text)
        }) else {
            return i;
        };
        let name_text = name.text.trim_start_matches("r#").to_string();
        let (line, col) = (name.line, name.col);
        let name_tok = *name_tok;

        // Scan forward for the parameter list, then the body brace (or a
        // `;` for bodyless declarations). Paren/bracket groups in the
        // signature (params, return types, where clauses) never contain a
        // top-level brace group, so the first brace sibling is the body.
        let mut params: Option<&Tree> = None;
        let mut body: Option<(usize, usize)> = None;
        let mut j = i.saturating_add(2);
        while j < trees.len() {
            match &trees[j] {
                Tree::Group(g) if g.delim == Delim::Paren && params.is_none() => {
                    params = Some(&trees[j]);
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    body = Some((g.open, g.close));
                    break;
                }
                Tree::Leaf(t) if self.fa.tokens.get(*t).is_some_and(|t| t.text == ";") => break,
                _ => {}
            }
            j = j.saturating_add(1);
        }

        if !self.is_exempt(fn_tok) {
            let mut local_types = HashMap::new();
            if let Some(Tree::Group(g)) = params {
                self.param_types(&g.children, &mut local_types);
            }
            if body.is_some() {
                if let Some(Tree::Group(g)) = trees.get(j) {
                    self.let_types(&g.children, &mut local_types);
                }
            }
            let id = self.ws.fns.len();
            self.ws.fns.push(FnDef {
                file: self.file,
                name: name_text.clone(),
                self_type: self_type.map(str::to_string),
                name_token: name_tok,
                first_token: fn_tok,
                is_pub: pending_pub == Some(false),
                body,
                line,
                col,
                local_types,
            });
            match self_type {
                Some(t) => {
                    self.ws
                        .methods_by_type
                        .entry((t.to_string(), name_text.clone()))
                        .or_default()
                        .push(id);
                    self.ws
                        .methods_by_name
                        .entry(name_text)
                        .or_default()
                        .push(id);
                }
                None => {
                    self.ws.free_by_name.entry(name_text).or_default().push(id);
                }
            }
        }

        // Walk the body for nested items (nested fns are free fns).
        if let Some(Tree::Group(g)) = trees.get(j) {
            if g.delim == Delim::Brace {
                self.scope_nested_items(&g.children);
            }
        }
        j
    }

    /// Inside fn bodies only nested `fn`/`use` items matter; walking the
    /// full item grammar over expression code would misread `match` arms.
    fn scope_nested_items(&mut self, trees: &[Tree]) {
        let mut i = 0;
        while i < trees.len() {
            match &trees[i] {
                Tree::Leaf(tok) => {
                    let text = self.fa.tokens.get(*tok).map_or("", |t| t.text.as_str());
                    if text == "fn" {
                        i = self.fn_item(trees, i, *tok, None, None);
                    } else if text == "use" {
                        i = self.use_item(trees, i);
                    }
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    self.scope_nested_items(&g.children);
                }
                _ => {}
            }
            i = i.saturating_add(1);
        }
    }

    /// Parse an `impl` header and descend into the body with the
    /// resolved self type. Returns the index of the body group.
    fn impl_item(&mut self, trees: &[Tree], i: usize) -> usize {
        let mut depth: i64 = 0;
        let mut last_ident: Option<String> = None;
        let mut j = i.saturating_add(1);
        while j < trees.len() {
            match &trees[j] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    let self_type = last_ident.clone();
                    self.scope(&g.children, self_type.as_deref());
                    if let Some(t) = self_type {
                        self.ws.types.insert(t);
                    }
                    return j;
                }
                Tree::Leaf(tok) => {
                    let Some(t) = self.fa.tokens.get(*tok) else {
                        j = j.saturating_add(1);
                        continue;
                    };
                    match t.text.as_str() {
                        "<" => depth = depth.saturating_add(1),
                        ">" => depth = depth.saturating_sub(1),
                        "<<" => depth = depth.saturating_add(2),
                        ">>" => depth = depth.saturating_sub(2),
                        "for" if depth == 0 => last_ident = None,
                        "where" if depth == 0 => {
                            // Bounds follow; the type is settled.
                        }
                        text if depth == 0 && t.kind == TokenKind::Ident && !is_keyword(text) => {
                            last_ident = Some(text.to_string());
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            j = j.saturating_add(1);
        }
        j
    }

    /// `trait Name { … }` — default methods register under the trait
    /// name, so trait-method calls resolve conservatively.
    fn trait_item(&mut self, trees: &[Tree], i: usize) -> usize {
        let name = trees.get(i.saturating_add(1)).and_then(|t| match t {
            Tree::Leaf(tok) => self
                .fa
                .tokens
                .get(*tok)
                .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
                .map(|t| t.text.clone()),
            Tree::Group(_) => None,
        });
        let mut j = i.saturating_add(1);
        while j < trees.len() {
            match &trees[j] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    if let Some(name) = &name {
                        self.ws.types.insert(name.clone());
                    }
                    self.scope(&g.children, name.as_deref());
                    return j;
                }
                Tree::Leaf(tok) if self.fa.tokens.get(*tok).is_some_and(|t| t.text == ";") => {
                    return j;
                }
                _ => j = j.saturating_add(1),
            }
        }
        j
    }

    /// `struct Name { field: Type, … }` — record field types for
    /// receiver-chain resolution.
    fn struct_item(&mut self, trees: &[Tree], i: usize) -> usize {
        let Some(name) = trees.get(i.saturating_add(1)).and_then(|t| match t {
            Tree::Leaf(tok) => self
                .fa
                .tokens
                .get(*tok)
                .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
                .map(|t| t.text.clone()),
            Tree::Group(_) => None,
        }) else {
            return i;
        };
        self.ws.types.insert(name.clone());
        let mut j = i.saturating_add(2);
        while j < trees.len() {
            match &trees[j] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    self.struct_fields(&name, &g.children);
                    return j;
                }
                Tree::Leaf(tok) if self.fa.tokens.get(*tok).is_some_and(|t| t.text == ";") => {
                    return j; // unit or tuple struct
                }
                _ => j = j.saturating_add(1),
            }
        }
        j
    }

    /// Parse `field: Type` pairs from a struct body.
    fn struct_fields(&mut self, struct_name: &str, trees: &[Tree]) {
        let mut i = 0;
        while i < trees.len() {
            // Skip attributes (`#` + bracket group) and visibility.
            match &trees[i] {
                Tree::Leaf(tok) => {
                    let text = self.fa.tokens.get(*tok).map_or("", |t| t.text.as_str());
                    if text == "#" || text == "pub" {
                        i = i.saturating_add(1);
                        continue;
                    }
                    let is_field_name = self
                        .fa
                        .tokens
                        .get(*tok)
                        .is_some_and(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
                        && matches!(trees.get(i.saturating_add(1)), Some(t) if self.text(t) == ":");
                    if is_field_name {
                        let field = self
                            .fa
                            .tokens
                            .get(*tok)
                            .map(|t| t.text.clone())
                            .unwrap_or_default();
                        // Type = first significant ident until a
                        // top-level comma.
                        let mut depth: i64 = 0;
                        let mut ty: Option<String> = None;
                        let mut j = i.saturating_add(2);
                        while j < trees.len() {
                            match &trees[j] {
                                Tree::Leaf(t2) => {
                                    let Some(t) = self.fa.tokens.get(*t2) else {
                                        break;
                                    };
                                    match t.text.as_str() {
                                        "<" => depth = depth.saturating_add(1),
                                        ">" => depth = depth.saturating_sub(1),
                                        "<<" => depth = depth.saturating_add(2),
                                        ">>" => depth = depth.saturating_sub(2),
                                        "," if depth <= 0 => break,
                                        text if t.kind == TokenKind::Ident
                                            && !is_keyword(text)
                                            && ty.is_none()
                                            && !TRANSPARENT_WRAPPERS.contains(&text) =>
                                        {
                                            ty = Some(text.to_string());
                                        }
                                        _ => {}
                                    }
                                }
                                Tree::Group(_) => {
                                    // `[T; N]`, `(A, B)`, `dyn Fn(..)` —
                                    // composite types yield no usable
                                    // receiver type.
                                    if ty.is_none() {
                                        ty = Some(String::new());
                                    }
                                }
                            }
                            j = j.saturating_add(1);
                        }
                        if let Some(ty) = ty.filter(|t| !t.is_empty()) {
                            self.ws
                                .field_types
                                .insert((struct_name.to_string(), field), ty);
                        }
                        i = j;
                        continue;
                    }
                }
                Tree::Group(_) => {}
            }
            i = i.saturating_add(1);
        }
    }

    /// Parameter types from a fn's paren group: `name: Type` pairs.
    fn param_types(&self, trees: &[Tree], out: &mut HashMap<String, String>) {
        let mut i = 0;
        while i < trees.len() {
            let is_name = matches!(&trees[i], Tree::Leaf(tok) if self
                .fa
                .tokens
                .get(*tok)
                .is_some_and(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text)))
                && matches!(trees.get(i.saturating_add(1)), Some(t) if self.text(t) == ":");
            if is_name {
                let Tree::Leaf(tok) = &trees[i] else {
                    i = i.saturating_add(1);
                    continue;
                };
                let name = self
                    .fa
                    .tokens
                    .get(*tok)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let mut depth: i64 = 0;
                let mut ty: Option<String> = None;
                let mut j = i.saturating_add(2);
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Leaf(t2) => {
                            let Some(t) = self.fa.tokens.get(*t2) else {
                                break;
                            };
                            match t.text.as_str() {
                                "<" => depth = depth.saturating_add(1),
                                ">" => depth = depth.saturating_sub(1),
                                "<<" => depth = depth.saturating_add(2),
                                ">>" => depth = depth.saturating_sub(2),
                                "," if depth <= 0 => break,
                                text if t.kind == TokenKind::Ident
                                    && !is_keyword(text)
                                    && ty.is_none()
                                    && !TRANSPARENT_WRAPPERS.contains(&text) =>
                                {
                                    ty = Some(text.to_string());
                                }
                                _ => {}
                            }
                        }
                        Tree::Group(_) => {
                            if ty.is_none() {
                                ty = Some(String::new());
                            }
                        }
                    }
                    j = j.saturating_add(1);
                }
                if let Some(ty) = ty.filter(|t| !t.is_empty()) {
                    out.insert(name, ty);
                }
                i = j;
                continue;
            }
            i = i.saturating_add(1);
        }
    }

    /// `let` binding types from a fn body (recursing into nested
    /// blocks): `let x: Type = …` and `let x = Type::ctor(…)`.
    fn let_types(&self, trees: &[Tree], out: &mut HashMap<String, String>) {
        let mut i = 0;
        while i < trees.len() {
            match &trees[i] {
                Tree::Group(g) if g.delim == Delim::Brace => self.let_types(&g.children, out),
                Tree::Leaf(tok) if self.fa.tokens.get(*tok).is_some_and(|t| t.text == "let") => {
                    let mut j = i.saturating_add(1);
                    if matches!(trees.get(j), Some(t) if self.text(t) == "mut") {
                        j = j.saturating_add(1);
                    }
                    let Some(Tree::Leaf(name_tok)) = trees.get(j) else {
                        i = i.saturating_add(1);
                        continue;
                    };
                    let Some(name) = self
                        .fa
                        .tokens
                        .get(*name_tok)
                        .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
                        .map(|t| t.text.clone())
                    else {
                        i = i.saturating_add(1);
                        continue;
                    };
                    match self.text(trees.get(j.saturating_add(1)).unwrap_or(&trees[j])) {
                        ":" => {
                            // Annotated: first significant ident of the
                            // type, stopping at `=` or `;`.
                            let mut ty: Option<String> = None;
                            let mut k = j.saturating_add(2);
                            while k < trees.len() {
                                match &trees[k] {
                                    Tree::Leaf(t2) => {
                                        let Some(t) = self.fa.tokens.get(*t2) else {
                                            break;
                                        };
                                        match t.text.as_str() {
                                            "=" | ";" => break,
                                            text if t.kind == TokenKind::Ident
                                                && !is_keyword(text)
                                                && ty.is_none()
                                                && !TRANSPARENT_WRAPPERS.contains(&text) =>
                                            {
                                                ty = Some(text.to_string());
                                            }
                                            _ => {}
                                        }
                                    }
                                    Tree::Group(_) => {
                                        if ty.is_none() {
                                            ty = Some(String::new());
                                        }
                                    }
                                }
                                k = k.saturating_add(1);
                            }
                            if let Some(ty) = ty.filter(|t| !t.is_empty()) {
                                out.insert(name, ty);
                            }
                        }
                        "=" => {
                            // Constructor inference: `let x = Type::…`.
                            if let Some(Tree::Leaf(t2)) = trees.get(j.saturating_add(2)) {
                                let is_ctor_path = self.fa.tokens.get(*t2).is_some_and(|t| {
                                    t.kind == TokenKind::Ident
                                        && t.text.chars().next().is_some_and(char::is_uppercase)
                                }) && matches!(
                                    trees.get(j.saturating_add(3)),
                                    Some(t) if self.text(t) == "::"
                                );
                                if is_ctor_path {
                                    if let Some(t) = self.fa.tokens.get(*t2) {
                                        out.insert(name, t.text.clone());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            i = i.saturating_add(1);
        }
    }

    /// `use path::to::{a, b as c};` — register every `as` rename.
    /// Returns the index of the terminating `;`.
    fn use_item(&mut self, trees: &[Tree], i: usize) -> usize {
        let mut j = i.saturating_add(1);
        let mut last_seg: Option<String> = None;
        let mut pending_as = false;
        while j < trees.len() {
            match &trees[j] {
                Tree::Leaf(tok) => {
                    let Some(t) = self.fa.tokens.get(*tok) else {
                        j = j.saturating_add(1);
                        continue;
                    };
                    match t.text.as_str() {
                        ";" => return j,
                        "as" => pending_as = true,
                        "," => {
                            last_seg = None;
                            pending_as = false;
                        }
                        text if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent)
                            && !is_keyword(text) =>
                        {
                            let text = text.trim_start_matches("r#").to_string();
                            if pending_as {
                                if let Some(orig) = last_seg.take() {
                                    if text != "_" {
                                        self.ws.aliases.insert(text, orig);
                                    }
                                }
                                pending_as = false;
                            } else {
                                last_seg = Some(text);
                            }
                        }
                        _ => {}
                    }
                }
                Tree::Group(g) if g.delim == Delim::Brace => {
                    // `{a, b as c}` — each element resolves its own
                    // final segment; recurse with the same machinery.
                    self.use_group(&g.children);
                }
                _ => {}
            }
            j = j.saturating_add(1);
        }
        j
    }

    fn use_group(&mut self, trees: &[Tree]) {
        let mut last_seg: Option<String> = None;
        let mut pending_as = false;
        for tree in trees {
            match tree {
                Tree::Leaf(tok) => {
                    let Some(t) = self.fa.tokens.get(*tok) else {
                        continue;
                    };
                    match t.text.as_str() {
                        "as" => pending_as = true,
                        "," => {
                            last_seg = None;
                            pending_as = false;
                        }
                        text if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent)
                            && !is_keyword(text) =>
                        {
                            let text = text.trim_start_matches("r#").to_string();
                            if pending_as {
                                if let Some(orig) = last_seg.take() {
                                    if text != "_" {
                                        self.ws.aliases.insert(text, orig);
                                    }
                                }
                                pending_as = false;
                            } else {
                                last_seg = Some(text);
                            }
                        }
                        _ => {}
                    }
                }
                Tree::Group(g) if g.delim == Delim::Brace => self.use_group(&g.children),
                _ => {}
            }
        }
    }

    /// Skip an item of the form `kw name … { … }` (enum, union,
    /// macro_rules). Returns the index of the body group.
    fn skip_item_with_body(&mut self, trees: &[Tree], i: usize) -> usize {
        let mut j = i.saturating_add(1);
        while j < trees.len() {
            match &trees[j] {
                Tree::Group(g) if g.delim == Delim::Brace => return j,
                Tree::Leaf(tok) if self.fa.tokens.get(*tok).is_some_and(|t| t.text == ";") => {
                    return j;
                }
                _ => j = j.saturating_add(1),
            }
        }
        j
    }

    /// Register the identifier at sibling index `at` as a type name.
    fn register_type_after(&mut self, trees: &[Tree], at: Option<usize>) {
        if let Some(Tree::Leaf(tok)) = at.and_then(|at| trees.get(at)) {
            if let Some(t) = self
                .fa
                .tokens
                .get(*tok)
                .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
            {
                self.ws.types.insert(t.text.clone());
            }
        }
    }
}

/// Skip to the `;` terminating a simple item.
fn skip_to_semi(trees: &[Tree], i: usize, c: &Collector<'_>) -> usize {
    let mut j = i.saturating_add(1);
    while j < trees.len() {
        if let Tree::Leaf(tok) = &trees[j] {
            if c.fa.tokens.get(*tok).is_some_and(|t| t.text == ";") {
                return j;
            }
        }
        j = j.saturating_add(1);
    }
    j
}
