//! `cargo run -p xtask -- bench-compare <baseline.json> <new.json>`
//!
//! Throughput regression gate over the checked-in bench JSON files
//! (`BENCH_pipeline.json`, `BENCH_table.json`). Both files are flattened
//! to `dotted.path → number` maps by a minimal zero-dependency JSON
//! reader; every numeric key whose path contains the filter substring
//! (default `mops`, i.e. throughput — higher is better) present in
//! *both* files is compared, and the command exits nonzero when any of
//! them dropped by more than the tolerance percent.
//!
//! The tolerance is resolved in order: `--tolerance` (or its older alias
//! `--max-regress`) on the command line, then `[bench] tolerance` in the
//! lint.toml named by `--config` (the CLI wrapper passes the workspace
//! lint.toml by default), then the built-in default.
//!
//! Exit codes: `0` within budget, `1` regression detected, `2` usage or
//! parse error. A throughput key that *disappears* from the new file is
//! treated as a regression (a silently dropped measurement must not pass
//! the gate); brand-new keys are reported but never fail.

use std::io::Write;
use std::path::PathBuf;

/// Built-in tolerance, percent, when neither a flag nor a config sets it.
const DEFAULT_MAX_REGRESS: f64 = 5.0;

/// Default key filter: throughput keys, where a drop is a regression.
const DEFAULT_FILTER: &str = "mops";

// ---------------------------------------------------------------------------
// Minimal JSON number flattener
// ---------------------------------------------------------------------------

/// Flatten a JSON document to `(dotted path, value)` pairs for every
/// numeric leaf. Array elements use their index as the path segment
/// (`batch.1.mops`); both files come from the same generator, so
/// positions line up. Strings, booleans and nulls are skipped; syntax
/// errors are reported with a byte offset.
pub fn flatten_numbers(text: &str) -> Result<Vec<(String, f64)>, String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut at = 0usize;
    skip_ws(bytes, &mut at);
    value(bytes, &mut at, &mut String::new(), &mut out)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing data at byte {at}"));
    }
    Ok(out)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while bytes
        .get(*at)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *at = at.saturating_add(1);
    }
}

fn value(
    bytes: &[u8],
    at: &mut usize,
    path: &mut String,
    out: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        Some(b'{') => container(bytes, at, path, out, b'}'),
        Some(b'[') => container(bytes, at, path, out, b']'),
        Some(b'"') => string(bytes, at).map(|_| ()),
        Some(b't') => literal(bytes, at, "true"),
        Some(b'f') => literal(bytes, at, "false"),
        Some(b'n') => literal(bytes, at, "null"),
        Some(_) => {
            let n = number(bytes, at)?;
            out.push((path.clone(), n));
            Ok(())
        }
        None => Err(format!("unexpected end of input at byte {at}")),
    }
}

/// Parse `{...}` or `[...]` (selected by `close`), extending `path` per
/// member and recursing into values.
fn container(
    bytes: &[u8],
    at: &mut usize,
    path: &mut String,
    out: &mut Vec<(String, f64)>,
    close: u8,
) -> Result<(), String> {
    *at = at.saturating_add(1); // opening delimiter
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&close) {
        *at = at.saturating_add(1);
        return Ok(());
    }
    let mut index = 0usize;
    loop {
        let segment = if close == b'}' {
            skip_ws(bytes, at);
            let key = string(bytes, at)?;
            skip_ws(bytes, at);
            if bytes.get(*at) != Some(&b':') {
                return Err(format!("expected `:` at byte {at}"));
            }
            *at = at.saturating_add(1);
            key
        } else {
            let key = index.to_string();
            index = index.saturating_add(1);
            key
        };
        let saved = path.len();
        if !path.is_empty() {
            path.push('.');
        }
        path.push_str(&segment);
        value(bytes, at, path, out)?;
        path.truncate(saved);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at = at.saturating_add(1),
            Some(b) if *b == close => {
                *at = at.saturating_add(1);
                return Ok(());
            }
            _ => return Err(format!("expected `,` or closing delimiter at byte {at}")),
        }
    }
}

fn string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    if bytes.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}"));
    }
    *at = at.saturating_add(1);
    let start = *at;
    while let Some(&b) = bytes.get(*at) {
        match b {
            b'"' => {
                let raw = String::from_utf8_lossy(bytes.get(start..*at).unwrap_or(&[]));
                *at = at.saturating_add(1);
                // Bench keys are plain identifiers; unescaping `\uXXXX`
                // is out of scope, but `\"`/`\\` must not end the string
                // early (handled by the escape skip below), so raw text
                // with backslashes round-trips unmodified.
                return Ok(raw.into_owned());
            }
            b'\\' => *at = at.saturating_add(2),
            _ => *at = at.saturating_add(1),
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn literal(bytes: &[u8], at: &mut usize, word: &str) -> Result<(), String> {
    if bytes.get(*at..at.saturating_add(word.len())) == Some(word.as_bytes()) {
        *at = at.saturating_add(word.len());
        Ok(())
    } else {
        Err(format!("invalid literal at byte {at}"))
    }
}

fn number(bytes: &[u8], at: &mut usize) -> Result<f64, String> {
    let start = *at;
    while bytes
        .get(*at)
        .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *at = at.saturating_add(1);
    }
    let text = std::str::from_utf8(bytes.get(start..*at).unwrap_or(&[]))
        .map_err(|e| format!("bad number at byte {start}: {e}"))?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// One per-key comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub key: String,
    pub baseline: f64,
    pub new: Option<f64>,
    /// Percent change, positive = improvement (None when the key is
    /// missing from the new file or the baseline is not positive).
    pub change_pct: Option<f64>,
}

impl Delta {
    /// Whether this key fails the gate under `max_regress` percent.
    pub fn regressed(&self, max_regress: f64) -> bool {
        match self.change_pct {
            Some(pct) => pct < -max_regress,
            // Missing key or degenerate baseline: fail loudly.
            None => true,
        }
    }
}

/// Compare every `filter`-matching numeric key of `baseline` against
/// `new`, in baseline order.
pub fn compare(baseline: &[(String, f64)], new: &[(String, f64)], filter: &str) -> Vec<Delta> {
    baseline
        .iter()
        .filter(|(k, _)| k.contains(filter))
        .map(|(key, base)| {
            let fresh = new.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
            let change_pct = fresh.and_then(|v| (*base > 0.0).then(|| (v - base) / base * 100.0));
            Delta {
                key: key.clone(),
                baseline: *base,
                new: fresh,
                change_pct,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

pub fn run(args: &[String], out: &mut dyn Write) -> i32 {
    let mut fail = |message: String| -> i32 {
        let _ = writeln!(out, "xtask bench-compare: {message}");
        2
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut flag_tolerance: Option<f64> = None;
    let mut config_tolerance: Option<f64> = None;
    let mut filter = DEFAULT_FILTER.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // `--tolerance` and its older alias mean the same thing.
            flag @ ("--tolerance" | "--max-regress") => {
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(v) if v >= 0.0 => flag_tolerance = Some(v),
                    _ => return fail(format!("{flag} needs a non-negative percent")),
                }
            }
            "--key-filter" => match it.next() {
                Some(v) => filter = v.clone(),
                None => return fail("--key-filter needs a substring".to_string()),
            },
            "--config" => {
                let Some(path) = it.next() else {
                    return fail("--config needs a lint.toml path".to_string());
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => return fail(format!("cannot read {path}: {e}")),
                };
                match crate::parse_config(&text) {
                    Ok(config) => config_tolerance = config.bench_tolerance,
                    Err(e) => return fail(e),
                }
            }
            flag if flag.starts_with("--") => return fail(format!("unknown option `{flag}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    let max_regress = flag_tolerance
        .or(config_tolerance)
        .unwrap_or(DEFAULT_MAX_REGRESS);
    let [baseline_path, new_path] = paths.as_slice() else {
        return fail(
            "usage: bench-compare <baseline.json> <new.json> \
             [--tolerance <pct>] [--key-filter <substr>] [--config <lint.toml>]"
                .to_string(),
        );
    };
    let load = |path: &PathBuf| -> Result<Vec<(String, f64)>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        flatten_numbers(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let fresh = match load(new_path) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let deltas = compare(&baseline, &fresh, &filter);
    if deltas.is_empty() {
        return fail(format!(
            "no `{filter}` keys in {} — nothing to gate on",
            baseline_path.display()
        ));
    }
    let mut regressions = 0usize;
    for d in &deltas {
        let verdict = if d.regressed(max_regress) {
            regressions = regressions.saturating_add(1);
            "REGRESSED"
        } else {
            "ok"
        };
        match (d.new, d.change_pct) {
            (Some(v), Some(pct)) => {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10.3} -> {:>10.3}  {:>+7.2}%  {verdict}",
                    d.key, d.baseline, v, pct
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10.3} -> {:>10}  {:>8}  {verdict}",
                    d.key, d.baseline, "missing", "-"
                );
            }
        }
    }
    // New keys are informational: they cannot regress, but surfacing
    // them keeps the gate's coverage visible.
    for (key, v) in fresh.iter().filter(|(k, _)| k.contains(&filter)) {
        if !baseline.iter().any(|(k, _)| k == key) {
            let _ = writeln!(out, "{key:<28} {:>10} -> {v:>10.3}  (new key)", "-");
        }
    }
    if regressions > 0 {
        let _ = writeln!(
            out,
            "bench-compare: {regressions} key(s) regressed more than {max_regress}%"
        );
        1
    } else {
        let _ = writeln!(
            out,
            "bench-compare: {} key(s) within the {max_regress}% budget",
            deltas.len()
        );
        0
    }
}
