//! Seeded `ordering_protocol` violations: a demoted publish store (the
//! static mirror of the loom_weakening.rs runtime demotion), an
//! undeclared atomic, a malformed contract, an unpaired acquire and a
//! computed ordering. The waived owner-read and the Relaxed statistic
//! must stay silent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Ring {
    // ordering: load=Acquire, store=SeqCst -- consumer acquires published slots
    tail: AtomicUsize,
    head: AtomicUsize,
    // ordering: load=Acquire store=SeqCst -- the missing comma malforms this
    mark: AtomicU64,
    // ordering: load=Acquire -- nothing in this file ever releases it
    lonely: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed, rmw=Relaxed -- statistic
    drops: AtomicU64,
}

impl Ring {
    pub fn publish(&self, v: usize) {
        // The demotion mirror: the contract says `store=SeqCst`.
        self.tail.store(v, Ordering::Release);
    }

    pub fn take(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }

    pub fn count(&self) -> usize {
        // The contract for `tail` declares no rmw ordering.
        self.tail.fetch_add(1, Ordering::SeqCst)
    }

    pub fn peek(&self) -> u64 {
        self.lonely.load(Ordering::Acquire)
    }

    pub fn computed(&self, order: Ordering) -> usize {
        self.tail.load(order)
    }

    pub fn owner(&self) -> usize {
        // lint:allow(ordering_protocol): single-writer cursor reading its own write
        self.tail.load(Ordering::Relaxed)
    }

    pub fn stat(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn level(&self) -> usize {
        self.head.load(Ordering::Acquire)
    }
}
