//! Waiver semantics fixture: lint as a hot-path file.
//!
//! * `real_waiver` / `waiver_above` / `multiline_waived`: legitimate
//!   comment waivers attach to the statement and suppress the finding.
//! * `string_waiver` / `doc_waiver`: waiver text inside a string
//!   literal or a doc comment is NOT a waiver — both findings stay
//!   active (the regression for the old waiver-in-string bug).

pub fn real_waiver(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(no_panic): fixture — waiver on the same line
}

pub fn waiver_above(v: Option<u64>) -> u64 {
    // lint:allow(no_panic): fixture — waiver on the line above
    v.unwrap()
}

pub fn multiline_waived(v: Result<u64, ()>) -> u64 {
    v.map(|x| x.saturating_add(1))
        // lint:allow(no_panic): fixture — statement continues past the comment
        .unwrap()
}

pub fn string_waiver(v: Result<u64, ()>) -> u64 {
    v.expect("// lint:allow(no_panic): inside a string, not a waiver")
}

pub fn doc_waiver(v: Option<u64>) -> u64 {
    /** lint:allow(no_panic): doc comment, not a waiver */
    v.unwrap()
}

pub fn index_ok(slots: &[u64], mask: usize, seq: usize) -> u64 {
    slots[seq & mask] // lint: index-ok (mask keeps this in bounds)
}
