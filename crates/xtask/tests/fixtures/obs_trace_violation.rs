//! Seeded obs_hot_path trace-file violations: a lock on the span-record
//! path and an ordering stronger than `Relaxed` in the span ring —
//! both break the wait-free contract the tracer shares with metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Ring {
    head: AtomicU64,
    spans: Mutex<Vec<u64>>,
}

impl Ring {
    pub fn record(&self, start_ns: u64) {
        if let Ok(mut spans) = self.spans.lock() {
            spans.push(start_ns);
        }
        let _ = self.head.load(Ordering::Acquire);
    }
}
