//! Seeded obs_hot_path metrics-file violations: a lock type and a
//! strong ordering inside the wait-free metric-cell module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Cell {
    value: AtomicU64,
    fallback: Mutex<u64>,
}

impl Cell {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::SeqCst);
    }
}
