//! Seeded safety_comment violation: lint as an *allowlisted* unsafe
//! file — the `unsafe` below has no SAFETY comment.

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn covered(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` is valid; this one is fine.
    unsafe { *p }
}
