//! Evasion corpus: every "violation" in this file is hidden somewhere
//! the token-tree rules must not look — string literals, raw strings,
//! comments, doc text, macro names that merely *resemble* banned calls,
//! and `#[cfg(test)]` items. A substring-matching linter flags most of
//! these; the syntax-aware engine must report this file clean under
//! every rule at once (hot-path + counters + orderings + failpoints +
//! atomic_io + obs call-site).

// Comment bait: .unwrap() panic!("x") Ordering::Relaxed fail_point!("y")
/* Block-comment bait: File::create(p), self.freq += 1, slots[i],
   unsafe { *p }, Mutex::new(()).lock(), Ordering::SeqCst */
/* Nested /* comment: still inside — .expect("x") fs::write(p, b) */ ok */

/// Doc bait: call `.unwrap()` or `panic!`, hold `Ordering::Relaxed`,
/// write via `File::create`, bump `freq += 1`, index `slots[i]`.
pub const STRING_BAIT: &str = ".unwrap() panic!(now) Ordering::Relaxed freq += 1";

pub const RAW_BAIT: &str = r#"fail_point!("in a string"); File::create(path); slots[i]"#;

pub const DEEP_RAW_BAIT: &str = r##"still a "string"# with .expect("data") inside"##;

pub const BYTE_BAIT: &[u8] = b"unsafe { *p } OpenOptions::new() Ordering::SeqCst";

pub const CHAR_BAIT: char = '[';

pub fn lookalike_macros(v: &[u64]) -> u64 {
    // `unwrap!`/`expect!` are macros, not the banned methods; a path
    // segment named `failpoints` is not the `failpoint::` facility.
    let total: u64 = v.iter().copied().sum();
    let _site = concat!("fail", "_point");
    total
}

pub struct NotACounter {
    pub frequency: u64,
}

pub fn field_name_prefix(c: &mut NotACounter) {
    // `frequency` merely starts with the counter field name `freq`.
    c.frequency += 1;
}

#[cfg(test)]
mod tests {
    // Everything here is cfg(test)-exempt however it is formatted.
    #[test]
    fn exercised_only_under_test() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let x = vec![1u64, 2, 3];
        assert_eq!(x[0], 1);
        let s = std::sync::Mutex::new(0u64);
        *s.lock().expect("poisoned") += 1;
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod failpoint_tests {
    #[test]
    fn gated_both_ways() {
        fail_point!("only.in.tests");
    }
}
