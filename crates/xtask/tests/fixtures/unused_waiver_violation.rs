//! Seeded unused_waiver violations: a waiver that suppresses nothing
//! and a waiver naming an unknown rule.

pub fn tidy() -> u64 {
    // lint:allow(no_panic): nothing on this statement panics
    42
}

pub fn typo(v: Option<u64>) -> Option<u64> {
    // lint:allow(no_panics): misspelled rule name
    v
}
