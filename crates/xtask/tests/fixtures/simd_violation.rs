//! Seeded simd_gate violations: lint as a file *not* in `[simd] modules`.
//! An arch-intrinsic path and a file-level `allow(unsafe_code)` must
//! each fire; the decoys below must stay silent.
#![allow(unsafe_code)]

use core::arch::x86_64::_mm_set1_epi64x;

pub fn splat(x: i64) {
    let _ = x;
    // core::arch named in a comment — silent
}

pub mod arch {
    /// A module merely *named* arch is not `core::arch` — silent.
    pub fn noop() {}
}

#[allow(dead_code)] // a different allow() — silent
fn decoy() {
    let s = "core::arch inside a string stays silent";
    let _ = s;
}
