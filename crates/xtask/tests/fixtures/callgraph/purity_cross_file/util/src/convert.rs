//! The far end of the seeded chain: a public shim over a private
//! helper that unwraps. The panic is two calls away from the entry.

pub fn normalize(v: Option<u64>) -> u64 {
    scale(v)
}

fn scale(v: Option<u64>) -> u64 {
    v.unwrap()
}
