//! Seeded violation: the hot-path entry below never panics *locally*,
//! but the helper it calls — two hops away, in another crate root —
//! unwraps. Only an interprocedural analysis can see it.

pub struct Eng {
    count: u64,
}

impl Eng {
    pub fn ingest(&mut self, v: Option<u64>) -> u64 {
        self.count = self.count.saturating_add(1);
        crate::util::normalize(v)
    }
}
