//! Seeded `opaque_call_budget` violation: two fn-pointer invocations the
//! name-based resolver cannot follow, against a budget of one.

pub fn entry(f: fn(u64) -> u64, g: fn(u64) -> u64, v: u64) -> u64 {
    let a = (f)(v);
    let b = (g)(a);
    a.wrapping_add(b)
}

pub fn within_budget(f: fn(u64) -> u64, v: u64) -> u64 {
    (f)(v)
}
