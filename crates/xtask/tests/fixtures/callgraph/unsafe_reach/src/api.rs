//! Seeded `unsafe_reach` pair: two public fns with the same unsafe
//! dependency; only one documents it.

use crate::unchecked;

/// Fast path into the shared slot.
pub fn send(v: u64) {
    unchecked::put(v);
}

/// Stores through the `unchecked` core; see its SAFETY notes.
pub fn send_documented(v: u64) {
    unchecked::put(v);
}
