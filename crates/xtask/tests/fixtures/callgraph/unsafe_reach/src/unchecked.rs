use std::cell::UnsafeCell;

pub struct Slot(UnsafeCell<u64>);

unsafe impl Sync for Slot {} // SAFETY: fixture; single-threaded use only

pub static SLOT: Slot = Slot(UnsafeCell::new(0));

pub fn put(v: u64) {
    // SAFETY: fixture; no concurrent access
    unsafe {
        *SLOT.0.get() = v;
    }
}
