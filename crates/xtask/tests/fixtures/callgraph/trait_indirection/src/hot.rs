//! Evasion attempt: the panic hides behind a trait method. The
//! receiver's declared type pins the impl, so the edge stays precise.

use crate::stage::Widget;

pub fn drive(w: Widget) -> u64 {
    w.step()
}
