pub trait Stage {
    fn step(&self) -> u64;
}

pub struct Widget;

impl Stage for Widget {
    fn step(&self) -> u64 {
        deep()
    }
}

fn deep() -> u64 {
    panic!("boom")
}
