//! Evasion attempt: the panicking helper is imported under a rename, so
//! no token in this file names `quiet`. Alias resolution must still
//! connect `calm(..)` to the definition.

use crate::helpers::quiet as calm;

pub fn entry(v: Option<u64>) -> u64 {
    calm(v)
}
