pub fn quiet(v: Option<u64>) -> u64 {
    v.unwrap()
}
