//! Seeded obs_hot_path call-site violations: a metric update sharing a
//! statement with a lock or a strong ordering — including the
//! line-break spelling the old lexical linter could not see. The two
//! trailing functions are clean: independent statements on one line,
//! and a while-header lock with the update in the (separate) body
//! statement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn split_across_lines(m: &Mutex<Vec<u64>>, stalls: &Counter) {
    m.lock()
        .map(|_q| stalls.inc())
        .ok();
}

pub fn strong_ordering_same_stmt(depth: &Gauge, queue: &AtomicU64) {
    depth.set(queue.load(Ordering::SeqCst));
}

pub fn clean_shared_line(m: &Mutex<Vec<u64>>, stalls: &Counter) {
    stalls.inc(); let _g = m.lock();
}

pub fn clean_while_header(m: &Mutex<Vec<u64>>, stalls: &Counter) {
    while m.try_lock().is_err() {
        stalls.inc();
    }
}
