//! Seeded no_index violations: lint as a hot-path file. The attribute,
//! slice pattern, array type and array literal below are *not* index
//! expressions and must stay silent.

#[derive(Debug, Clone)]
pub struct Table {
    slots: Vec<u64>,
    pair: [u64; 2],
}

impl Table {
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i]
    }

    pub fn head(&self) -> u64 {
        let [a, _b] = self.pair;
        let arr: [u64; 2] = [a, 0];
        (arr)[0]
    }
}
