//! Seeded no_relaxed violation: lint as a no_relaxed file.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn load(head: &AtomicU64) -> u64 {
    head.load(Ordering::Relaxed)
}
