//! Seeded failpoint_gate violations: lint as a file *not* on the
//! failpoint allowlist.

pub fn risky() {
    fail_point!("table.before-insert");
}

pub fn also_risky() -> bool {
    failpoint::armed("spsc.push")
}
