//! Seeded atomic_io violations: lint as a checkpoint-I/O file.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

pub fn save(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)
}

pub fn save_quick(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn open_append(path: &Path) -> std::io::Result<File> {
    OpenOptions::new().append(true).open(path)
}
