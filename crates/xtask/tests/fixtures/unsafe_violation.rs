//! Seeded unsafe_allowlist violation: lint as a file *not* on the
//! unsafe allowlist. The SAFETY comment is present so only the
//! allowlist rule fires.

pub fn peek(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
