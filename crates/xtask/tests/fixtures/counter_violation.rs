//! Seeded counter_arith violation: lint as a hot-path file with
//! counter fields including `freq`.

pub struct Cell {
    freq: u64,
    other: u64,
}

impl Cell {
    pub fn bump(&mut self) {
        self.freq += 1;
        self.other += 1; // not a counter field: silent
    }
}
