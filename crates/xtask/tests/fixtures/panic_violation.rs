//! Seeded no_panic violations: lint as a hot-path file.

pub fn hot(v: Option<u64>, w: Result<u64, ()>) -> u64 {
    let x = v.unwrap();
    let y = w.expect("present");
    if x > y {
        panic!("impossible: {x} <= {y}");
    }
    x
}

pub fn todo_branch(mode: u8) -> u64 {
    match mode {
        0 => 1,
        1 => unreachable!(),
        _ => todo!("later"),
    }
}
