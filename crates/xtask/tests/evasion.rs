//! Evasion-corpus tests: rule-relevant text hidden in strings,
//! comments, doc text, lookalike identifiers and `#[cfg(test)]` items
//! must never fire a rule — and conversely, formatting tricks (line
//! breaks, mid-statement comments) must never *hide* a real violation.

use xtask::{lint_source, Config, Violation};

/// Route the file onto every rule list at once, so any leak from any
/// rule shows up.
fn everything_config(rel: &str) -> Config {
    Config {
        roots: vec!["src".to_string()],
        skip: vec![],
        unsafe_allow: vec![],
        simd_allow: vec![],
        hot_path: vec![rel.to_string()],
        counter_fields: vec!["freq".to_string()],
        no_relaxed_files: vec![rel.to_string()],
        protocol_files: vec![rel.to_string()],
        failpoint_allow: vec![],
        atomic_io_files: vec![rel.to_string()],
        obs_metrics_files: vec![],
        obs_trace_files: vec![],
        obs_call_site_files: vec![rel.to_string()],
        bench_tolerance: None,
        callgraph_entries: vec![],
        purity_deny: vec![],
        opaque_budget: None,
        unsafe_reach_files: vec![],
    }
}

fn active(rel: &str, src: &str) -> Vec<Violation> {
    lint_source(rel, src, &everything_config(rel))
        .into_iter()
        .filter(Violation::is_active)
        .collect()
}

#[test]
fn evasion_corpus_is_clean_under_every_rule() {
    let src = include_str!("fixtures/evasion.rs");
    let hits = active("src/hot.rs", src);
    assert!(hits.is_empty(), "false positives: {hits:#?}");
}

#[test]
fn string_literals_never_fire() {
    for src in [
        r#"pub const A: &str = ".unwrap() and panic!(now)";"#,
        r##"pub const B: &str = r#"Ordering::Relaxed in a raw string"#;"##,
        r#"pub const C: &[u8] = b"File::create(path)";"#,
        r#"pub const D: &str = "self.freq += 1; slots[i]; unsafe {}";"#,
        r#"pub const E: &str = "fail_point!(\"site\")";"#,
    ] {
        let hits = active("src/hot.rs", src);
        assert!(hits.is_empty(), "{src} produced {hits:?}");
    }
}

#[test]
fn comments_never_fire() {
    for src in [
        "// .unwrap() panic!(x) Ordering::Relaxed\npub fn f() {}",
        "/* File::create(p); freq += 1; slots[i] */\npub fn f() {}",
        "/* nested /* fail_point!(\"x\") */ unsafe {} */\npub fn f() {}",
        "/// Call `.unwrap()` or `panic!` here.\npub fn f() {}",
        "//! Module docs: `Ordering::Relaxed`, `OpenOptions::new()`.\npub fn f() {}",
    ] {
        let hits = active("src/hot.rs", src);
        assert!(hits.is_empty(), "{src} produced {hits:?}");
    }
}

#[test]
fn lookalike_identifiers_never_fire() {
    for src in [
        // Word-boundary: counter field `freq` vs `frequency` / `freq_hint`.
        "pub fn f(c: &mut C) { c.frequency += 1; c.freq_hint += 1; }",
        // `unwrap_or` is not `unwrap`; `expected` is not `expect`.
        "pub fn f(v: Option<u64>) -> u64 { v.unwrap_or(0) }",
        "pub fn f(e: &E) -> bool { e.expected() }",
        // A module named failpoints is not the failpoint:: facility.
        "pub mod failpoints_dashboard { pub fn render() {} }",
        // `Relaxed` without the Ordering:: path (a local enum).
        "pub fn f() -> Mode { Mode::Relaxed }",
    ] {
        let hits = active("src/hot.rs", src);
        assert!(hits.is_empty(), "{src} produced {hits:?}");
    }
}

#[test]
fn line_breaks_do_not_hide_violations() {
    // The old lexical linter matched `.unwrap()` as a substring of one
    // line; splitting the call across lines evaded it. Token-level
    // matching cannot be evaded by formatting.
    let split_unwrap =
        "pub fn f(v: Option<u64>) -> u64 {\n    v\n        .\n        unwrap\n        ()\n}";
    let hits = active("src/hot.rs", split_unwrap);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_panic");

    let split_relaxed =
        "pub fn f(h: &A) -> u64 {\n    h.load(Ordering\n        ::\n        Relaxed)\n}";
    let hits = active("src/conc.rs", split_relaxed);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_relaxed");
}

#[test]
fn mid_statement_comments_do_not_hide_violations() {
    let src = "pub fn f(v: Option<u64>) -> u64 {\n    v. /* why not */ unwrap /* here */ ()\n}";
    let hits = active("src/hot.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_panic");
}

#[test]
fn obs_lock_update_split_across_lines_fires() {
    let src =
        "pub fn f(m: &M, c: &C) {\n    m.lock()\n        .map(|_| c.inc())\n        .ok();\n}";
    let hits = active("src/hot.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "obs_hot_path");
}

#[test]
fn raw_identifiers_still_match_rules() {
    // `r#unwrap` is a *different name* than `unwrap` in Rust — it is
    // only needed for keywords, but either way it must not fire the
    // method rule...
    let src = "pub fn f(v: &V) -> u64 { v.r#unwrap() }";
    assert!(active("src/hot.rs", src).is_empty());
    // ...while indexing through a raw identifier is still indexing.
    let src = "pub fn f(r#type: &[u64]) -> u64 { r#type[0] }";
    let hits = active("src/hot.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_index");
}

#[test]
fn waiver_inside_string_does_not_suppress() {
    // Regression: the old line-based waiver scan honored waiver text
    // anywhere on the line, including inside string literals.
    let src = "pub fn f(v: Result<u64, String>) -> u64 {\n    v.expect(\"// lint:allow(no_panic): not a waiver\")\n}";
    let hits = active("src/hot.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_panic");
    assert!(!hits[0].waived);
}

#[test]
fn waiver_in_doc_comment_does_not_suppress() {
    let src = "pub fn f(v: Option<u64>) -> u64 {\n    /** lint:allow(no_panic): docs are not directives */\n    v.unwrap()\n}";
    let hits = active("src/hot.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_panic");
}

#[test]
fn cfg_test_formatting_cannot_leak() {
    // The deleted brace-tracking heuristic required `#[cfg(test)]` at
    // the start of a line and counted braces textually; both of these
    // layouts confused it. Structural evaluation handles any layout.
    for src in [
        "#[cfg(test)] mod t { fn h(v: Option<u64>) -> u64 { v.unwrap() } }",
        "#[cfg(\n    test\n)]\nmod t {\n    fn h(v: Option<u64>) -> u64 { v.unwrap() }\n}",
        "#[rustfmt::skip] #[cfg(test)] fn h(v: Option<u64>) -> u64 { v.unwrap() }",
    ] {
        let hits = active("src/hot.rs", src);
        assert!(hits.is_empty(), "{src:?} produced {hits:?}");
    }
    // And a string containing `#[cfg(test)]` must NOT open an exemption.
    let bait = "pub const S: &str = \"#[cfg(test)] mod t {\";\npub fn f(v: Option<u64>) -> u64 { v.unwrap() }";
    let hits = active("src/hot.rs", bait);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no_panic");
}
