//! Table-driven lexer tests: token kinds, exact texts, and span
//! round-trips for every construct that can hide rule-relevant text.

use xtask::lexer::{is_keyword, tokenize, LexError, Token, TokenKind};
use TokenKind::*;

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    tokenize(src)
        .unwrap_or_else(|e| panic!("lex failed for {src:?}: {e}"))
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

fn toks(src: &str) -> Vec<Token> {
    tokenize(src).unwrap_or_else(|e| panic!("lex failed for {src:?}: {e}"))
}

/// `(name, source, expected kind/text pairs)`.
type Case = (&'static str, &'static str, Vec<(TokenKind, &'static str)>);

fn table() -> Vec<Case> {
    vec![
        (
            "plain_statement",
            "let x = 1;",
            vec![
                (Ident, "let"),
                (Ident, "x"),
                (Punct, "="),
                (Num, "1"),
                (Punct, ";"),
            ],
        ),
        (
            "raw_string_one_hash",
            r###"let s = r#"a "quoted" part"#;"###,
            vec![
                (Ident, "let"),
                (Ident, "s"),
                (Punct, "="),
                (RawStr, r##"r#"a "quoted" part"#"##),
                (Punct, ";"),
            ],
        ),
        (
            "raw_string_two_hashes_with_inner_hash_quote",
            r####"r##"ends "# but not here"##"####,
            vec![(RawStr, r####"r##"ends "# but not here"##"####)],
        ),
        (
            "raw_string_zero_hashes",
            r#"r"no escapes \ here""#,
            vec![(RawStr, r#"r"no escapes \ here""#)],
        ),
        (
            "byte_string",
            r#"b"bytes\n""#,
            vec![(ByteStr, r#"b"bytes\n""#)],
        ),
        (
            "raw_byte_string",
            r###"br#"raw "bytes""#"###,
            vec![(RawByteStr, r###"br#"raw "bytes""#"###)],
        ),
        (
            "string_with_escaped_quote",
            r#""a \" b""#,
            vec![(Str, r#""a \" b""#)],
        ),
        ("char_simple", "'a'", vec![(Char, "'a'")]),
        ("char_escaped_quote", r"'\''", vec![(Char, r"'\''")]),
        ("char_escaped_backslash", r"'\\'", vec![(Char, r"'\\'")]),
        ("char_unicode", r"'\u{1F600}'", vec![(Char, r"'\u{1F600}'")]),
        ("char_open_bracket", "'['", vec![(Char, "'['")]),
        ("byte_char", "b'x'", vec![(ByteChar, "b'x'")]),
        (
            "byte_char_escaped_quote",
            r"b'\''",
            vec![(ByteChar, r"b'\''")],
        ),
        (
            "lifetime_in_ref",
            "&'a str",
            vec![(Punct, "&"), (Lifetime, "'a"), (Ident, "str")],
        ),
        ("lifetime_static", "'static", vec![(Lifetime, "'static")]),
        ("lifetime_underscore", "'_", vec![(Lifetime, "'_")]),
        (
            "lifetime_then_char",
            "<'a> = 'a'",
            vec![
                (Punct, "<"),
                (Lifetime, "'a"),
                (Punct, ">"),
                (Punct, "="),
                (Char, "'a'"),
            ],
        ),
        (
            "nested_block_comment",
            "/* outer /* inner */ still outer */ x",
            vec![
                (BlockComment, "/* outer /* inner */ still outer */"),
                (Ident, "x"),
            ],
        ),
        (
            "line_comment_non_doc",
            "// plain\nx",
            vec![(LineComment, "// plain"), (Ident, "x")],
        ),
        (
            "doc_line_comment",
            "/// docs\nx",
            vec![(DocLineComment, "/// docs"), (Ident, "x")],
        ),
        (
            "four_slashes_is_not_doc",
            "//// not docs\nx",
            vec![(LineComment, "//// not docs"), (Ident, "x")],
        ),
        (
            "inner_doc_line",
            "//! module docs\nx",
            vec![(DocLineComment, "//! module docs"), (Ident, "x")],
        ),
        (
            "doc_block",
            "/** docs */ x",
            vec![(DocBlockComment, "/** docs */"), (Ident, "x")],
        ),
        (
            "inner_doc_block",
            "/*! module */ x",
            vec![(DocBlockComment, "/*! module */"), (Ident, "x")],
        ),
        (
            "three_star_block_is_not_doc",
            "/*** not docs */ x",
            vec![(BlockComment, "/*** not docs */"), (Ident, "x")],
        ),
        (
            "empty_block_is_not_doc",
            "/**/ x",
            vec![(BlockComment, "/**/"), (Ident, "x")],
        ),
        (
            "shebang",
            "#!/usr/bin/env run\nfn main() {}",
            vec![
                (Shebang, "#!/usr/bin/env run"),
                (Ident, "fn"),
                (Ident, "main"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "{"),
                (Punct, "}"),
            ],
        ),
        (
            "inner_attribute_is_not_shebang",
            "#![allow(dead_code)]",
            vec![
                (Punct, "#"),
                (Punct, "!"),
                (Punct, "["),
                (Ident, "allow"),
                (Punct, "("),
                (Ident, "dead_code"),
                (Punct, ")"),
                (Punct, "]"),
            ],
        ),
        ("raw_ident", "r#match", vec![(RawIdent, "r#match")]),
        (
            "raw_ident_then_string",
            r##"r#type = r"s""##,
            vec![(RawIdent, "r#type"), (Punct, "="), (RawStr, r#"r"s""#)],
        ),
        (
            "b_and_r_plain_idents",
            "b + r * br / br2",
            vec![
                (Ident, "b"),
                (Punct, "+"),
                (Ident, "r"),
                (Punct, "*"),
                (Ident, "br"),
                (Punct, "/"),
                (Ident, "br2"),
            ],
        ),
        (
            "numbers",
            "0xFF 0b1010 1_000u64 2.5e-3 1.0f32 7usize",
            vec![
                (Num, "0xFF"),
                (Num, "0b1010"),
                (Num, "1_000u64"),
                (Num, "2.5e-3"),
                (Num, "1.0f32"),
                (Num, "7usize"),
            ],
        ),
        (
            "range_is_not_a_float",
            "0..n",
            vec![(Num, "0"), (Punct, ".."), (Ident, "n")],
        ),
        (
            "tuple_field_access",
            "x.0",
            vec![(Ident, "x"), (Punct, "."), (Num, "0")],
        ),
        (
            "maximal_munch_puncts",
            "a <<= 1; b ..= c; d => e :: f -> g",
            vec![
                (Ident, "a"),
                (Punct, "<<="),
                (Num, "1"),
                (Punct, ";"),
                (Ident, "b"),
                (Punct, "..="),
                (Ident, "c"),
                (Punct, ";"),
                (Ident, "d"),
                (Punct, "=>"),
                (Ident, "e"),
                (Punct, "::"),
                (Ident, "f"),
                (Punct, "->"),
                (Ident, "g"),
            ],
        ),
        (
            "compound_assign_ops",
            "x += 1; y -= 2; z *= 3",
            vec![
                (Ident, "x"),
                (Punct, "+="),
                (Num, "1"),
                (Punct, ";"),
                (Ident, "y"),
                (Punct, "-="),
                (Num, "2"),
                (Punct, ";"),
                (Ident, "z"),
                (Punct, "*="),
                (Num, "3"),
            ],
        ),
    ]
}

#[test]
fn table_kinds_and_texts() {
    for (name, src, expected) in table() {
        let got = kinds(src);
        let want: Vec<(TokenKind, String)> =
            expected.iter().map(|(k, t)| (*k, t.to_string())).collect();
        assert_eq!(got, want, "case `{name}` on {src:?}");
    }
}

#[test]
fn table_spans_round_trip() {
    // Every token's recorded span must slice the source back to its text,
    // and concatenating tokens + whitespace must reproduce the input.
    for (name, src, _) in table() {
        let tokens = toks(src);
        let mut cursor = 0usize;
        for tok in &tokens {
            assert_eq!(
                &src[tok.start..tok.end],
                tok.text,
                "span mismatch in `{name}`"
            );
            assert!(
                src[cursor..tok.start].chars().all(char::is_whitespace),
                "non-whitespace gap before token {:?} in `{name}`",
                tok.text
            );
            cursor = tok.end;
        }
        assert!(
            src[cursor..].chars().all(char::is_whitespace),
            "non-whitespace tail in `{name}`"
        );
    }
}

#[test]
fn line_and_col_positions() {
    let src = "let a = 1;\n  let bb = \"x\";\n";
    let tokens = toks(src);
    let positions: Vec<(&str, usize, usize)> = tokens
        .iter()
        .map(|t| (t.text.as_str(), t.line, t.col))
        .collect();
    assert_eq!(
        positions,
        vec![
            ("let", 1, 1),
            ("a", 1, 5),
            ("=", 1, 7),
            ("1", 1, 9),
            (";", 1, 10),
            ("let", 2, 3),
            ("bb", 2, 7),
            ("=", 2, 10),
            ("\"x\"", 2, 12),
            (";", 2, 15),
        ]
    );
}

#[test]
fn multiline_string_advances_lines() {
    let src = "a\n\"two\nlines\"\nb";
    let tokens = toks(src);
    assert_eq!(tokens[1].kind, Str);
    assert_eq!(tokens[1].line, 2);
    assert_eq!(tokens[2].text, "b");
    assert_eq!(tokens[2].line, 4);
}

#[test]
fn banned_text_inside_strings_is_one_token() {
    // The motivating property: rule-relevant text inside any string-like
    // literal is a single opaque token.
    for src in [
        "\".unwrap() panic!(x)\"",
        "r#\"fail_point!(\"site\")\"#",
        "b\"Ordering::Relaxed\"",
        "br#\"File::create\"#",
    ] {
        let tokens = toks(src);
        assert_eq!(tokens.len(), 1, "{src:?} lexed as {tokens:?}");
        assert!(tokens[0].kind.is_string_like());
    }
}

#[test]
fn unterminated_inputs_error_with_position() {
    for (src, what) in [
        ("\"open", "string"),
        ("r#\"open\"", "string"),
        ("/* open /* nested */", "comment"),
        ("'", "'"),
    ] {
        let err: LexError = tokenize(src).expect_err(src);
        assert!(
            err.message.contains(what),
            "{src:?} gave {err:?}, expected mention of {what:?}"
        );
        assert!(err.line >= 1 && err.col >= 1);
    }
}

#[test]
fn keyword_classification() {
    assert!(is_keyword("match"));
    assert!(is_keyword("unsafe"));
    assert!(!is_keyword("matches"));
    assert!(!is_keyword("freq"));
}

#[test]
fn shebang_only_at_byte_zero() {
    let src = "x\n#!/not/a/shebang";
    let tokens = toks(src);
    assert!(tokens.iter().all(|t| t.kind != Shebang));
}

// ---- macro-heavy input ----

/// Sources dense with macro machinery: `macro_rules!` definitions,
/// fragment specifiers, repetition operators and nested `#[cfg_attr]`
/// attributes. The resolver *skips* `macro_rules!` bodies wholesale, and
/// it can only skip what the lexer delivered faithfully — a mis-lexed
/// `$(`…`)*` group would desynchronize the token tree and make the skip
/// swallow (or miss) real items.
fn macro_table() -> Vec<Case> {
    vec![
        (
            "macro_rules_with_fragment_specifier",
            "macro_rules! m { ($x:expr) => { $x + 1 }; }",
            vec![
                (Ident, "macro_rules"),
                (Punct, "!"),
                (Ident, "m"),
                (Punct, "{"),
                (Punct, "("),
                (Punct, "$"),
                (Ident, "x"),
                (Punct, ":"),
                (Ident, "expr"),
                (Punct, ")"),
                (Punct, "=>"),
                (Punct, "{"),
                (Punct, "$"),
                (Ident, "x"),
                (Punct, "+"),
                (Num, "1"),
                (Punct, "}"),
                (Punct, ";"),
                (Punct, "}"),
            ],
        ),
        (
            "repetition_with_separator_and_optional_trailer",
            "m!($($id:ident),* $(,)?);",
            vec![
                (Ident, "m"),
                (Punct, "!"),
                (Punct, "("),
                (Punct, "$"),
                (Punct, "("),
                (Punct, "$"),
                (Ident, "id"),
                (Punct, ":"),
                (Ident, "ident"),
                (Punct, ")"),
                (Punct, ","),
                (Punct, "*"),
                (Punct, "$"),
                (Punct, "("),
                (Punct, ","),
                (Punct, ")"),
                (Punct, "?"),
                (Punct, ")"),
                (Punct, ";"),
            ],
        ),
        (
            "nested_cfg_attr",
            "#[cfg_attr(test, allow(dead_code), cfg_attr(feature = \"x\", inline))]",
            vec![
                (Punct, "#"),
                (Punct, "["),
                (Ident, "cfg_attr"),
                (Punct, "("),
                (Ident, "test"),
                (Punct, ","),
                (Ident, "allow"),
                (Punct, "("),
                (Ident, "dead_code"),
                (Punct, ")"),
                (Punct, ","),
                (Ident, "cfg_attr"),
                (Punct, "("),
                (Ident, "feature"),
                (Punct, "="),
                (Str, "\"x\""),
                (Punct, ","),
                (Ident, "inline"),
                (Punct, ")"),
                (Punct, ")"),
                (Punct, "]"),
            ],
        ),
        (
            "macro_body_with_fake_fn_and_unbalanced_quote_in_string",
            "macro_rules! t { () => { fn ghost() { s.unwrap() } }; }",
            vec![
                (Ident, "macro_rules"),
                (Punct, "!"),
                (Ident, "t"),
                (Punct, "{"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "=>"),
                (Punct, "{"),
                (Ident, "fn"),
                (Ident, "ghost"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "{"),
                (Ident, "s"),
                (Punct, "."),
                (Ident, "unwrap"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "}"),
                (Punct, "}"),
                (Punct, ";"),
                (Punct, "}"),
            ],
        ),
        (
            "dollar_crate_path_in_macro_body",
            "macro_rules! p { () => { $crate::inner::go() }; }",
            vec![
                (Ident, "macro_rules"),
                (Punct, "!"),
                (Ident, "p"),
                (Punct, "{"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "=>"),
                (Punct, "{"),
                (Punct, "$"),
                (Ident, "crate"),
                (Punct, "::"),
                (Ident, "inner"),
                (Punct, "::"),
                (Ident, "go"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, "}"),
                (Punct, ";"),
                (Punct, "}"),
            ],
        ),
    ]
}

#[test]
fn macro_table_kinds_and_texts() {
    for (name, src, expected) in macro_table() {
        let got = kinds(src);
        let want: Vec<(TokenKind, String)> =
            expected.iter().map(|(k, t)| (*k, t.to_string())).collect();
        assert_eq!(got, want, "case `{name}` on {src:?}");
    }
}

#[test]
fn macro_table_spans_round_trip() {
    for (name, src, _) in macro_table() {
        let tokens = toks(src);
        let mut cursor = 0usize;
        for tok in &tokens {
            assert_eq!(
                &src[tok.start..tok.end],
                tok.text,
                "span mismatch in `{name}`"
            );
            assert!(
                src[cursor..tok.start].chars().all(char::is_whitespace),
                "non-whitespace gap before token {:?} in `{name}`",
                tok.text
            );
            cursor = tok.end;
        }
        assert!(
            src[cursor..].chars().all(char::is_whitespace),
            "non-whitespace tail in `{name}`"
        );
    }
}
