//! Machine-readable output tests: `--format json` record shape and
//! `--format github` workflow annotations, at both the renderer and
//! CLI levels.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{github_annotation, json_record, run_with, Violation};

fn sample() -> Violation {
    Violation {
        file: "crates/core/src/table.rs".to_string(),
        line: 42,
        col: 7,
        end_col: 13,
        rule: "no_panic",
        message: "`.unwrap(...)` in a hot-path module".to_string(),
        snippet: "v.unwrap()".to_string(),
        waived: false,
    }
}

#[test]
fn json_record_shape() {
    let record = json_record(&sample());
    assert_eq!(
        record,
        "{\"rule\":\"no_panic\",\"file\":\"crates/core/src/table.rs\",\"line\":42,\
         \"col\":7,\"snippet\":\"v.unwrap()\",\"waived\":false,\
         \"message\":\"`.unwrap(...)` in a hot-path module\"}"
    );
}

#[test]
fn json_record_escapes_special_characters() {
    let mut v = sample();
    v.snippet = "say \"hi\"\tback\\now".to_string();
    v.message = "line\nbreak".to_string();
    let record = json_record(&v);
    assert!(record.contains("say \\\"hi\\\"\\tback\\\\now"), "{record}");
    assert!(record.contains("line\\nbreak"), "{record}");
    assert!(
        !record.contains('\n'),
        "JSON Lines records must be one line"
    );
}

#[test]
fn json_record_marks_waived() {
    let mut v = sample();
    v.waived = true;
    assert!(json_record(&v).contains("\"waived\":true"));
}

#[test]
fn github_annotation_shape() {
    assert_eq!(
        github_annotation(&sample()),
        "::error file=crates/core/src/table.rs,line=42,endLine=42,col=7,endColumn=13,\
         title=xtask lint (no_panic)::[no_panic] `.unwrap(...)` in a hot-path module"
    );
}

/// The annotation must carry the column range and repeat the rule name
/// in the message body (the `title` property is dropped by some GitHub
/// renderers).
#[test]
fn github_annotation_has_columns_and_rule_in_message() {
    let line = github_annotation(&sample());
    assert!(line.contains("col=7"), "{line}");
    assert!(line.contains("endColumn=13"), "{line}");
    assert!(line.contains("::[no_panic] "), "{line}");
}

#[test]
fn github_annotation_encodes_newlines_and_percents() {
    let mut v = sample();
    v.message = "50% of\nthe time".to_string();
    let line = github_annotation(&v);
    assert!(line.contains("50%25 of%0Athe time"), "{line}");
    assert!(!line.contains('\n'));
}

// ---- CLI-level checks over a scratch tree ----

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-formats-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    dir
}

/// A tree with one active violation (unwrap in a hot-path file) and one
/// waived violation.
fn seeded_tree(name: &str) -> PathBuf {
    let root = scratch(name);
    fs::write(
        root.join("src/hot.rs"),
        "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n\
         pub fn g(w: Option<u64>) -> u64 {\n    w.unwrap() // lint:allow(no_panic): test waiver\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[hot_path]\nfiles = [\"src/hot.rs\"]\n",
    )
    .expect("write");
    root
}

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let mut args: Vec<String> = vec![
        "lint".to_string(),
        "--root".to_string(),
        root.to_str().expect("utf8").to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut out = Vec::new();
    let code = run_with(&args, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn cli_json_emits_one_record_per_finding_including_waived() {
    let root = seeded_tree("json");
    let (code, out) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, 1, "output: {out}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "output: {out}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for field in [
            "\"rule\":",
            "\"file\":",
            "\"line\":",
            "\"col\":",
            "\"snippet\":",
            "\"waived\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    assert!(out.contains("\"waived\":false"), "{out}");
    assert!(out.contains("\"waived\":true"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_github_emits_error_annotations() {
    let root = seeded_tree("github");
    let (code, out) = run_lint(&root, &["--format", "github"]);
    assert_eq!(code, 1, "output: {out}");
    let annotations: Vec<&str> = out.lines().filter(|l| l.starts_with("::error ")).collect();
    // Only the active violation annotates; the waived one does not.
    assert_eq!(annotations.len(), 1, "output: {out}");
    assert!(
        annotations[0].contains("file=src/hot.rs,line=2,"),
        "output: {out}"
    );
    // The seeded violation is `v.unwrap()` on line 2: the annotation
    // must carry the real column range of the `unwrap` token and name
    // the rule inside the message body.
    assert!(annotations[0].contains("col=7"), "output: {out}");
    assert!(annotations[0].contains("endColumn=13"), "output: {out}");
    assert!(annotations[0].contains("::[no_panic] "), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_text_is_the_default_format() {
    let root = seeded_tree("text");
    let (code, out) = run_lint(&root, &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("src/hot.rs:2:"), "output: {out}");
    assert!(out.contains("[no_panic]"), "output: {out}");
    assert!(out.contains("1 violation(s) (1 waived)"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_unknown_format_exits_two() {
    let root = seeded_tree("badfmt");
    let (code, out) = run_lint(&root, &["--format", "xml"]);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("unknown format `xml`"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_json_clean_tree_emits_nothing_and_exits_zero() {
    let root = scratch("jsonclean");
    fs::write(root.join("src/lib.rs"), "pub fn f() -> u64 { 1 }\n").expect("write");
    fs::write(root.join("lint.toml"), "[paths]\nroots = [\"src\"]\n").expect("write");
    let (code, out) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.is_empty(), "clean JSON output must be empty: {out:?}");
    let _ = fs::remove_dir_all(&root);
}
