//! Tests for `lint --changed`: per-file findings scope to files git
//! reports as modified (unstaged + staged), graph rules always run over
//! the whole workspace, and outside a git checkout the flag degrades to
//! a full run with a notice.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::run_with;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-changed-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    dir
}

fn git(root: &Path, args: &[&str]) {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args([
            "-c",
            "user.email=lint@test",
            "-c",
            "user.name=lint-test",
            "-c",
            "commit.gpgsign=false",
        ])
        .args(args)
        .output()
        .expect("spawn git");
    assert!(
        out.status.success(),
        "git {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let mut args: Vec<String> = vec![
        "lint".to_string(),
        "--root".to_string(),
        root.to_str().expect("utf8").to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut out = Vec::new();
    let code = run_with(&args, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

/// Two violating hot-path files, both committed; only one modified.
/// `--changed` must report the modified one and stay silent about the
/// other.
#[test]
fn changed_scopes_per_file_findings_to_modified_files() {
    let root = scratch("scope");
    fs::write(
        root.join("src/stale.rs"),
        "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("src/fresh.rs"),
        "pub fn g(w: Option<u64>) -> u64 {\n    w.clone().unwrap_or(0)\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[hot_path]\nfiles = [\"src/stale.rs\", \"src/fresh.rs\"]\n",
    )
    .expect("write");
    git(&root, &["init", "-q"]);
    git(&root, &["add", "."]);
    git(&root, &["commit", "-q", "-m", "seed"]);

    // Nothing modified: --changed lints nothing, even though a full run
    // would flag src/stale.rs.
    let (code, out) = run_lint(&root, &["--changed"]);
    assert_eq!(code, 0, "output: {out}");

    // Introduce a violation in fresh.rs only.
    fs::write(
        root.join("src/fresh.rs"),
        "pub fn g(w: Option<u64>) -> u64 {\n    w.unwrap()\n}\n",
    )
    .expect("write");
    let (code, out) = run_lint(&root, &["--changed"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("src/fresh.rs:2:"), "{out}");
    assert!(!out.contains("src/stale.rs"), "{out}");

    // The full run still sees both.
    let (code, out) = run_lint(&root, &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("src/stale.rs"), "{out}");
    assert!(out.contains("src/fresh.rs"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

/// Staged-but-uncommitted modifications count as changed too.
#[test]
fn changed_includes_staged_files() {
    let root = scratch("staged");
    fs::write(root.join("src/hot.rs"), "pub fn f() -> u64 {\n    1\n}\n").expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[hot_path]\nfiles = [\"src/hot.rs\"]\n",
    )
    .expect("write");
    git(&root, &["init", "-q"]);
    git(&root, &["add", "."]);
    git(&root, &["commit", "-q", "-m", "seed"]);
    fs::write(
        root.join("src/hot.rs"),
        "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    )
    .expect("write");
    git(&root, &["add", "src/hot.rs"]);
    let (code, out) = run_lint(&root, &["--changed"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("src/hot.rs:2:"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

/// Graph rules see the whole workspace even under `--changed`: a
/// cross-file purity violation reports although no file is modified.
#[test]
fn changed_still_runs_graph_rules_over_full_workspace() {
    let root = scratch("graphfull");
    fs::write(
        root.join("src/hot.rs"),
        "pub fn entry(v: Option<u64>) -> u64 {\n    crate::util::helper(v)\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("src/util.rs"),
        "pub fn helper(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/hot.rs::entry\"]\n\
         purity_deny = [\"panic\"]\n",
    )
    .expect("write");
    git(&root, &["init", "-q"]);
    git(&root, &["add", "."]);
    git(&root, &["commit", "-q", "-m", "seed"]);
    let (code, out) = run_lint(&root, &["--changed"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[hot_path_purity]"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

/// Outside a git checkout the flag cannot scope, so it degrades to the
/// full run — loudly, and without changing the exit semantics.
#[test]
fn changed_outside_git_falls_back_to_full_run_with_notice() {
    let root = scratch("nogit");
    fs::write(
        root.join("src/hot.rs"),
        "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[hot_path]\nfiles = [\"src/hot.rs\"]\n",
    )
    .expect("write");
    let (code, out) = run_lint(&root, &["--changed"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(
        out.contains("not a git checkout (or git unavailable); running full lint"),
        "{out}"
    );
    assert!(out.contains("src/hot.rs:2:"), "{out}");
    let _ = fs::remove_dir_all(&root);
}
