//! lint.toml schema validation: unknown sections/keys and dangling
//! paths are hard configuration errors (exit 2), never silently
//! ignored — a typo must not quietly disable a rule.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{parse_config, run_with, validate_config_paths};

const GOOD: &str = r#"
[paths]
roots = ["src"]
skip = ["tests"]

[unsafe_code]
allow = ["src/spsc.rs"]

[simd]
modules = ["src/simd.rs"]

[hot_path]
files = ["src/table.rs"]

[counters]
fields = ["freq", "persist"]

[orderings]
no_relaxed_files = ["src/spsc.rs"]
protocol_files = ["src/spsc.rs"]

[failpoints]
allow = ["src/table.rs"]

[atomic_io]
files = ["src/table.rs"]

[obs]
metrics_files = ["src/metrics.rs"]
call_site_files = ["src/table.rs"]

[bench]
tolerance = 7.5
"#;

#[test]
fn full_schema_parses() {
    let config = parse_config(GOOD).expect("valid config");
    assert_eq!(config.roots, vec!["src"]);
    assert_eq!(config.counter_fields, vec!["freq", "persist"]);
    assert_eq!(config.obs_call_site_files, vec!["src/table.rs"]);
    assert_eq!(config.protocol_files, vec!["src/spsc.rs"]);
    assert_eq!(config.bench_tolerance, Some(7.5));
}

#[test]
fn bench_tolerance_rejects_non_numeric_and_negative_values() {
    for bad in ["-1", "abc", "inf", "nan", "[5.0]"] {
        let err = parse_config(&format!(
            "[paths]\nroots = [\"src\"]\n[bench]\ntolerance = {bad}\n"
        ))
        .expect_err(bad);
        assert!(err.contains("tolerance"), "`{bad}`: {err}");
    }
}

#[test]
fn bench_tolerance_is_optional() {
    let config = parse_config("[paths]\nroots = [\"src\"]\n").expect("valid");
    assert_eq!(config.bench_tolerance, None);
}

#[test]
fn protocol_files_paths_are_validated() {
    let root = scratch("protocol");
    write(&root, "src/real.rs", "pub fn f() {}\n");
    let config = parse_config(
        "[paths]\nroots = [\"src\"]\n[orderings]\nprotocol_files = [\"src/gone.rs\"]\n",
    )
    .expect("parses");
    let err = validate_config_paths(&config, &root).expect_err("must reject");
    assert!(err.contains("[orderings] protocol_files"), "{err}");
    assert!(err.contains("src/gone.rs"), "{err}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn multiline_arrays_and_comments_parse() {
    let config =
        parse_config("[paths]\nroots = [\n  \"crates\", # the workspace\n  \"tools\",\n]\n")
            .expect("valid");
    assert_eq!(config.roots, vec!["crates", "tools"]);
}

#[test]
fn unknown_section_is_a_named_error() {
    let err = parse_config("[paths]\nroots = [\"src\"]\n\n[hotpath]\nfiles = []\n")
        .expect_err("must reject");
    assert!(err.contains("unknown section `[hotpath]`"), "{err}");
    assert!(err.contains("lint.toml:4"), "should carry the line: {err}");
}

#[test]
fn unknown_key_is_a_named_error() {
    // `file` misspelled for `files`.
    let err = parse_config("[paths]\nroots = [\"src\"]\n\n[hot_path]\nfile = [\"a.rs\"]\n")
        .expect_err("must reject");
    assert!(err.contains("unknown key `file`"), "{err}");
    assert!(err.contains("[hot_path]"), "{err}");
    assert!(err.contains("files"), "should list valid keys: {err}");
}

#[test]
fn key_in_wrong_section_is_rejected() {
    let err =
        parse_config("[paths]\nroots = [\"src\"]\nfields = [\"freq\"]\n").expect_err("must reject");
    assert!(err.contains("unknown key `fields`"), "{err}");
}

#[test]
fn empty_roots_is_rejected() {
    let err = parse_config("[paths]\nskip = [\"tests\"]\n").expect_err("must reject");
    assert!(err.contains("roots"), "{err}");
}

#[test]
fn malformed_lines_are_rejected() {
    assert!(parse_config("[paths]\nroots\n").is_err());
    assert!(parse_config("[paths]\nroots = [unquoted]\n").is_err());
    assert!(parse_config("[paths]\nroots = [\"open\",\n").is_err());
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-schema-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    fs::write(root.join(rel), text).expect("write");
}

fn run_lint(root: &Path) -> (i32, String) {
    let args: Vec<String> = ["lint", "--root", root.to_str().expect("utf8")]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let code = run_with(&args, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn validate_paths_rejects_dangling_entries() {
    let root = scratch("dangling");
    write(&root, "src/real.rs", "pub fn f() {}\n");
    let config =
        parse_config("[paths]\nroots = [\"src\"]\n[hot_path]\nfiles = [\"src/gone.rs\"]\n")
            .expect("parses");
    let err = validate_config_paths(&config, &root).expect_err("must reject");
    assert!(err.contains("[hot_path] files"), "{err}");
    assert!(err.contains("src/gone.rs"), "{err}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn validate_paths_rejects_missing_root_dir() {
    let root = scratch("noroot");
    let config = parse_config("[paths]\nroots = [\"nonexistent\"]\n").expect("parses");
    let err = validate_config_paths(&config, &root).expect_err("must reject");
    assert!(err.contains("nonexistent"), "{err}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_misspelled_key_exits_two_with_diagnostic() {
    let root = scratch("typo");
    write(&root, "src/lib.rs", "pub fn f() {}\n");
    // `allow` misspelled as `allowed` in [unsafe_code].
    write(
        &root,
        "lint.toml",
        "[paths]\nroots = [\"src\"]\n\n[unsafe_code]\nallowed = [\"src/lib.rs\"]\n",
    );
    let (code, out) = run_lint(&root);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("unknown key `allowed`"), "output: {out}");
    assert!(out.contains("[unsafe_code]"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_dangling_path_exits_two_with_diagnostic() {
    let root = scratch("stale");
    write(&root, "src/lib.rs", "pub fn f() {}\n");
    write(
        &root,
        "lint.toml",
        "[paths]\nroots = [\"src\"]\n\n[hot_path]\nfiles = [\"src/renamed.rs\"]\n",
    );
    let (code, out) = run_lint(&root);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("src/renamed.rs"), "output: {out}");
    assert!(out.contains("[hot_path] files"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_valid_config_on_clean_tree_exits_zero() {
    let root = scratch("clean");
    write(&root, "src/lib.rs", "pub fn f() -> u64 { 1 }\n");
    write(&root, "lint.toml", "[paths]\nroots = [\"src\"]\n");
    let (code, out) = run_lint(&root);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("clean"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn shipped_lint_toml_passes_its_own_schema() {
    let root = xtask::workspace_root();
    let text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let config = parse_config(&text).expect("shipped config parses");
    validate_config_paths(&config, &root).expect("shipped config paths all exist");
}
