//! Token-tree construction and statement-segmentation tests: the
//! statement is the unit waivers and the obs rule operate on, so its
//! boundaries are load-bearing.

use xtask::lexer::tokenize;
use xtask::tokentree::{build, segment, Delim, Tree};

/// Statement id of the first token with text `needle` (None = no
/// statement, e.g. a comment).
fn stmt_of(src: &str, needle: &str) -> Option<usize> {
    let tokens = tokenize(src).expect("lex");
    let root = build(&tokens).expect("tree");
    let stmts = segment(&tokens, &root);
    let (i, _) = tokens
        .iter()
        .enumerate()
        .find(|(_, t)| t.text == needle)
        .unwrap_or_else(|| panic!("token `{needle}` not found in {src:?}"));
    stmts.stmt_of[i]
}

fn same_stmt(src: &str, a: &str, b: &str) -> bool {
    let sa = stmt_of(src, a);
    let sb = stmt_of(src, b);
    sa.is_some() && sa == sb
}

#[test]
fn build_groups_and_delims() {
    let tokens = tokenize("fn f(a: u64) -> [u64; 2] { [a, a] }").expect("lex");
    let root = build(&tokens).expect("tree");
    // fn f (..) -> [..] {..}
    let delims: Vec<Delim> = root
        .iter()
        .filter_map(|t| match t {
            Tree::Group(g) => Some(g.delim),
            Tree::Leaf(_) => None,
        })
        .collect();
    assert_eq!(delims, vec![Delim::Paren, Delim::Bracket, Delim::Brace]);
}

#[test]
fn build_rejects_unbalanced() {
    for src in ["fn f( {", "fn f) ", "(]"] {
        let tokens = tokenize(src).expect("lex");
        assert!(build(&tokens).is_err(), "{src:?} built a tree");
    }
}

#[test]
fn build_error_carries_position() {
    let tokens = tokenize("fn f() {\n    (]\n}").expect("lex");
    let err = build(&tokens).expect_err("mismatched");
    assert!(err.starts_with("2:"), "error was {err:?}");
}

#[test]
fn comments_are_not_tree_nodes() {
    // A comment between `.` and the method name must not split the tree
    // or the statement.
    let src = "let x = a /* note */ . b();";
    let tokens = tokenize(src).expect("lex");
    let root = build(&tokens).expect("tree");
    let leaf_texts: Vec<&str> = root
        .iter()
        .filter_map(|t| match t {
            Tree::Leaf(i) => Some(tokens[*i].text.as_str()),
            Tree::Group(_) => None,
        })
        .collect();
    assert!(!leaf_texts.iter().any(|t| t.starts_with("/*")));
}

#[test]
fn semicolons_split_statements() {
    let src = "fn f() { a(); b(); }";
    assert!(!same_stmt(src, "a", "b"));
}

#[test]
fn multiline_chain_is_one_statement() {
    let src = "fn f() {\n    m.lock()\n        .map(|q| c.inc())\n        .ok();\n}";
    assert!(same_stmt(src, "lock", "inc"));
    assert!(same_stmt(src, "lock", "ok"));
}

#[test]
fn two_statements_on_one_line_are_distinct() {
    let src = "fn f() { c.inc(); let g = m.lock(); }";
    assert!(!same_stmt(src, "inc", "lock"));
}

#[test]
fn while_header_and_body_are_distinct_statements() {
    let src = "fn f() { while m.try_lock().is_err() { c.inc(); } }";
    assert!(!same_stmt(src, "try_lock", "inc"));
}

#[test]
fn match_header_and_arm_bodies() {
    // The match header is one statement; each arm body in braces opens
    // its own scope.
    let src = "fn f() { match x { A => { a(); } B => { b(); } } }";
    assert!(!same_stmt(src, "a", "b"));
    assert!(!same_stmt(src, "x", "a"));
}

#[test]
fn if_else_chain_is_one_header_statement() {
    let src = "fn f() { if p { a(); } else { b(); } c(); }";
    // `else` continues the if statement, so `if`/`else` share one id...
    assert!(same_stmt(src, "if", "else"));
    // ...but the branch bodies and the trailing call are their own.
    assert!(!same_stmt(src, "a", "b"));
    assert!(!same_stmt(src, "if", "c"));
}

#[test]
fn struct_literal_followed_by_method_continues() {
    let src = "fn f() { let v = Foo { a: 1 }.clone(); next(); }";
    assert!(same_stmt(src, "Foo", "clone"));
    assert!(!same_stmt(src, "Foo", "next"));
}

#[test]
fn consecutive_items_split() {
    let src = "fn a() { one(); } fn b() { two(); }";
    assert!(!same_stmt(src, "a", "b"));
}

#[test]
fn paren_and_bracket_contents_stay_with_statement() {
    let src = "fn f() { g(h[i], (j)); }";
    assert!(same_stmt(src, "g", "h"));
    assert!(same_stmt(src, "g", "i"));
    assert!(same_stmt(src, "g", "j"));
}

#[test]
fn closure_body_opens_its_own_scope() {
    let src = "fn f() { spawn(move || { inner(); }); after(); }";
    assert!(!same_stmt(src, "spawn", "inner"));
    assert!(!same_stmt(src, "inner", "after"));
}

#[test]
fn comments_have_no_statement() {
    let src = "fn f() { a(); /* note */ b(); }";
    assert_eq!(stmt_of(src, "/* note */"), None);
}

#[test]
fn statement_ids_are_globally_unique() {
    // Ids must never collide across sibling scopes — a waiver in one
    // function must not leak into another.
    let src = "fn a() { one(); } fn b() { two(); }";
    assert!(!same_stmt(src, "one", "two"));
}
