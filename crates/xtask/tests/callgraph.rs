//! Unit tests for the workspace resolver + call-graph layer: edge
//! resolution (typed receivers, field hops, renames, turbofish),
//! conservative ambiguous fan-out and its std-name suppressions, opaque
//! call detection, effect tables, macro-body invisibility, reachability
//! and the dot/JSON exports.

use xtask::callgraph::{self, CallKind, EffectKind};
use xtask::resolve::Workspace;
use xtask::FileAnalysis;

fn ws(files: &[(&str, &str)]) -> Workspace {
    let mut ws = Workspace::default();
    for (rel, src) in files {
        ws.add_file(rel, FileAnalysis::analyze(rel, src).expect("analyze"));
    }
    ws
}

fn fn_id(ws: &Workspace, display: &str) -> usize {
    ws.fns
        .iter()
        .position(|d| d.display() == display)
        .unwrap_or_else(|| panic!("no fn `{display}` in workspace"))
}

/// Direct-edge targets of `from`, as display names.
fn direct_targets(ws: &Workspace, graph: &callgraph::CallGraph, from: &str) -> Vec<String> {
    let mut out: Vec<String> = graph.facts[fn_id(ws, from)]
        .calls
        .iter()
        .filter(|c| c.kind == CallKind::Direct)
        .flat_map(|c| c.targets.iter().map(|&t| ws.fns[t].display()))
        .collect();
    out.sort();
    out
}

fn effect_kinds(ws: &Workspace, graph: &callgraph::CallGraph, of: &str) -> Vec<EffectKind> {
    graph.facts[fn_id(ws, of)]
        .effects
        .iter()
        .map(|e| e.kind)
        .collect()
}

// ---- edge resolution ----

#[test]
fn self_method_call_resolves_direct() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct A;\nimpl A {\n    pub fn go(&self) -> u64 { self.step() }\n\
         \x20   fn step(&self) -> u64 { 1 }\n}\n",
    )]);
    let g = callgraph::build(&w);
    assert_eq!(direct_targets(&w, &g, "A::go"), vec!["A::step"]);
}

#[test]
fn one_field_hop_resolves_via_struct_field_type() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct Inner;\nimpl Inner {\n    pub fn step(&self) -> u64 { 9 }\n}\n\
         pub struct Outer {\n    inner: Inner,\n}\n\
         impl Outer {\n    pub fn go(&self) -> u64 { self.inner.step() }\n}\n",
    )]);
    let g = callgraph::build(&w);
    assert_eq!(direct_targets(&w, &g, "Outer::go"), vec!["Inner::step"]);
}

#[test]
fn let_constructor_inference_types_the_local() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct Widget;\nimpl Widget {\n    pub fn make() -> Widget { Widget }\n\
         \x20   pub fn spin(&self) -> u64 { 3 }\n}\n\
         pub fn run() -> u64 {\n    let w = Widget::make();\n    w.spin()\n}\n",
    )]);
    let g = callgraph::build(&w);
    let targets = direct_targets(&w, &g, "run");
    assert!(targets.contains(&"Widget::make".to_string()), "{targets:?}");
    assert!(targets.contains(&"Widget::spin".to_string()), "{targets:?}");
}

#[test]
fn turbofish_free_call_resolves() {
    let w = ws(&[(
        "src/a.rs",
        "fn helper<T>(v: T) -> T { v }\n\
         pub fn entry() -> u64 { helper::<u64>(7) }\n",
    )]);
    let g = callgraph::build(&w);
    assert_eq!(direct_targets(&w, &g, "entry"), vec!["helper"]);
}

#[test]
fn use_rename_resolves_to_original() {
    let w = ws(&[
        (
            "src/a.rs",
            "use crate::b::original as alias;\npub fn entry() -> u64 { alias() }\n",
        ),
        ("src/b.rs", "pub fn original() -> u64 { 1 }\n"),
    ]);
    let g = callgraph::build(&w);
    assert_eq!(direct_targets(&w, &g, "entry"), vec!["original"]);
}

#[test]
fn unknown_receiver_fans_out_to_all_same_name_methods() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct A;\nimpl A {\n    pub fn tick(&self) -> u64 { 1 }\n}\n\
         pub struct B;\nimpl B {\n    pub fn tick(&self) -> u64 { 2 }\n}\n\
         fn pick() -> A { A }\n\
         pub fn entry() -> u64 {\n    let h = pick();\n    h.tick()\n}\n",
    )]);
    let g = callgraph::build(&w);
    let calls = &g.facts[fn_id(&w, "entry")].calls;
    let amb: Vec<_> = calls
        .iter()
        .filter(|c| c.kind == CallKind::Ambiguous)
        .collect();
    assert_eq!(amb.len(), 1, "{calls:?}");
    assert_eq!(amb[0].targets.len(), 2, "{calls:?}");
}

/// STD_AMBIENT names on an unknown receiver stay external — no edges
/// into same-name workspace methods, only the table effect (if any).
#[test]
fn std_ambient_name_on_unknown_receiver_stays_external() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct Ring;\nimpl Ring {\n    pub fn push(&self, _v: u64) {}\n}\n\
         fn buf() -> Vec<u64> { Vec::new() }\n\
         pub fn entry() {\n    let mut b = buf();\n    b.push(1);\n}\n",
    )]);
    let g = callgraph::build(&w);
    // The free call `buf()` keeps its edge; `b.push(1)` must not add one.
    assert_eq!(direct_targets(&w, &g, "entry"), vec!["buf"]);
    let calls = &g.facts[fn_id(&w, "entry")].calls;
    assert!(
        calls.iter().all(|c| c.kind == CallKind::Direct),
        "{calls:?}"
    );
    assert_eq!(effect_kinds(&w, &g, "entry"), vec![EffectKind::Alloc]);
}

/// Effect-table names (`lock`, `wait`, …) on an unknown receiver record
/// the std effect and must NOT manufacture edges into unrelated
/// workspace methods that share the name.
#[test]
fn effect_table_name_on_unknown_receiver_records_effect_without_edges() {
    let w = ws(&[(
        "src/a.rs",
        "pub struct Progress;\nimpl Progress {\n    pub fn lock(&self) -> u64 { 0 }\n}\n\
         fn registry() -> std::sync::Mutex<u64> { std::sync::Mutex::new(0) }\n\
         pub fn entry() {\n    let _g = registry().lock();\n}\n",
    )]);
    let g = callgraph::build(&w);
    // The free call `registry()` keeps its edge; `.lock()` must not wire
    // the graph to `Progress::lock`.
    assert_eq!(direct_targets(&w, &g, "entry"), vec!["registry"]);
    let lock = fn_id(&w, "Progress::lock");
    let calls = &g.facts[fn_id(&w, "entry")].calls;
    assert!(
        calls.iter().all(|c| !c.targets.contains(&lock)),
        "{calls:?}"
    );
    assert_eq!(effect_kinds(&w, &g, "entry"), vec![EffectKind::Lock]);
}

// ---- effects ----

#[test]
fn panic_index_arith_macro_and_path_effects() {
    let w = ws(&[(
        "src/a.rs",
        "pub fn a(v: Option<u64>) -> u64 { v.unwrap() }\n\
         pub fn b(s: &[u64]) -> u64 { s[0] }\n\
         pub fn c(mut x: u64) -> u64 { x += 1; x }\n\
         pub fn d() { panic!(\"boom\") }\n\
         pub fn e() { std::thread::sleep(std::time::Duration::from_millis(1)) }\n\
         pub fn f() { let _ = std::fs::write(\"x\", b\"y\"); }\n",
    )]);
    let g = callgraph::build(&w);
    assert_eq!(effect_kinds(&w, &g, "a"), vec![EffectKind::Panic]);
    assert_eq!(effect_kinds(&w, &g, "b"), vec![EffectKind::Index]);
    assert_eq!(effect_kinds(&w, &g, "c"), vec![EffectKind::Arith]);
    assert_eq!(effect_kinds(&w, &g, "d"), vec![EffectKind::Panic]);
    assert_eq!(effect_kinds(&w, &g, "e"), vec![EffectKind::Lock]);
    assert_eq!(effect_kinds(&w, &g, "f"), vec![EffectKind::Io]);
}

#[test]
fn unsafe_token_marks_the_function() {
    let w = ws(&[(
        "src/a.rs",
        "pub fn safe() -> u64 { 1 }\n\
         pub fn raw(p: *const u64) -> u64 {\n    // SAFETY: test\n    unsafe { *p }\n}\n",
    )]);
    let g = callgraph::build(&w);
    assert!(!g.facts[fn_id(&w, "safe")].has_unsafe);
    assert!(g.facts[fn_id(&w, "raw")].has_unsafe);
}

// ---- opaque calls ----

#[test]
fn indirect_invocations_are_counted_as_opaque() {
    let w = ws(&[(
        "src/a.rs",
        "pub fn entry(f: fn(u64) -> u64, tbl: &[fn(u64) -> u64], v: u64) -> u64 {\n\
         \x20   let a = (f)(v);\n\
         \x20   let b = tbl[0](a);\n\
         \x20   a.wrapping_add(b)\n}\n",
    )]);
    let g = callgraph::build(&w);
    assert_eq!(g.facts[fn_id(&w, "entry")].opaque.len(), 2);
}

/// An attribute's `]` directly before a parenthesised expression is not
/// an indexed call.
#[test]
fn attribute_bracket_is_not_an_opaque_call() {
    let w = ws(&[(
        "src/a.rs",
        "pub fn entry(v: u64) -> u64 {\n\
         \x20   #[allow(unused)]\n\
         \x20   (v, 1u64).0\n}\n",
    )]);
    let g = callgraph::build(&w);
    assert!(g.facts[fn_id(&w, "entry")].opaque.is_empty());
}

// ---- macro bodies are invisible ----

/// `macro_rules!` bodies are token soup to the resolver: nothing inside
/// one registers a definition, an edge or an effect.
#[test]
fn macro_rules_bodies_register_nothing() {
    let w = ws(&[(
        "src/a.rs",
        "macro_rules! boom {\n    () => {\n        fn phantom() { v.unwrap() }\n    };\n}\n\
         pub fn outer() -> u64 { 1 }\n",
    )]);
    assert_eq!(w.fns.len(), 1, "{:?}", w.fns);
    assert_eq!(w.fns[0].display(), "outer");
    let g = callgraph::build(&w);
    assert!(g.facts[0].effects.is_empty());
}

// ---- reachability + blame chain ----

#[test]
fn blame_chain_prints_every_hop_with_location() {
    let w = ws(&[
        ("src/a.rs", "pub fn entry() -> u64 { crate::b::mid() }\n"),
        (
            "src/b.rs",
            "pub fn mid() -> u64 { leaf() }\nfn leaf() -> u64 { 1 }\n",
        ),
    ]);
    let g = callgraph::build(&w);
    let entry = fn_id(&w, "entry");
    let leaf = fn_id(&w, "leaf");
    let reach = callgraph::reachable(&g, entry);
    assert!(reach.set.contains(&leaf));
    assert_eq!(
        callgraph::blame_chain(&w, &reach, entry, leaf),
        "entry (src/a.rs:1) -> mid (src/b.rs:1) -> leaf (src/b.rs:2)"
    );
}

// ---- exports ----

#[test]
fn dot_export_has_nodes_edges_and_unsafe_shape() {
    let w = ws(&[(
        "src/a.rs",
        "pub fn entry() { helper() }\n\
         fn helper() {\n    // SAFETY: test\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
    )]);
    let g = callgraph::build(&w);
    let dot = callgraph::to_dot(&w, &g);
    assert!(dot.starts_with("digraph callgraph {"), "{dot}");
    assert!(dot.contains("label=\"entry\""), "{dot}");
    assert!(dot.contains("shape=octagon"), "{dot}");
    assert!(dot.contains(" -> "), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
}

#[test]
fn json_export_is_valid_json_with_expected_fields() {
    let w = ws(&[
        (
            "src/a.rs",
            "pub fn entry(v: Option<u64>) -> u64 { crate::b::mid(v) }\n",
        ),
        (
            "src/b.rs",
            "pub fn mid(v: Option<u64>) -> u64 { v.unwrap() }\n",
        ),
    ]);
    let g = callgraph::build(&w);
    let json = callgraph::to_json(&w, &g);
    let value = parse_json(&json).expect("export must be valid JSON");
    let JsonValue::Object(top) = value else {
        panic!("top level must be an object");
    };
    let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["fns", "edges"], "{json}");
    let JsonValue::Array(fns) = &top[0].1 else {
        panic!("fns must be an array");
    };
    assert_eq!(fns.len(), 2, "{json}");
    assert!(json.contains("\"effects\":[\"panic\"]"), "{json}");
    let JsonValue::Array(edges) = &top[1].1 else {
        panic!("edges must be an array");
    };
    assert_eq!(edges.len(), 1, "{json}");
    assert!(json.contains("\"kind\":\"direct\""), "{json}");
}

// ---- a minimal JSON reader (test-only; the workspace is dependency-free) ----

#[derive(Debug)]
#[allow(dead_code)] // payloads carried so `{:?}` failures show the parsed value
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at {pos}"))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let JsonValue::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key must be a string at {pos}"));
                };
                skip_ws(b, pos);
                expect(b, pos, ':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at {pos}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    Some('"') => {
                        *pos += 1;
                        return Ok(JsonValue::Str(s));
                    }
                    Some('\\') => {
                        let esc = b.get(*pos + 1).ok_or("truncated escape")?;
                        match esc {
                            '"' | '\\' | '/' => s.push(*esc),
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            'r' => s.push('\r'),
                            'b' | 'f' => {}
                            'u' => {
                                let hex: String = b
                                    .get(*pos + 2..*pos + 6)
                                    .ok_or("truncated \\u")?
                                    .iter()
                                    .collect();
                                u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u{hex}: {e}"))?;
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape `\\{other}`")),
                        }
                        *pos += 2;
                    }
                    Some(c) => {
                        s.push(*c);
                        *pos += 1;
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while b
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        Some('t')
            if b.get(*pos..*pos + 4)
                .is_some_and(|s| s.iter().collect::<String>() == "true") =>
        {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some('f')
            if b.get(*pos..*pos + 5)
                .is_some_and(|s| s.iter().collect::<String>() == "false") =>
        {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some('n')
            if b.get(*pos..*pos + 4)
                .is_some_and(|s| s.iter().collect::<String>() == "null") =>
        {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}
