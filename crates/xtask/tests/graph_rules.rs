//! CLI-level tests for the interprocedural rules (`hot_path_purity`,
//! `unsafe_reach`, `opaque_call_budget`) over the seeded fixture trees
//! in `tests/fixtures/callgraph/` plus scratch trees for waiver
//! behaviour, and for the `callgraph` export subcommand.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::run_with;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/callgraph")
        .join(name)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-graph-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    dir
}

fn run(root: &Path, args: &[&str]) -> (i32, String) {
    let mut full: Vec<String> = vec![args[0].to_string()];
    full.push("--root".to_string());
    full.push(root.to_str().expect("utf8").to_string());
    full.extend(args[1..].iter().map(|s| s.to_string()));
    let mut out = Vec::new();
    let code = run_with(&full, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

// ---- seeded fixtures: one violation each, the right one ----

/// The acceptance case: a hot-path entry whose panic lives two hops
/// away in another crate root. The diagnostic must carry the full
/// multi-hop blame path.
#[test]
fn purity_catches_cross_file_unwrap_with_blame_path() {
    let (code, out) = run(&fixture("purity_cross_file"), &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[hot_path_purity]"), "{out}");
    assert!(out.contains("`Eng::ingest`"), "{out}");
    assert!(out.contains("`.unwrap()` (panic)"), "{out}");
    // Entry, intermediate hop and effect site all named, in order.
    assert!(
        out.contains(
            "call chain: Eng::ingest (core/src/hot.rs:10) -> \
             normalize (util/src/convert.rs:4) -> scale (util/src/convert.rs:8)"
        ),
        "{out}"
    );
    // Anchored at the entry point, not the effect site.
    assert!(out.contains("core/src/hot.rs:10:"), "{out}");
}

/// `use crate::helpers::quiet as calm;` must not launder the panic —
/// alias resolution connects the renamed call to the definition.
#[test]
fn purity_sees_through_use_renames() {
    let (code, out) = run(&fixture("rename_evasion"), &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[hot_path_purity]"), "{out}");
    assert!(out.contains("-> quiet (src/helpers.rs:1)"), "{out}");
}

/// A panic behind a trait-method call on a typed receiver stays
/// visible: the declared type pins the impl.
#[test]
fn purity_sees_through_trait_method_indirection() {
    let (code, out) = run(&fixture("trait_indirection"), &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[hot_path_purity]"), "{out}");
    assert!(
        out.contains("-> Widget::step (src/stage.rs:8) -> deep (src/stage.rs:13)"),
        "{out}"
    );
}

/// Of two public fns with the same unsafe dependency, only the one
/// whose doc comment does not name the unsafe module is flagged.
#[test]
fn unsafe_reach_flags_undocumented_fn_only() {
    let (code, out) = run(&fixture("unsafe_reach"), &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[unsafe_reach]"), "{out}");
    assert!(out.contains("`send`"), "{out}");
    assert!(out.contains("does not mention `unchecked`"), "{out}");
    assert!(!out.contains("send_documented"), "{out}");
    assert!(out.contains("1 violation(s)"), "{out}");
}

/// Two fn-pointer invocations against a budget of one; the sibling fn
/// within budget stays clean.
#[test]
fn opaque_budget_counts_indirect_calls() {
    let (code, out) = run(&fixture("opaque"), &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[opaque_call_budget]"), "{out}");
    assert!(
        out.contains("2 unresolved indirect call(s) (budget 1)"),
        "{out}"
    );
    assert!(!out.contains("within_budget"), "{out}");
}

// ---- waiver behaviour ----

/// A `lint:allow(hot_path_purity)` on the *effect site* statement
/// waives the transitive finding.
#[test]
fn purity_waiver_at_effect_site_suppresses() {
    let root = scratch("waived");
    fs::write(
        root.join("src/hot.rs"),
        "pub fn entry(v: Option<u64>) -> u64 {\n    crate::util::helper(v)\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("src/util.rs"),
        "pub fn helper(v: Option<u64>) -> u64 {\n\
         \x20   // lint:allow(hot_path_purity): fixture waiver\n\
         \x20   v.unwrap()\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/hot.rs::entry\"]\n\
         purity_deny = [\"panic\"]\n",
    )
    .expect("write");
    let (code, out) = run(&root, &["lint"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("clean (1 waived)"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

/// A graph-rule waiver on a statement nothing reaches is itself a
/// violation — the graph phase, not the per-file pass, owns that check.
#[test]
fn unused_graph_waiver_is_flagged() {
    let root = scratch("unusedwaiver");
    fs::write(
        root.join("src/hot.rs"),
        "pub fn entry() -> u64 {\n    1\n}\n\
         pub fn cold(v: Option<u64>) -> u64 {\n\
         \x20   // lint:allow(hot_path_purity): nothing reaches this\n\
         \x20   v.unwrap()\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/hot.rs::entry\"]\n\
         purity_deny = [\"panic\"]\n",
    )
    .expect("write");
    let (code, out) = run(&root, &["lint"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[unused_waiver]"), "{out}");
    assert!(
        out.contains("suppresses nothing reachable from the configured entry points"),
        "{out}"
    );
    let _ = fs::remove_dir_all(&root);
}

// ---- configuration errors ----

/// An entry spec that names a real file but no function in it is a
/// configuration error (exit 2) and the message lists what *is* there.
#[test]
fn unresolvable_entry_exits_two_and_lists_candidates() {
    let root = scratch("badentry");
    fs::write(
        root.join("src/hot.rs"),
        "pub fn real_entry() -> u64 {\n    1\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/hot.rs::missing\"]\n",
    )
    .expect("write");
    let (code, out) = run(&root, &["lint"]);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("does not resolve to a function"), "{out}");
    assert!(out.contains("real_entry"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

/// An entry spec naming a file that does not exist dies at config
/// validation, like any dangling path in lint.toml.
#[test]
fn entry_with_missing_file_exits_two() {
    let root = scratch("badentryfile");
    fs::write(root.join("src/hot.rs"), "pub fn f() -> u64 { 1 }\n").expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/nope.rs::f\"]\n",
    )
    .expect("write");
    let (code, out) = run(&root, &["lint"]);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("src/nope.rs"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

// ---- the `callgraph` export subcommand ----

#[test]
fn callgraph_dot_is_the_default_format() {
    let (code, out) = run(&fixture("purity_cross_file"), &["callgraph"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.starts_with("digraph callgraph {"), "{out}");
    assert!(out.contains("Eng::ingest"), "{out}");
    assert!(out.contains(" -> "), "{out}");
    assert!(out.trim_end().ends_with('}'), "{out}");
}

#[test]
fn callgraph_json_lists_fns_and_edges() {
    let (code, out) = run(
        &fixture("purity_cross_file"),
        &["callgraph", "--format", "json"],
    );
    assert_eq!(code, 0, "output: {out}");
    assert!(out.starts_with("{\"fns\":["), "{out}");
    assert!(out.contains("\"edges\":["), "{out}");
    assert!(out.contains("\"name\":\"ingest\""), "{out}");
    assert!(out.contains("\"effects\":[\"panic\"]"), "{out}");
}

#[test]
fn callgraph_unknown_format_exits_two() {
    let (code, out) = run(
        &fixture("purity_cross_file"),
        &["callgraph", "--format", "xml"],
    );
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("unknown format"), "{out}");
}

/// Ambiguous edges render dashed in dot so the conservative guesses are
/// visually distinct from pinned calls.
#[test]
fn callgraph_dot_marks_ambiguous_edges_dashed() {
    let root = scratch("dotdashed");
    fs::write(
        root.join("src/a.rs"),
        "pub struct A;\nimpl A {\n    pub fn tick(&self) -> u64 { 1 }\n}\n\
         pub struct B;\nimpl B {\n    pub fn tick(&self) -> u64 { 2 }\n}\n\
         pub fn entry(x: &dyn std::fmt::Debug) -> u64 {\n    let h = pick();\n    h.tick()\n}\n\
         fn pick() -> A {\n    A\n}\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\n[callgraph]\nentries = [\"src/a.rs::entry\"]\n",
    )
    .expect("write");
    let (code, out) = run(&root, &["callgraph"]);
    assert_eq!(code, 0, "output: {out}");
    // `h` has no declared type (`pick()` is lowercase, not a `Type::ctor`
    // inference), so `h.tick()` fans out to both workspace `tick`s.
    assert!(out.contains("[style=dashed]"), "{out}");
    let _ = fs::remove_dir_all(&root);
}
