//! `bench-compare` subcommand: the throughput regression gate over the
//! checked-in bench JSON files.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::bench_compare::{compare, flatten_numbers};
use xtask::run_with;

const BASELINE: &str = r#"{
  "bench": "pipeline_speed",
  "host": {"cpus": 1, "os": "linux"},
  "scalar_mops": 10.0,
  "batch": [
    {"batch_size": 64, "mops": 12.0, "speedup_vs_scalar": 1.2},
    {"batch_size": 256, "mops": 14.0, "speedup_vs_scalar": 1.4}
  ],
  "sharded4_batch256_mops": 8.0
}"#;

#[test]
fn flatten_walks_nested_arrays_and_objects() {
    let flat = flatten_numbers(BASELINE).expect("valid json");
    let get = |k: &str| {
        flat.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing {k}: {flat:?}"))
    };
    assert_eq!(get("scalar_mops"), 10.0);
    assert_eq!(get("batch.0.mops"), 12.0);
    assert_eq!(get("batch.1.batch_size"), 256.0);
    assert_eq!(get("sharded4_batch256_mops"), 8.0);
    assert_eq!(get("host.cpus"), 1.0);
    // Strings are not numeric leaves.
    assert!(!flat.iter().any(|(k, _)| k == "bench"));
}

#[test]
fn flatten_rejects_malformed_json() {
    assert!(flatten_numbers("{\"a\": }").is_err());
    assert!(flatten_numbers("{\"a\": 1} trailing").is_err());
    assert!(flatten_numbers("[1, 2").is_err());
}

#[test]
fn compare_filters_to_throughput_keys() {
    let base = flatten_numbers(BASELINE).unwrap();
    let deltas = compare(&base, &base, "mops");
    // scalar_mops, batch.0.mops, batch.1.mops, sharded4_batch256_mops —
    // but never batch_size, cpus or the speedup ratios.
    assert_eq!(deltas.len(), 4, "{deltas:?}");
    assert!(deltas.iter().all(|d| d.change_pct == Some(0.0)));
    assert!(deltas.iter().all(|d| !d.regressed(5.0)));
}

#[test]
fn regression_and_missing_keys_fail_the_gate() {
    let base = flatten_numbers(BASELINE).unwrap();
    let fresh = flatten_numbers(
        r#"{"scalar_mops": 9.0, "batch": [{"mops": 12.1}], "sharded4_batch256_mops": 8.4}"#,
    )
    .unwrap();
    let deltas = compare(&base, &fresh, "mops");
    let by_key = |k: &str| deltas.iter().find(|d| d.key == k).expect(k);
    // 10.0 → 9.0 is a 10% drop: outside 5%, inside 15%.
    assert!(by_key("scalar_mops").regressed(5.0));
    assert!(!by_key("scalar_mops").regressed(15.0));
    // batch.1.mops vanished: fails at any budget.
    assert!(by_key("batch.1.mops").regressed(100.0));
    // 8.0 → 8.4 improved.
    assert!(!by_key("sharded4_batch256_mops").regressed(0.0));
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-bench-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = run_with(&args, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

fn write_json(dir: &Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    fs::write(&path, text).expect("write");
    path.to_str().expect("utf8").to_string()
}

#[test]
fn cli_passes_within_budget_and_reports_new_keys() {
    let dir = scratch("pass");
    let base = write_json(&dir, "base.json", BASELINE);
    let fresh = write_json(
        &dir,
        "new.json",
        r#"{
          "scalar_mops": 9.8,
          "batch": [
            {"batch_size": 64, "mops": 12.5},
            {"batch_size": 256, "mops": 13.9}
          ],
          "sharded4_batch256_mops": 13.0,
          "simd_mops": 20.0
        }"#,
    );
    let (code, out) = run_cli(&["bench-compare", &base, &fresh]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("within the 5% budget"), "output: {out}");
    assert!(
        out.contains("simd_mops") && out.contains("new key"),
        "output: {out}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_fails_on_regression_beyond_budget() {
    let dir = scratch("regress");
    let base = write_json(&dir, "base.json", BASELINE);
    let fresh = write_json(
        &dir,
        "new.json",
        r#"{
          "scalar_mops": 8.0,
          "batch": [
            {"batch_size": 64, "mops": 12.0},
            {"batch_size": 256, "mops": 14.0}
          ],
          "sharded4_batch256_mops": 8.0
        }"#,
    );
    let (code, out) = run_cli(&["bench-compare", &base, &fresh]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("REGRESSED"), "output: {out}");
    // A 20% drop passes with a loosened budget.
    let (code, out) = run_cli(&["bench-compare", &base, &fresh, "--max-regress", "25"]);
    assert_eq!(code, 0, "output: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_usage_and_parse_errors_exit_two() {
    let dir = scratch("errors");
    let base = write_json(&dir, "base.json", BASELINE);
    let bad = write_json(&dir, "bad.json", "{not json");
    assert_eq!(run_cli(&["bench-compare"]).0, 2);
    assert_eq!(run_cli(&["bench-compare", &base]).0, 2);
    assert_eq!(run_cli(&["bench-compare", &base, &bad]).0, 2);
    assert_eq!(
        run_cli(&["bench-compare", &base, &base, "--max-regress", "-3"]).0,
        2
    );
    assert_eq!(run_cli(&["bench-compare", &base, &base, "--bogus"]).0, 2);
    // Filter with no matching keys: nothing to gate on is an error, not
    // a silent pass.
    let (code, out) = run_cli(&["bench-compare", &base, &base, "--key-filter", "nonexistent"]);
    assert_eq!(code, 2, "output: {out}");
    assert!(out.contains("nothing to gate on"), "output: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_tolerance_flag_and_config_resolution() {
    let dir = scratch("tolerance");
    let base = write_json(&dir, "base.json", BASELINE);
    // scalar_mops 10.0 → 8.0 is a 20% drop; everything else holds.
    let fresh = write_json(
        &dir,
        "new.json",
        r#"{
          "scalar_mops": 8.0,
          "batch": [
            {"batch_size": 64, "mops": 12.0},
            {"batch_size": 256, "mops": 14.0}
          ],
          "sharded4_batch256_mops": 8.0
        }"#,
    );
    // Default budget (5%): fails.
    assert_eq!(run_cli(&["bench-compare", &base, &fresh]).0, 1);
    // `--tolerance` is the documented spelling of `--max-regress`.
    let (code, out) = run_cli(&["bench-compare", &base, &fresh, "--tolerance", "25"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("within the 25% budget"), "output: {out}");
    // A config file can set the budget instead.
    let loose = dir.join("loose.toml");
    fs::write(
        &loose,
        "[paths]\nroots = [\"src\"]\n[bench]\ntolerance = 30.0\n",
    )
    .expect("write config");
    let loose = loose.to_str().expect("utf8");
    let (code, out) = run_cli(&["bench-compare", &base, &fresh, "--config", loose]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("within the 30% budget"), "output: {out}");
    // The flag beats the config when both are given.
    let (code, out) = run_cli(&[
        "bench-compare",
        &base,
        &fresh,
        "--config",
        loose,
        "--tolerance",
        "10",
    ]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("more than 10%"), "output: {out}");
    // A config without a [bench] section falls back to the default.
    let silent = dir.join("silent.toml");
    fs::write(&silent, "[paths]\nroots = [\"src\"]\n").expect("write config");
    let silent = silent.to_str().expect("utf8");
    let (code, out) = run_cli(&["bench-compare", &base, &fresh, "--config", silent]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("more than 5%"), "output: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_config_errors_exit_two() {
    let dir = scratch("badconfig");
    let base = write_json(&dir, "base.json", BASELINE);
    // Unreadable path.
    let missing = dir.join("missing.toml");
    let missing = missing.to_str().expect("utf8");
    assert_eq!(
        run_cli(&["bench-compare", &base, &base, "--config", missing]).0,
        2
    );
    // Invalid tolerance values are schema errors, not silent defaults.
    for bad in ["tolerance = -1.0", "tolerance = nan", "tolerance = many"] {
        let path = dir.join("bad.toml");
        fs::write(
            &path,
            format!("[paths]\nroots = [\"src\"]\n[bench]\n{bad}\n"),
        )
        .expect("write config");
        let path = path.to_str().expect("utf8");
        let (code, out) = run_cli(&["bench-compare", &base, &base, "--config", path]);
        assert_eq!(code, 2, "`{bad}` should be rejected:\n{out}");
    }
    // `--tolerance` with a missing or negative value.
    assert_eq!(
        run_cli(&["bench-compare", &base, &base, "--tolerance"]).0,
        2
    );
    assert_eq!(
        run_cli(&["bench-compare", &base, &base, "--tolerance", "-2"]).0,
        2
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shipped_lint_toml_sets_the_bench_tolerance() {
    // The workspace lint.toml ships a [bench] tolerance, and the CLI
    // wrapper feeds it to bench-compare by default — pin both halves.
    let root = xtask::workspace_root();
    let text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let config = xtask::parse_config(&text).expect("config parses");
    assert_eq!(config.bench_tolerance, Some(5.0));
}

#[test]
fn shipped_baselines_are_self_consistent() {
    // The checked-in bench files must always pass the gate against
    // themselves — this is exactly the invariant CI relies on.
    let root = xtask::workspace_root();
    for name in ["BENCH_pipeline.json", "BENCH_table.json"] {
        let path = root.join(name);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let flat = flatten_numbers(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let deltas = compare(&flat, &flat, "mops");
        assert!(!deltas.is_empty(), "{name} has no mops keys");
        assert!(deltas.iter().all(|d| !d.regressed(0.0)), "{name}");
    }
}
