//! End-to-end linter tests: the shipped tree is clean, and each seeded
//! fixture drives `xtask lint` (the real CLI entry point) to a nonzero
//! exit.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{lint_tree, parse_config, run_with, workspace_root};

#[test]
fn shipped_tree_is_clean() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let config = parse_config(&text).expect("config parses");
    let violations = lint_tree(&root, &config).expect("lint runs");
    let active: Vec<_> = violations.iter().filter(|v| v.is_active()).collect();
    assert!(
        active.is_empty(),
        "shipped tree has active lint violations:\n{}",
        active
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn shipped_tree_waivers_are_all_load_bearing() {
    // Every waiver in the shipped tree must suppress something — the
    // unused_waiver rule turns a dead waiver into an active violation
    // (covered by shipped_tree_is_clean), and this asserts the
    // complementary bound: the waived findings really exist.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let config = parse_config(&text).expect("config parses");
    let violations = lint_tree(&root, &config).expect("lint runs");
    let waived = violations.iter().filter(|v| v.waived).count();
    assert!(
        waived >= 1,
        "expected at least one waived finding in the shipped tree"
    );
}

#[test]
fn cli_runs_clean_on_the_workspace() {
    let mut out = Vec::new();
    let code = run_with(&["lint".to_string()], &mut out);
    let text = String::from_utf8(out).expect("utf8");
    assert_eq!(code, 0, "xtask lint failed on the workspace:\n{text}");
    assert!(text.contains("clean"), "{text}");
}

#[test]
fn cli_usage_errors_exit_two() {
    let mut out = Vec::new();
    assert_eq!(run_with(&[], &mut out), 2);
    let mut out = Vec::new();
    assert_eq!(run_with(&["frobnicate".to_string()], &mut out), 2);
    let mut out = Vec::new();
    assert_eq!(
        run_with(&["lint".to_string(), "--bogus".to_string()], &mut out),
        2
    );
}

// ---- seeded fixtures through the real CLI ----

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).expect("mkdir");
    dir
}

fn run_lint(root: &Path) -> (i32, String) {
    let args: Vec<String> = ["lint", "--root", root.to_str().expect("utf8")]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let code = run_with(&args, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

/// Install `fixture` as `src/seeded.rs` in a scratch tree whose
/// lint.toml has `extra` sections targeting it; assert the CLI exits 1
/// and names `rule`.
fn assert_seeded(name: &str, fixture: &str, extra: &str, rule: &str) {
    let root = scratch(name);
    fs::write(root.join("src/seeded.rs"), fixture).expect("write fixture");
    fs::write(
        root.join("lint.toml"),
        format!("[paths]\nroots = [\"src\"]\n{extra}"),
    )
    .expect("write config");
    let (code, out) = run_lint(&root);
    assert_eq!(code, 1, "fixture `{name}` should fail the lint:\n{out}");
    assert!(
        out.contains(&format!("[{rule}]")),
        "fixture `{name}` should name rule `{rule}`:\n{out}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn seeded_unsafe_allowlist_fails() {
    assert_seeded(
        "unsafe",
        include_str!("fixtures/unsafe_violation.rs"),
        "",
        "unsafe_allowlist",
    );
}

#[test]
fn seeded_safety_comment_fails() {
    assert_seeded(
        "safety",
        include_str!("fixtures/safety_violation.rs"),
        "[unsafe_code]\nallow = [\"src/seeded.rs\"]\n",
        "safety_comment",
    );
}

#[test]
fn seeded_no_panic_fails() {
    assert_seeded(
        "panic",
        include_str!("fixtures/panic_violation.rs"),
        "[hot_path]\nfiles = [\"src/seeded.rs\"]\n",
        "no_panic",
    );
}

#[test]
fn seeded_no_index_fails() {
    assert_seeded(
        "index",
        include_str!("fixtures/index_violation.rs"),
        "[hot_path]\nfiles = [\"src/seeded.rs\"]\n",
        "no_index",
    );
}

#[test]
fn seeded_counter_arith_fails() {
    assert_seeded(
        "counter",
        include_str!("fixtures/counter_violation.rs"),
        "[hot_path]\nfiles = [\"src/seeded.rs\"]\n[counters]\nfields = [\"freq\"]\n",
        "counter_arith",
    );
}

#[test]
fn seeded_no_relaxed_fails() {
    assert_seeded(
        "relaxed",
        include_str!("fixtures/relaxed_violation.rs"),
        "[orderings]\nno_relaxed_files = [\"src/seeded.rs\"]\n",
        "no_relaxed",
    );
}

#[test]
fn seeded_ordering_protocol_fails() {
    assert_seeded(
        "orderingprotocol",
        include_str!("fixtures/ordering_violation.rs"),
        "[orderings]\nprotocol_files = [\"src/seeded.rs\"]\n",
        "ordering_protocol",
    );
}

#[test]
fn seeded_failpoint_gate_fails() {
    assert_seeded(
        "failpoint",
        include_str!("fixtures/failpoint_violation.rs"),
        "",
        "failpoint_gate",
    );
}

#[test]
fn seeded_atomic_io_fails() {
    assert_seeded(
        "atomicio",
        include_str!("fixtures/atomic_io_violation.rs"),
        "[atomic_io]\nfiles = [\"src/seeded.rs\"]\n",
        "atomic_io",
    );
}

#[test]
fn seeded_obs_call_site_fails() {
    assert_seeded(
        "obscall",
        include_str!("fixtures/obs_violation.rs"),
        "[obs]\ncall_site_files = [\"src/seeded.rs\"]\n",
        "obs_hot_path",
    );
}

#[test]
fn seeded_obs_metrics_fails() {
    assert_seeded(
        "obsmetrics",
        include_str!("fixtures/obs_metrics_violation.rs"),
        "[obs]\nmetrics_files = [\"src/seeded.rs\"]\n",
        "obs_hot_path",
    );
}

#[test]
fn seeded_unused_waiver_fails() {
    assert_seeded(
        "unusedwaiver",
        include_str!("fixtures/unused_waiver_violation.rs"),
        "[hot_path]\nfiles = [\"src/seeded.rs\"]\n",
        "unused_waiver",
    );
}

#[test]
fn seeded_evasion_corpus_passes() {
    // The inverse of the seeded tests: the evasion corpus is loaded
    // with rule-shaped bait and must come back clean through the CLI.
    let root = scratch("evasion");
    fs::write(
        root.join("src/seeded.rs"),
        include_str!("fixtures/evasion.rs"),
    )
    .expect("write fixture");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\n\
         [hot_path]\nfiles = [\"src/seeded.rs\"]\n\
         [counters]\nfields = [\"freq\"]\n\
         [orderings]\nno_relaxed_files = [\"src/seeded.rs\"]\n\
         [atomic_io]\nfiles = [\"src/seeded.rs\"]\n\
         [obs]\ncall_site_files = [\"src/seeded.rs\"]\n",
    )
    .expect("write config");
    let (code, out) = run_lint(&root);
    assert_eq!(code, 0, "evasion corpus must lint clean:\n{out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn skip_directories_are_not_linted() {
    let root = scratch("skipdir");
    fs::create_dir_all(root.join("src/tests")).expect("mkdir");
    fs::write(
        root.join("src/tests/seeded.rs"),
        "pub fn f(v: Option<u64>) -> u64 { v.unwrap() }\n",
    )
    .expect("write");
    fs::write(
        root.join("lint.toml"),
        "[paths]\nroots = [\"src\"]\nskip = [\"tests\"]\n\
         [hot_path]\nfiles = [\"src/tests/seeded.rs\"]\n",
    )
    .expect("write");
    let (code, out) = run_lint(&root);
    // The hot_path entry exists on disk (path validation passes) but the
    // directory is skipped, so nothing is linted.
    assert_eq!(code, 0, "output: {out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn syntax_errors_fail_the_lint() {
    let root = scratch("syntax");
    fs::write(root.join("src/seeded.rs"), "fn f() { \"unterminated\n").expect("write");
    fs::write(root.join("lint.toml"), "[paths]\nroots = [\"src\"]\n").expect("write");
    let (code, out) = run_lint(&root);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[syntax]"), "output: {out}");
    let _ = fs::remove_dir_all(&root);
}
