//! Tests for the workspace invariant linter: each rule fires on a seeded
//! violation, each waiver is honored, `#[cfg(test)]` bodies are exempt,
//! and — the acceptance criterion — the shipped tree is clean while a
//! seeded violation makes `xtask lint` exit nonzero.

use xtask::{lint_source, lint_tree, parse_config, run, strip, test_exempt_lines, Config};

fn test_config() -> Config {
    Config {
        roots: vec!["crates".to_string()],
        skip: vec!["tests".to_string(), "target".to_string()],
        unsafe_allow: vec!["crates/core/src/spsc.rs".to_string()],
        hot_path: vec![
            "crates/core/src/table.rs".to_string(),
            "crates/core/src/spsc.rs".to_string(),
        ],
        counter_fields: vec!["freq".to_string(), "harvests".to_string()],
        no_relaxed_files: vec!["crates/core/src/spsc.rs".to_string()],
        failpoint_allow: vec![
            "crates/core/src/failpoint.rs".to_string(),
            "crates/core/src/pipeline.rs".to_string(),
        ],
        atomic_io_files: vec!["crates/core/src/checkpoint.rs".to_string()],
        obs_metrics_files: vec!["crates/core/src/obs/metrics.rs".to_string()],
        obs_call_site_files: vec![
            "crates/core/src/table.rs".to_string(),
            "crates/core/src/spsc.rs".to_string(),
        ],
    }
}

fn rules(violations: &[xtask::Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn config_parses_sections_and_multiline_arrays() {
    let toml = r#"
# comment
[paths]
roots = ["crates"] # trailing comment
skip = [
    "tests",
    "target",
]

[unsafe_code]
allow = ["crates/core/src/spsc.rs"]

[hot_path]
files = ["a.rs", "b.rs"]

[counters]
fields = ["freq"]

[orderings]
no_relaxed_files = ["a.rs"]

[failpoints]
allow = ["crates/core/src/failpoint.rs"]

[atomic_io]
files = ["crates/core/src/checkpoint.rs"]

[obs]
metrics_files = ["crates/core/src/obs/metrics.rs"]
call_site_files = ["crates/core/src/table.rs"]
"#;
    let config = parse_config(toml).expect("parses");
    assert_eq!(config.roots, vec!["crates"]);
    assert_eq!(config.skip, vec!["tests", "target"]);
    assert_eq!(config.unsafe_allow, vec!["crates/core/src/spsc.rs"]);
    assert_eq!(config.hot_path, vec!["a.rs", "b.rs"]);
    assert_eq!(config.counter_fields, vec!["freq"]);
    assert_eq!(config.no_relaxed_files, vec!["a.rs"]);
    assert_eq!(config.failpoint_allow, vec!["crates/core/src/failpoint.rs"]);
    assert_eq!(
        config.atomic_io_files,
        vec!["crates/core/src/checkpoint.rs"]
    );
    assert_eq!(
        config.obs_metrics_files,
        vec!["crates/core/src/obs/metrics.rs"]
    );
    assert_eq!(config.obs_call_site_files, vec!["crates/core/src/table.rs"]);
}

#[test]
fn config_rejects_unknown_keys_and_missing_roots() {
    assert!(parse_config("[paths]\nbogus = [\"x\"]\n").is_err());
    assert!(
        parse_config("[unsafe_code]\nallow = [\"a.rs\"]\n").is_err(),
        "no roots"
    );
}

#[test]
fn strip_blanks_comments_strings_and_chars_but_keeps_lifetimes() {
    let source = "let s = \"panic!\"; // panic!\nlet c = '['; /* [ */ fn f<'a>() {}";
    let code = strip(source);
    assert!(
        !code.contains("panic!"),
        "string and comment blanked: {code}"
    );
    assert!(
        !code.contains('['),
        "char literal and block comment blanked"
    );
    assert!(code.contains("<'a>"), "lifetime preserved: {code}");
    assert_eq!(
        source.lines().count(),
        code.lines().count(),
        "line structure preserved"
    );
}

#[test]
fn strip_handles_raw_strings_and_nested_block_comments() {
    let source =
        "let r = r#\"unsafe [0] panic!\"#;\n/* outer /* unsafe */ still comment */ let x = 1;";
    let code = strip(source);
    assert!(!code.contains("unsafe"));
    assert!(!code.contains("panic"));
    assert!(
        code.contains("let x = 1;"),
        "code after nested comment kept: {code}"
    );
}

#[test]
fn unsafe_outside_allowlist_is_flagged() {
    let source = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    assert!(
        rules(&violations).contains(&"unsafe_allowlist"),
        "{violations:?}"
    );
    let v = violations
        .iter()
        .find(|v| v.rule == "unsafe_allowlist")
        .unwrap();
    assert_eq!(v.line, 2);
    assert_eq!(v.file, "crates/core/src/table.rs");
}

#[test]
fn unsafe_in_allowlisted_file_requires_safety_comment() {
    let bare = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let violations = lint_source("crates/core/src/spsc.rs", bare, &test_config());
    assert_eq!(rules(&violations), vec!["safety_comment"], "{violations:?}");

    let commented = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees validity.\n    unsafe { *p }\n}\n";
    let violations = lint_source("crates/core/src/spsc.rs", commented, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    let same_line = "unsafe impl Send for X {} // SAFETY: no shared state.\n";
    let violations = lint_source("crates/core/src/spsc.rs", same_line, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn panicking_calls_in_hot_path_are_flagged_unless_waived() {
    let source = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    assert_eq!(rules(&violations), vec!["no_panic"]);

    let waived = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no_panic): startup only\n    x.unwrap()\n}\n";
    let violations = lint_source("crates/core/src/table.rs", waived, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    for call in [
        "y.expect(\"msg\")",
        "panic!(\"boom\")",
        "unreachable!()",
        "todo!()",
    ] {
        let source = format!("fn f() {{\n    {call};\n}}\n");
        let violations = lint_source("crates/core/src/table.rs", &source, &test_config());
        assert_eq!(rules(&violations), vec!["no_panic"], "for `{call}`");
    }

    // Not hot path → no rule.
    let violations = lint_source("crates/core/src/other.rs", source, &test_config());
    assert!(violations.is_empty());
}

#[test]
fn indexing_in_hot_path_is_flagged_unless_waived() {
    let source = "fn f(v: &[u32]) -> u32 {\n    v[0]\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    assert_eq!(rules(&violations), vec!["no_index"]);

    let waived = "fn f(v: &[u32]) -> u32 {\n    v[0] // lint: index-ok (caller checked)\n}\n";
    let violations = lint_source("crates/core/src/table.rs", waived, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // Array types, attributes, macros and array literals are not indexing.
    let benign = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn g() -> Vec<u32> { vec![1, 2] }\nfn h() { let [a, _b] = [1, 2]; let _ = a; }\n";
    let violations = lint_source("crates/core/src/table.rs", benign, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn counter_compound_assignment_is_flagged() {
    let source = "fn f(s: &mut Stats) {\n    s.harvests += 1;\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    assert_eq!(rules(&violations), vec!["counter_arith"]);

    // saturating ops and non-counter fields are fine.
    let fine = "fn f(s: &mut Stats) {\n    s.harvests = s.harvests.saturating_add(1);\n    s.other += 1;\n}\n";
    let violations = lint_source("crates/core/src/table.rs", fine, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // `freq` must match as a word, not inside `frequency`.
    let word = "fn f(s: &mut Stats) {\n    s.frequency += 1;\n}\n";
    let violations = lint_source("crates/core/src/table.rs", word, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn relaxed_ordering_needs_a_justification() {
    let source = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n";
    let violations = lint_source("crates/core/src/spsc.rs", source, &test_config());
    assert_eq!(rules(&violations), vec!["no_relaxed"]);

    let waived = "fn f(a: &AtomicUsize) -> usize {\n    // lint:allow(no_relaxed): single-writer cursor\n    a.load(Ordering::Relaxed)\n}\n";
    let violations = lint_source("crates/core/src/spsc.rs", waived, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // Not a configured concurrency file → no rule.
    let violations = lint_source("crates/core/src/other.rs", source, &test_config());
    assert!(violations.is_empty());
}

#[test]
fn failpoint_usage_outside_allowlist_is_flagged() {
    // A macro site and a module-path reference both count.
    for snippet in [
        "fn f() {\n    fail_point!(\"worker::batch\");\n}\n",
        "fn f() {\n    let _ = crate::failpoint::io_fault(\"x\");\n}\n",
    ] {
        let violations = lint_source("crates/core/src/table.rs", snippet, &test_config());
        assert_eq!(rules(&violations), vec!["failpoint_gate"], "{snippet}");
        assert_eq!(violations[0].line, 2);
    }

    // Allowlisted files may use both forms freely.
    let site = "fn f() {\n    fail_point!(\"worker::batch\");\n    let _ = crate::failpoint::io_fault(\"x\");\n}\n";
    let violations = lint_source("crates/core/src/pipeline.rs", site, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // An explicit waiver works outside the allowlist too.
    let waived =
        "fn f() {\n    // lint:allow(failpoint_gate): migration shim\n    fail_point!(\"x\");\n}\n";
    let violations = lint_source("crates/core/src/table.rs", waived, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // The bare word `failpoint` (e.g. a module declaration) is not usage.
    let decl = "pub mod failpoint;\n";
    let violations = lint_source("crates/core/src/table.rs", decl, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn bare_file_writes_in_checkpoint_io_are_flagged() {
    for call in [
        "File::create(&path)",
        "std::fs::write(&path, bytes)",
        "OpenOptions::new().write(true)",
    ] {
        let source = format!("fn f() {{\n    let _ = {call};\n}}\n");
        let violations = lint_source("crates/core/src/checkpoint.rs", &source, &test_config());
        assert_eq!(rules(&violations), vec!["atomic_io"], "for `{call}`");
    }

    // The atomic-rename helper itself carries the one waiver.
    let helper = "fn write_atomic(p: &Path, b: &[u8]) {\n    // lint:allow(atomic_io): this IS the atomic-rename helper\n    let f = File::create(p);\n}\n";
    let violations = lint_source("crates/core/src/checkpoint.rs", helper, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // Other modules are not checkpoint I/O: no rule.
    let elsewhere = "fn f() {\n    let _ = File::create(\"log.txt\");\n}\n";
    let violations = lint_source("crates/core/src/table.rs", elsewhere, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn obs_metrics_file_must_stay_relaxed_only() {
    // Every lock token and strong ordering is a violation in the
    // metric-cell implementation file.
    for token in [
        "a.load(Ordering::SeqCst)",
        "a.store(1, Ordering::Release)",
        "a.load(Ordering::Acquire)",
        "a.fetch_add(1, Ordering::AcqRel)",
        "let m: Mutex<u64> = Mutex::new(0)",
        "let l: RwLock<u64> = RwLock::new(0)",
        "let c = Condvar::new()",
        "let g = m.lock()",
    ] {
        let source = format!("fn f() {{\n    let _ = {token};\n}}\n");
        let violations = lint_source("crates/core/src/obs/metrics.rs", &source, &test_config());
        assert!(
            rules(&violations).contains(&"obs_hot_path"),
            "`{token}` must violate obs_hot_path: {violations:?}"
        );
    }

    // Relaxed atomics are the whole point: clean.
    let relaxed = "fn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
    let violations = lint_source("crates/core/src/obs/metrics.rs", relaxed, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // The same tokens are fine in the journal/registry tiers (not listed).
    let journal = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Release);\n}\n";
    let violations = lint_source("crates/core/src/obs/journal.rs", journal, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // An explicit waiver is honored.
    let waived = "fn f(a: &AtomicU64) {\n    // lint:allow(obs_hot_path): snapshot fence, export path only\n    a.load(Ordering::Acquire);\n}\n";
    let violations = lint_source("crates/core/src/obs/metrics.rs", waived, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn metric_updates_must_not_pair_with_locks_on_hot_paths() {
    // A metric update sharing a line with a lock or strong ordering fires.
    for line in [
        "self.stats.lock().map(|_| counter.inc());",
        "while guard.try_lock().is_err() { stalls.inc(); } let _ = m.lock();",
        "depth.set(queue.len(Ordering::SeqCst));",
    ] {
        let source = format!("fn f() {{\n    {line}\n}}\n");
        let violations = lint_source("crates/core/src/table.rs", &source, &test_config());
        assert!(
            rules(&violations).contains(&"obs_hot_path"),
            "`{line}` must violate obs_hot_path: {violations:?}"
        );
    }

    // A bare metric update is clean, and so is a strong ordering with no
    // metric on the line (the SPSC parking protocol legitimately uses
    // SeqCst — on its own lines).
    let clean = "fn f() {\n    stalls.inc();\n    // lint:allow(no_relaxed): test fixture\n    self.waiting.fetch_or(1, Ordering::SeqCst);\n}\n";
    let violations = lint_source("crates/core/src/spsc.rs", clean, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    // Unlisted files are not call sites: no rule.
    let elsewhere = "fn f() {\n    self.stats.lock().map(|_| counter.inc());\n}\n";
    let violations = lint_source("crates/core/src/registry.rs", elsewhere, &test_config());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn seeded_obs_violation_exits_nonzero() {
    let scratch = std::env::temp_dir().join(format!("xtask-lint-obs-{}", std::process::id()));
    let src_dir = scratch.join("crates/core/src/obs");
    std::fs::create_dir_all(&src_dir).expect("create scratch tree");
    std::fs::write(
        scratch.join("lint.toml"),
        "[paths]\nroots = [\"crates\"]\nskip = []\n[obs]\nmetrics_files = [\"crates/core/src/obs/metrics.rs\"]\n",
    )
    .expect("write config");
    std::fs::write(
        src_dir.join("metrics.rs"),
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    a.load(std::sync::atomic::Ordering::SeqCst)\n}\n",
    )
    .expect("write seeded source");

    let args: Vec<String> = ["lint", "--root"]
        .iter()
        .map(ToString::to_string)
        .chain([scratch.to_string_lossy().to_string()])
        .collect();
    assert_eq!(run(&args), 1, "seeded obs violation must fail the build");

    // Weaken to Relaxed: the same tree must now pass.
    std::fs::write(
        src_dir.join("metrics.rs"),
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    a.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    )
    .expect("write clean source");
    assert_eq!(run(&args), 0, "Relaxed-only metrics file must pass");

    std::fs::remove_dir_all(&scratch).expect("cleanup scratch tree");
}

#[test]
fn cfg_test_bodies_are_exempt() {
    let source = "fn hot() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1];\n        assert_eq!(v[0], Some(1).unwrap());\n    }\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    assert!(violations.is_empty(), "{violations:?}");

    let exempt = test_exempt_lines(&strip(source));
    assert!(!exempt[0], "hot code is not exempt");
    assert!(exempt[7], "test body line is exempt");
}

#[test]
fn violations_format_as_file_line_rule() {
    let source = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let violations = lint_source("crates/core/src/table.rs", source, &test_config());
    let rendered = violations[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/table.rs:2: [no_panic]"),
        "diagnostic shape: {rendered}"
    );
}

/// Acceptance criterion: the shipped tree passes its own linter.
#[test]
fn shipped_tree_is_clean() {
    let root = xtask::workspace_root();
    let config_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let config = parse_config(&config_text).expect("lint.toml parses");
    let violations = lint_tree(&root, &config).expect("tree lints");
    assert!(
        violations.is_empty(),
        "shipped tree must be lint-clean, found:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Acceptance criterion: a seeded violation makes `xtask lint` exit
/// nonzero, end to end through the CLI entry point.
#[test]
fn seeded_violation_exits_nonzero() {
    let scratch = std::env::temp_dir().join(format!("xtask-lint-seeded-{}", std::process::id()));
    let src_dir = scratch.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create scratch tree");
    std::fs::write(
        scratch.join("lint.toml"),
        "[paths]\nroots = [\"crates\"]\nskip = []\n[unsafe_code]\nallow = []\n[hot_path]\nfiles = [\"crates/core/src/table.rs\"]\n[counters]\nfields = [\"freq\"]\n[orderings]\nno_relaxed_files = []\n",
    )
    .expect("write config");
    std::fs::write(
        src_dir.join("table.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    unsafe { x.unwrap() }\n}\n",
    )
    .expect("write seeded source");

    let args: Vec<String> = ["lint", "--root"]
        .iter()
        .map(ToString::to_string)
        .chain([scratch.to_string_lossy().to_string()])
        .collect();
    assert_eq!(run(&args), 1, "seeded violations must fail the build");

    // Fix the file: the same tree must now pass with exit code 0.
    std::fs::write(
        src_dir.join("table.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    )
    .expect("write clean source");
    assert_eq!(run(&args), 0, "clean tree must pass");

    std::fs::remove_dir_all(&scratch).expect("cleanup scratch tree");
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_eq!(run(&["frobnicate".to_string()]), 2);
    assert_eq!(run(&[]), 2);
}
