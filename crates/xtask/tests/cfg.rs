//! Structural `#[cfg(...)]` evaluation tests: the linter models the
//! production build — `test` is definitively false, features are
//! unknown unless pinned — and an item is exempt only when its
//! predicate is definitively false.

use xtask::cfg::{exempt_mask, CfgContext};
use xtask::lexer::tokenize;
use xtask::tokentree::build;

/// For each `needle`, whether the first code token with that text is
/// exempt.
fn exemptions(src: &str, ctx: &CfgContext, needles: &[&str]) -> Vec<bool> {
    let tokens = tokenize(src).expect("lex");
    let root = build(&tokens).expect("tree");
    let mask = exempt_mask(&tokens, &root, ctx);
    needles
        .iter()
        .map(|needle| {
            let (i, _) = tokens
                .iter()
                .enumerate()
                .find(|(_, t)| t.text == *needle)
                .unwrap_or_else(|| panic!("token `{needle}` not found"));
            mask[i]
        })
        .collect()
}

fn default_ctx() -> CfgContext {
    CfgContext::default()
}

#[test]
fn cfg_test_mod_is_exempt() {
    let src = "
        pub fn live() {}
        #[cfg(test)]
        mod tests {
            fn helper() { banned(); }
        }
        pub fn also_live() {}
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["live", "banned", "also_live"]),
        vec![false, true, false]
    );
}

#[test]
fn cfg_test_fn_with_stacked_attrs_is_exempt() {
    let src = "
        #[cfg(test)]
        #[allow(dead_code)]
        fn helper() { banned(); }
        fn live() {}
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["banned", "live"]),
        vec![true, false]
    );
}

#[test]
fn attr_order_does_not_matter() {
    let src = "
        #[allow(dead_code)]
        #[cfg(test)]
        fn helper() { banned(); }
    ";
    assert_eq!(exemptions(src, &default_ctx(), &["banned"]), vec![true]);
}

#[test]
fn cfg_test_on_statement_and_semicolon_items() {
    let src = "
        #[cfg(test)]
        use crate::test_helpers::banned;
        use crate::live;
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["banned", "live"]),
        vec![true, false]
    );
}

#[test]
fn feature_gates_stay_linted_both_arms() {
    // A feature is Unknown in the default context: neither arm may be
    // exempted, or weakening an ordering behind a gate escapes the lint.
    let src = "
        #[cfg(feature = \"failpoints\")]
        fn armed() { on_arm(); }
        #[cfg(not(feature = \"failpoints\"))]
        fn disarmed() { off_arm(); }
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["on_arm", "off_arm"]),
        vec![false, false]
    );
}

#[test]
fn pinned_features_evaluate_definitively() {
    let src = "
        #[cfg(feature = \"x\")]
        fn gated() { on_arm(); }
        #[cfg(not(feature = \"x\"))]
        fn ungated() { off_arm(); }
    ";
    let on = CfgContext {
        features_on: vec!["x".to_string()],
        features_off: vec![],
    };
    // Feature pinned on: the not() arm is definitively false.
    assert_eq!(
        exemptions(src, &on, &["on_arm", "off_arm"]),
        vec![false, true]
    );
    let off = CfgContext {
        features_on: vec![],
        features_off: vec!["x".to_string()],
    };
    assert_eq!(
        exemptions(src, &off, &["on_arm", "off_arm"]),
        vec![true, false]
    );
}

#[test]
fn all_with_test_is_false_regardless_of_unknowns() {
    // all(test, feature = "f") is False even though the feature is
    // Unknown — False absorbs in Kleene conjunction.
    let src = "
        #[cfg(all(test, feature = \"failpoints\"))]
        mod t { fn helper() { banned(); } }
    ";
    assert_eq!(exemptions(src, &default_ctx(), &["banned"]), vec![true]);
}

#[test]
fn any_with_test_depends_on_the_other_arm() {
    // any(test, unix): test is False, unix is Unknown → Unknown → linted.
    let src = "
        #[cfg(any(test, unix))]
        fn maybe() { kept(); }
    ";
    assert_eq!(exemptions(src, &default_ctx(), &["kept"]), vec![false]);
}

#[test]
fn not_test_is_true_and_linted() {
    let src = "
        #[cfg(not(test))]
        fn production() { kept(); }
    ";
    assert_eq!(exemptions(src, &default_ctx(), &["kept"]), vec![false]);
}

#[test]
fn unknown_flags_and_exotic_predicates_stay_linted() {
    // unix, target_os, and anything unparseable must fail toward
    // "linted", never "exempt".
    let src = "
        #[cfg(unix)]
        fn a() { one(); }
        #[cfg(target_os = \"linux\")]
        fn b() { two(); }
        #[cfg(version(\"1.70\"))]
        fn c() { three(); }
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["one", "two", "three"]),
        vec![false, false, false]
    );
}

#[test]
fn nested_cfg_test_inside_function_body() {
    let src = "
        fn live() {
            work();
            #[cfg(test)]
            check_invariants();
            more_work();
        }
    ";
    assert_eq!(
        exemptions(
            src,
            &default_ctx(),
            &["work", "check_invariants", "more_work"]
        ),
        vec![false, true, false]
    );
}

#[test]
fn inner_cfg_test_exempts_enclosing_scope() {
    let src = "
        mod helpers {
            #![cfg(test)]
            fn helper() { banned(); }
        }
        fn live() {}
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["banned", "live"]),
        vec![true, false]
    );
}

#[test]
fn cfg_attr_and_non_cfg_attrs_do_not_exempt() {
    let src = "
        #[cfg_attr(test, allow(dead_code))]
        fn a() { one(); }
        #[derive(Debug)]
        struct S { two: u64 }
        #[inline]
        fn b() { three(); }
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["one", "two", "three"]),
        vec![false, false, false]
    );
}

#[test]
fn item_with_body_then_semicolon_is_covered() {
    // `= || { ... };`-style items: the brace group is followed by a `;`
    // that belongs to the same item.
    let src = "
        #[cfg(test)]
        static HOOK: fn() = || { banned(); };
        fn live() {}
    ";
    assert_eq!(
        exemptions(src, &default_ctx(), &["banned", "live"]),
        vec![true, false]
    );
}

#[test]
fn exemption_is_format_independent() {
    // The old brace-tracking heuristic keyed on `#[cfg(test)]` being on
    // its own line. The structural version cannot care.
    let one_line = "#[cfg(test)] mod t { fn h() { banned(); } } fn live() {}";
    let split = "#[cfg(\n    test\n)]\nmod t {\n    fn h() { banned(); }\n}\nfn live() {}";
    for src in [one_line, split] {
        assert_eq!(
            exemptions(src, &default_ctx(), &["banned", "live"]),
            vec![true, false],
            "layout: {src:?}"
        );
    }
}
