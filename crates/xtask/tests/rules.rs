//! Per-rule tests over the seeded-violation fixtures: each lint.toml
//! rule must fire on its fixture, anchored at the right line, and stay
//! silent on the structures that merely resemble its pattern.

use xtask::{lint_source, Config, Violation};

/// A config that routes the fixture `rel` names onto every rule list.
fn fixture_config() -> Config {
    Config {
        roots: vec!["src".to_string()],
        skip: vec![],
        unsafe_allow: vec!["src/allowed_unsafe.rs".to_string()],
        simd_allow: vec!["src/simd.rs".to_string()],
        hot_path: vec!["src/hot.rs".to_string()],
        counter_fields: vec!["freq".to_string(), "persist".to_string()],
        no_relaxed_files: vec!["src/conc.rs".to_string()],
        protocol_files: vec!["src/protocol.rs".to_string()],
        failpoint_allow: vec!["src/failpoint.rs".to_string()],
        atomic_io_files: vec!["src/ckpt.rs".to_string()],
        obs_metrics_files: vec!["src/metrics.rs".to_string()],
        obs_trace_files: vec!["src/trace.rs".to_string()],
        obs_call_site_files: vec!["src/hot.rs".to_string()],
        bench_tolerance: None,
        callgraph_entries: vec![],
        purity_deny: vec![],
        opaque_budget: None,
        unsafe_reach_files: vec![],
    }
}

fn active_rules(rel: &str, src: &str) -> Vec<(&'static str, usize)> {
    lint_source(rel, src, &fixture_config())
        .into_iter()
        .filter(Violation::is_active)
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn no_panic_fires_on_fixture() {
    let src = include_str!("fixtures/panic_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    assert_eq!(hits.len(), 5, "{hits:?}");
    assert!(hits.iter().all(|(rule, _)| *rule == "no_panic"));
    // unwrap, expect, panic!, unreachable!, todo!
    let lines: Vec<usize> = hits.iter().map(|(_, l)| *l).collect();
    assert_eq!(lines, vec![4, 5, 7, 15, 16]);
}

#[test]
fn no_panic_ignores_the_same_file_off_hot_path() {
    let src = include_str!("fixtures/panic_violation.rs");
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn no_index_fires_only_on_index_expressions() {
    let src = include_str!("fixtures/index_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    // `self.slots[i]` and `(arr)[0]`; the attribute, slice pattern,
    // array type and array literal stay silent.
    assert_eq!(
        hits,
        vec![("no_index", 13), ("no_index", 19)],
        "full: {hits:?}"
    );
}

#[test]
fn counter_arith_fires_on_counter_fields_only() {
    let src = include_str!("fixtures/counter_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    assert_eq!(hits, vec![("counter_arith", 11)]);
}

#[test]
fn no_relaxed_fires_on_fixture() {
    let src = include_str!("fixtures/relaxed_violation.rs");
    let hits = active_rules("src/conc.rs", src);
    assert_eq!(hits, vec![("no_relaxed", 6)]);
    // The same file outside the configured list is silent.
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn ordering_protocol_fires_on_fixture() {
    let src = include_str!("fixtures/ordering_violation.rs");
    let mut hits = active_rules("src/protocol.rs", src);
    hits.sort_by_key(|&(_, line)| line);
    // 12: `head` has no contract; 14: malformed contract on `mark` AND
    // the resulting missing contract; 16: `lonely` declares load=Acquire
    // with no releasing write in the file; 24: the demotion mirror
    // (store=SeqCst contract, Release store — the static twin of the
    // loom_weakening.rs runtime refutation); 33: rmw access with no rmw
    // entry in the contract; 41: computed (non-literal) ordering.
    assert_eq!(
        hits,
        vec![
            ("ordering_protocol", 12),
            ("ordering_protocol", 14),
            ("ordering_protocol", 14),
            ("ordering_protocol", 16),
            ("ordering_protocol", 24),
            ("ordering_protocol", 33),
            ("ordering_protocol", 41),
        ],
        "full: {hits:?}"
    );
    // The same file off the protocol list is silent — except the now
    // load-free waiver, which the unused_waiver rule correctly calls out.
    let off = active_rules("src/other.rs", src);
    assert_eq!(off, vec![("unused_waiver", 45)], "full: {off:?}");
}

#[test]
fn ordering_protocol_waiver_is_load_bearing() {
    let src = include_str!("fixtures/ordering_violation.rs");
    let all = lint_source("src/protocol.rs", src, &fixture_config());
    // The single-writer Relaxed read on line 46 is found but waived —
    // same shape as the shipped spsc.rs cursor reads.
    assert!(
        all.iter()
            .any(|v| v.rule == "ordering_protocol" && v.waived && v.line == 46),
        "all: {all:?}"
    );
}

#[test]
fn ordering_protocol_messages_name_the_contract() {
    let src = include_str!("fixtures/ordering_violation.rs");
    let msgs: Vec<String> = lint_source("src/protocol.rs", src, &fixture_config())
        .into_iter()
        .filter(|v| v.is_active() && v.rule == "ordering_protocol")
        .map(|v| v.message)
        .collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("weaker than the declared `store=SeqCst` contract")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("no `// ordering:` contract")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("malformed") && m.contains("not a valid load ordering")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("no Release-or-stronger write")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("declares no rmw ordering")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("without a literal `Ordering::` argument")),
        "{msgs:?}"
    );
}

#[test]
fn ordering_protocol_two_ordering_methods_judge_both() {
    // compare_exchange's success ordering is judged as an RMW, the
    // failure ordering as a load — demoting either below the contract
    // fires, and satisfying both stays clean.
    let contract = "// ordering: load=Acquire, rmw=AcqRel -- handshake\n";
    let decl = format!("pub struct S {{\n    {contract}    state: AtomicU64,\n}}\n");
    let ok = format!(
        "{decl}impl S {{\n    pub fn claim(&self) {{\n        let _ = self.state.compare_exchange(\n            0, 1, Ordering::AcqRel, Ordering::Acquire);\n    }}\n}}\n"
    );
    assert!(active_rules("src/protocol.rs", &ok).is_empty());
    let weak_failure = ok.replace(
        "Ordering::AcqRel, Ordering::Acquire",
        "Ordering::AcqRel, Ordering::Relaxed",
    );
    assert_eq!(
        active_rules("src/protocol.rs", &weak_failure).len(),
        1,
        "demoted failure load must fire"
    );
    let weak_success = ok.replace(
        "Ordering::AcqRel, Ordering::Acquire",
        "Ordering::Release, Ordering::Acquire",
    );
    assert_eq!(
        active_rules("src/protocol.rs", &weak_success).len(),
        1,
        "demoted success rmw must fire"
    );
}

#[test]
fn failpoint_gate_fires_outside_allowlist() {
    let src = include_str!("fixtures/failpoint_violation.rs");
    let hits = active_rules("src/other.rs", src);
    assert_eq!(hits, vec![("failpoint_gate", 5), ("failpoint_gate", 9)]);
    assert!(active_rules("src/failpoint.rs", src).is_empty());
}

#[test]
fn atomic_io_fires_on_bare_write_calls() {
    let src = include_str!("fixtures/atomic_io_violation.rs");
    let hits = active_rules("src/ckpt.rs", src);
    assert_eq!(
        hits,
        vec![("atomic_io", 8), ("atomic_io", 13), ("atomic_io", 17)]
    );
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn obs_call_site_statement_semantics() {
    let src = include_str!("fixtures/obs_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    let obs: Vec<usize> = hits
        .iter()
        .filter(|(rule, _)| *rule == "obs_hot_path")
        .map(|(_, l)| *l)
        .collect();
    // The multi-line lock+inc statement and the SeqCst+set statement
    // fire; the shared-line pair and the while-header case are clean.
    assert_eq!(obs, vec![13, 18], "full: {hits:?}");
}

#[test]
fn obs_metrics_file_must_stay_wait_free() {
    let src = include_str!("fixtures/obs_metrics_violation.rs");
    let hits = active_rules("src/metrics.rs", src);
    let obs: Vec<usize> = hits
        .iter()
        .filter(|(rule, _)| *rule == "obs_hot_path")
        .map(|(_, l)| *l)
        .collect();
    // `Mutex` (use), `Mutex` (field type), `Ordering::SeqCst`.
    assert_eq!(obs, vec![5, 9, 14], "full: {hits:?}");
}

#[test]
fn obs_trace_file_must_stay_wait_free() {
    let src = include_str!("fixtures/obs_trace_violation.rs");
    let hits = active_rules("src/trace.rs", src);
    let obs: Vec<usize> = hits
        .iter()
        .filter(|(rule, _)| *rule == "obs_hot_path")
        .map(|(_, l)| *l)
        .collect();
    // `Mutex` (use), `Mutex` (field type), `.lock()`, `Ordering::Acquire`.
    assert_eq!(obs, vec![6, 10, 15, 18], "full: {hits:?}");
    // The same file outside the trace list is silent.
    assert!(active_rules("src/other.rs", src)
        .iter()
        .all(|(rule, _)| *rule != "obs_hot_path"));
}

#[test]
fn unsafe_allowlist_fires_off_list() {
    let src = include_str!("fixtures/unsafe_violation.rs");
    let hits = active_rules("src/other.rs", src);
    assert_eq!(hits, vec![("unsafe_allowlist", 7)]);
    // On the allowlist (and SAFETY-covered) it is clean.
    assert!(active_rules("src/allowed_unsafe.rs", src).is_empty());
}

#[test]
fn simd_gate_fires_off_list() {
    let src = include_str!("fixtures/simd_violation.rs");
    let hits = active_rules("src/other.rs", src);
    // The file-level `allow(unsafe_code)` and the `core::arch` path;
    // comments, the decoy `#[allow(dead_code)]` and the module merely
    // *named* arch stay silent.
    assert_eq!(
        hits,
        vec![("simd_gate", 4), ("simd_gate", 6)],
        "full: {hits:?}"
    );
    // Inside the simd module both patterns are the point.
    assert!(active_rules("src/simd.rs", src).is_empty());
}

#[test]
fn simd_gate_allows_unsafe_override_in_unsafe_allowlist_files() {
    let src = include_str!("fixtures/simd_violation.rs");
    // The SPSC-style file may carry `allow(unsafe_code)` (it is on the
    // unsafe allowlist) but still must not name arch intrinsics.
    let hits = active_rules("src/allowed_unsafe.rs", src);
    assert_eq!(hits, vec![("simd_gate", 6)], "full: {hits:?}");
}

#[test]
fn simd_gate_is_not_waivable() {
    // simd_gate is not in WAIVABLE_RULES: a waiver naming it is itself
    // an active violation, so the build still fails — the [simd] modules
    // list is the only escape hatch.
    let src = "use core::arch::x86_64::_mm_set1_epi64x; // lint:allow(simd_gate): nope\n";
    let hits = lint_source("src/other.rs", src, &fixture_config());
    assert!(
        hits.iter().any(|v| v.rule == "unused_waiver"
            && v.is_active()
            && v.message.contains("unknown rule `simd_gate`")),
        "{hits:?}"
    );
}

#[test]
fn safety_comment_required_even_on_allowlisted_files() {
    let src = include_str!("fixtures/safety_violation.rs");
    let hits = active_rules("src/allowed_unsafe.rs", src);
    assert_eq!(hits, vec![("safety_comment", 5)]);
}

#[test]
fn unused_and_unknown_waivers_are_violations() {
    let src = include_str!("fixtures/unused_waiver_violation.rs");
    let hits = lint_source("src/hot.rs", src, &fixture_config());
    let msgs: Vec<&str> = hits
        .iter()
        .filter(|v| v.rule == "unused_waiver")
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("suppresses nothing")));
    assert!(msgs.iter().any(|m| m.contains("unknown rule `no_panics`")));
}

#[test]
fn waiver_semantics_fixture() {
    let src = include_str!("fixtures/waivers.rs");
    let all = lint_source("src/hot.rs", src, &fixture_config());
    let waived: Vec<usize> = all.iter().filter(|v| v.waived).map(|v| v.line).collect();
    let active: Vec<(usize, &'static str)> = all
        .iter()
        .filter(|v| v.is_active())
        .map(|v| (v.line, v.rule))
        .collect();
    // Same-line, line-above, mid-chain and index-ok waivers suppress.
    assert_eq!(waived, vec![10, 15, 21, 34], "all: {all:?}");
    // String-embedded and doc-comment "waivers" do not.
    assert_eq!(
        active,
        vec![(25, "no_panic"), (30, "no_panic")],
        "all: {all:?}"
    );
}

#[test]
fn violation_positions_and_snippets() {
    let src = "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n";
    let mut config = fixture_config();
    config.hot_path = vec!["src/hot.rs".to_string()];
    let hits = lint_source("src/hot.rs", src, &config);
    assert_eq!(hits.len(), 1);
    let v = &hits[0];
    assert_eq!((v.line, v.rule), (2, "no_panic"));
    assert_eq!(v.snippet, "v.unwrap()");
    assert!(
        v.col > 1,
        "column should point at the method, got {}",
        v.col
    );
    let shown = format!("{v}");
    assert!(shown.starts_with("src/hot.rs:2:"), "display was {shown:?}");
}

#[test]
fn syntax_error_becomes_a_violation() {
    let hits = lint_source(
        "src/bad.rs",
        "fn f() { \"unterminated \n",
        &fixture_config(),
    );
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rule, "syntax");
    assert!(hits[0].is_active());
}

#[test]
fn cfg_test_exempts_rule_hits_structurally() {
    let src = "
pub fn live(v: Option<u64>) -> Option<u64> { v }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
";
    assert!(active_rules("src/hot.rs", src).is_empty());
}
