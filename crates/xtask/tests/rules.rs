//! Per-rule tests over the seeded-violation fixtures: each lint.toml
//! rule must fire on its fixture, anchored at the right line, and stay
//! silent on the structures that merely resemble its pattern.

use xtask::{lint_source, Config, Violation};

/// A config that routes the fixture `rel` names onto every rule list.
fn fixture_config() -> Config {
    Config {
        roots: vec!["src".to_string()],
        skip: vec![],
        unsafe_allow: vec!["src/allowed_unsafe.rs".to_string()],
        simd_allow: vec!["src/simd.rs".to_string()],
        hot_path: vec!["src/hot.rs".to_string()],
        counter_fields: vec!["freq".to_string(), "persist".to_string()],
        no_relaxed_files: vec!["src/conc.rs".to_string()],
        failpoint_allow: vec!["src/failpoint.rs".to_string()],
        atomic_io_files: vec!["src/ckpt.rs".to_string()],
        obs_metrics_files: vec!["src/metrics.rs".to_string()],
        obs_call_site_files: vec!["src/hot.rs".to_string()],
    }
}

fn active_rules(rel: &str, src: &str) -> Vec<(&'static str, usize)> {
    lint_source(rel, src, &fixture_config())
        .into_iter()
        .filter(Violation::is_active)
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn no_panic_fires_on_fixture() {
    let src = include_str!("fixtures/panic_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    assert_eq!(hits.len(), 5, "{hits:?}");
    assert!(hits.iter().all(|(rule, _)| *rule == "no_panic"));
    // unwrap, expect, panic!, unreachable!, todo!
    let lines: Vec<usize> = hits.iter().map(|(_, l)| *l).collect();
    assert_eq!(lines, vec![4, 5, 7, 15, 16]);
}

#[test]
fn no_panic_ignores_the_same_file_off_hot_path() {
    let src = include_str!("fixtures/panic_violation.rs");
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn no_index_fires_only_on_index_expressions() {
    let src = include_str!("fixtures/index_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    // `self.slots[i]` and `(arr)[0]`; the attribute, slice pattern,
    // array type and array literal stay silent.
    assert_eq!(
        hits,
        vec![("no_index", 13), ("no_index", 19)],
        "full: {hits:?}"
    );
}

#[test]
fn counter_arith_fires_on_counter_fields_only() {
    let src = include_str!("fixtures/counter_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    assert_eq!(hits, vec![("counter_arith", 11)]);
}

#[test]
fn no_relaxed_fires_on_fixture() {
    let src = include_str!("fixtures/relaxed_violation.rs");
    let hits = active_rules("src/conc.rs", src);
    assert_eq!(hits, vec![("no_relaxed", 6)]);
    // The same file outside the configured list is silent.
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn failpoint_gate_fires_outside_allowlist() {
    let src = include_str!("fixtures/failpoint_violation.rs");
    let hits = active_rules("src/other.rs", src);
    assert_eq!(hits, vec![("failpoint_gate", 5), ("failpoint_gate", 9)]);
    assert!(active_rules("src/failpoint.rs", src).is_empty());
}

#[test]
fn atomic_io_fires_on_bare_write_calls() {
    let src = include_str!("fixtures/atomic_io_violation.rs");
    let hits = active_rules("src/ckpt.rs", src);
    assert_eq!(
        hits,
        vec![("atomic_io", 8), ("atomic_io", 13), ("atomic_io", 17)]
    );
    assert!(active_rules("src/other.rs", src).is_empty());
}

#[test]
fn obs_call_site_statement_semantics() {
    let src = include_str!("fixtures/obs_violation.rs");
    let hits = active_rules("src/hot.rs", src);
    let obs: Vec<usize> = hits
        .iter()
        .filter(|(rule, _)| *rule == "obs_hot_path")
        .map(|(_, l)| *l)
        .collect();
    // The multi-line lock+inc statement and the SeqCst+set statement
    // fire; the shared-line pair and the while-header case are clean.
    assert_eq!(obs, vec![13, 18], "full: {hits:?}");
}

#[test]
fn obs_metrics_file_must_stay_wait_free() {
    let src = include_str!("fixtures/obs_metrics_violation.rs");
    let hits = active_rules("src/metrics.rs", src);
    let obs: Vec<usize> = hits
        .iter()
        .filter(|(rule, _)| *rule == "obs_hot_path")
        .map(|(_, l)| *l)
        .collect();
    // `Mutex` (use), `Mutex` (field type), `Ordering::SeqCst`.
    assert_eq!(obs, vec![5, 9, 14], "full: {hits:?}");
}

#[test]
fn unsafe_allowlist_fires_off_list() {
    let src = include_str!("fixtures/unsafe_violation.rs");
    let hits = active_rules("src/other.rs", src);
    assert_eq!(hits, vec![("unsafe_allowlist", 7)]);
    // On the allowlist (and SAFETY-covered) it is clean.
    assert!(active_rules("src/allowed_unsafe.rs", src).is_empty());
}

#[test]
fn simd_gate_fires_off_list() {
    let src = include_str!("fixtures/simd_violation.rs");
    let hits = active_rules("src/other.rs", src);
    // The file-level `allow(unsafe_code)` and the `core::arch` path;
    // comments, the decoy `#[allow(dead_code)]` and the module merely
    // *named* arch stay silent.
    assert_eq!(
        hits,
        vec![("simd_gate", 4), ("simd_gate", 6)],
        "full: {hits:?}"
    );
    // Inside the simd module both patterns are the point.
    assert!(active_rules("src/simd.rs", src).is_empty());
}

#[test]
fn simd_gate_allows_unsafe_override_in_unsafe_allowlist_files() {
    let src = include_str!("fixtures/simd_violation.rs");
    // The SPSC-style file may carry `allow(unsafe_code)` (it is on the
    // unsafe allowlist) but still must not name arch intrinsics.
    let hits = active_rules("src/allowed_unsafe.rs", src);
    assert_eq!(hits, vec![("simd_gate", 6)], "full: {hits:?}");
}

#[test]
fn simd_gate_is_not_waivable() {
    // simd_gate is not in WAIVABLE_RULES: a waiver naming it is itself
    // an active violation, so the build still fails — the [simd] modules
    // list is the only escape hatch.
    let src = "use core::arch::x86_64::_mm_set1_epi64x; // lint:allow(simd_gate): nope\n";
    let hits = lint_source("src/other.rs", src, &fixture_config());
    assert!(
        hits.iter().any(|v| v.rule == "unused_waiver"
            && v.is_active()
            && v.message.contains("unknown rule `simd_gate`")),
        "{hits:?}"
    );
}

#[test]
fn safety_comment_required_even_on_allowlisted_files() {
    let src = include_str!("fixtures/safety_violation.rs");
    let hits = active_rules("src/allowed_unsafe.rs", src);
    assert_eq!(hits, vec![("safety_comment", 5)]);
}

#[test]
fn unused_and_unknown_waivers_are_violations() {
    let src = include_str!("fixtures/unused_waiver_violation.rs");
    let hits = lint_source("src/hot.rs", src, &fixture_config());
    let msgs: Vec<&str> = hits
        .iter()
        .filter(|v| v.rule == "unused_waiver")
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("suppresses nothing")));
    assert!(msgs.iter().any(|m| m.contains("unknown rule `no_panics`")));
}

#[test]
fn waiver_semantics_fixture() {
    let src = include_str!("fixtures/waivers.rs");
    let all = lint_source("src/hot.rs", src, &fixture_config());
    let waived: Vec<usize> = all.iter().filter(|v| v.waived).map(|v| v.line).collect();
    let active: Vec<(usize, &'static str)> = all
        .iter()
        .filter(|v| v.is_active())
        .map(|v| (v.line, v.rule))
        .collect();
    // Same-line, line-above, mid-chain and index-ok waivers suppress.
    assert_eq!(waived, vec![10, 15, 21, 34], "all: {all:?}");
    // String-embedded and doc-comment "waivers" do not.
    assert_eq!(
        active,
        vec![(25, "no_panic"), (30, "no_panic")],
        "all: {all:?}"
    );
}

#[test]
fn violation_positions_and_snippets() {
    let src = "pub fn f(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n";
    let mut config = fixture_config();
    config.hot_path = vec!["src/hot.rs".to_string()];
    let hits = lint_source("src/hot.rs", src, &config);
    assert_eq!(hits.len(), 1);
    let v = &hits[0];
    assert_eq!((v.line, v.rule), (2, "no_panic"));
    assert_eq!(v.snippet, "v.unwrap()");
    assert!(
        v.col > 1,
        "column should point at the method, got {}",
        v.col
    );
    let shown = format!("{v}");
    assert!(shown.starts_with("src/hot.rs:2:"), "display was {shown:?}");
}

#[test]
fn syntax_error_becomes_a_violation() {
    let hits = lint_source(
        "src/bad.rs",
        "fn f() { \"unterminated \n",
        &fixture_config(),
    );
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rule, "syntax");
    assert!(hits[0].is_active());
}

#[test]
fn cfg_test_exempts_rule_hits_structurally() {
    let src = "
pub fn live(v: Option<u64>) -> Option<u64> { v }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
";
    assert!(active_rules("src/hot.rs", src).is_empty());
}
