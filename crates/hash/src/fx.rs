//! A local port of the `FxHash` multiply-xor hasher (as used by rustc and
//! Firefox), plus `HashMap`/`HashSet` aliases built on it.
//!
//! The exact-counting oracle in `ltc-eval` keeps one map entry per distinct
//! stream item — tens of millions of operations per experiment — and the
//! standard library's SipHash dominates that cost. FxHash is the standard
//! remedy for trusted integer keys (see the Rust Performance Book's Hashing
//! chapter); we implement it locally rather than pull in another dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's 64-bit golden-ratio multiplier, FxHash's `K`.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("hello"), hash_one("hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m[&k], k * 2);
        }
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // Regression for the chunked `write`: a trailing byte must matter.
        assert_ne!(hash_one([1u8; 9]), hash_one([1u8, 1, 1, 1, 1, 1, 1, 1, 2]));
    }
}
