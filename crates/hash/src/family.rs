//! Seeded hash families.
//!
//! Sketches need `r` hash functions that behave independently: row `i` of a
//! Count-Min sketch, the `k` probes of a Bloom filter, the bucket hash of an
//! LTC table. A [`HashFamily`] hands out [`SeededHash`] members derived from
//! a master seed, so an experiment seeded with one integer is fully
//! reproducible while different structures in the same experiment still use
//! unrelated hash functions.

use crate::bob::{bob_hash_u64, BobHasher};

/// One member of a hash family: a Bob-Hash instance plus convenience mapping
/// into table indices and ±1 signs (for Count sketch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededHash {
    hasher: BobHasher,
}

impl SeededHash {
    /// Construct directly from a seed.
    #[inline]
    pub const fn new(seed: u32) -> Self {
        Self {
            hasher: BobHasher::new(seed),
        }
    }

    /// The underlying 64-bit hash of `key`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.hasher.hash_u64(key)
    }

    /// Map `key` into `[0, buckets)`.
    #[inline]
    pub fn index(&self, key: u64, buckets: usize) -> usize {
        self.hasher.index(key, buckets)
    }

    /// A ±1 sign for `key`, taken from a high hash bit so it is independent
    /// of the low bits [`Self::index`] consumes via the modulo.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & (1 << 63) == 0 {
            1
        } else {
            -1
        }
    }

    /// The seed of this member.
    #[inline]
    pub const fn seed(&self) -> u32 {
        self.hasher.seed()
    }
}

/// A reproducible family of hash functions derived from one master seed.
///
/// Member `i` is Bob Hash seeded with `mix(master, i)`; the mix itself is a
/// `lookup3` call so that consecutive member indices do not produce related
/// seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFamily {
    master: u64,
}

impl HashFamily {
    /// Create a family from a master seed.
    #[inline]
    pub const fn new(master: u64) -> Self {
        Self { master }
    }

    /// The `i`-th member of the family.
    #[inline]
    pub fn member(&self, i: u32) -> SeededHash {
        // Derive the member seed by hashing the member index under the
        // master seed's low 32 bits folded with its high 32 bits.
        let folded = (self.master as u32) ^ ((self.master >> 32) as u32);
        let seed = bob_hash_u64(u64::from(i), folded) as u32;
        SeededHash::new(seed)
    }

    /// The first `n` members, materialised.
    pub fn members(&self, n: u32) -> Vec<SeededHash> {
        (0..n).map(|i| self.member(i)).collect()
    }

    /// The master seed.
    #[inline]
    pub const fn master(&self) -> u64 {
        self.master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_distinct() {
        let fam = HashFamily::new(0xfeed_beef);
        let seeds: std::collections::HashSet<u32> = (0..64).map(|i| fam.member(i).seed()).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn members_reproducible() {
        let a = HashFamily::new(7).member(3);
        let b = HashFamily::new(7).member(3);
        assert_eq!(a.hash(42), b.hash(42));
    }

    #[test]
    fn different_masters_different_members() {
        let a = HashFamily::new(1).member(0);
        let b = HashFamily::new(2).member(0);
        assert_ne!(a.hash(42), b.hash(42));
    }

    #[test]
    fn signs_are_balanced() {
        let h = HashFamily::new(11).member(0);
        let plus = (0..10_000u64).filter(|&k| h.sign(k) == 1).count();
        assert!(
            (4_500..=5_500).contains(&plus),
            "sign bias: {plus} of 10000 positive"
        );
    }

    #[test]
    fn sign_independent_of_small_index() {
        // Keys mapping to the same index should still get both signs.
        let h = HashFamily::new(13).member(1);
        let mut signs = std::collections::HashSet::new();
        for k in 0..1000u64 {
            if h.index(k, 4) == 0 {
                signs.insert(h.sign(k));
            }
        }
        assert_eq!(signs.len(), 2, "signs correlated with index");
    }
}
