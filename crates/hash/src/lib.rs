//! Hash functions for the `significant-items` workspace.
//!
//! The LTC paper hashes items with *Bob Hash* (Bob Jenkins' `lookup3`), so the
//! centrepiece of this crate is a faithful Rust port of that function
//! ([`bob`]). On top of it we provide:
//!
//! * [`family`] — seeded hash *families*: the sketches in the workspace
//!   (Count-Min, CU, Count sketch, Bloom filters, PIE) each need several
//!   independent hash functions, which we derive from `lookup3` with distinct
//!   seeds.
//! * [`fx`] — a port of the Firefox/rustc `FxHash` multiply-xor hasher, used
//!   for the exact ground-truth oracle's hash maps where SipHash would be a
//!   needless hot-path cost (and HashDoS is not a concern: we hash our own
//!   synthetic streams).
//! * [`fingerprint`] — short fingerprints derived from a full hash, used by
//!   PIE's Space-Time Bloom Filter cells.
//!
//! All hashers here are deterministic across runs and platforms (given the
//! same seed), which the experiment harness relies on for reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bob;
pub mod family;
pub mod fingerprint;
pub mod fx;

pub use bob::{bob_hash_bytes, bob_hash_u64, BobHasher};
pub use family::{HashFamily, SeededHash};
pub use fingerprint::Fingerprint;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
