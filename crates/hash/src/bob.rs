//! Bob Jenkins' `lookup3` hash ("Bob Hash"), the hash function the LTC paper
//! uses for all of its data structures.
//!
//! This is a from-scratch Rust port of the public-domain reference
//! (`lookup3.c`, May 2006). Two entry points are provided:
//!
//! * [`bob_hash_bytes`] — hash an arbitrary byte slice (the `hashlittle`
//!   routine restricted to the byte-at-a-time tail handling, which is
//!   endian-independent and therefore reproducible everywhere);
//! * [`bob_hash_u64`] — hash a 64-bit item id via the word-oriented
//!   `hashword` routine (two 32-bit words), the hot path for every sketch in
//!   this workspace.
//!
//! Both take a 32-bit seed (`initval` in Jenkins' terminology) and return a
//! 64-bit value built from lookup3's `(c, b)` output pair, so callers that
//! only need 32 bits can truncate and callers that need two independent-ish
//! 32-bit values (e.g. double hashing) can split.

/// Golden-ratio constant lookup3 uses to initialise its internal state.
const GOLDEN: u32 = 0x9e37_79b9;

#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// lookup3's `mix()`: reversible mixing of three 32-bit words.
#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// lookup3's `final()`: irreversible avalanche of three 32-bit words.
#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

/// Hash a 64-bit key with lookup3's `hashword` over its two 32-bit halves.
///
/// Returns `(c as u64) << 32 | b as u64`, i.e. lookup3's primary and
/// secondary outputs packed together. This is the hot path used by every
/// bucket/row hash in the workspace.
#[inline]
pub fn bob_hash_u64(key: u64, seed: u32) -> u64 {
    let length = 2u32; // number of 32-bit words
    let mut a = GOLDEN.wrapping_add(length << 2).wrapping_add(seed);
    let mut b = a;
    let mut c = a;

    // length == 2 tail of hashword: no full 3-word blocks, fall through.
    b = b.wrapping_add((key >> 32) as u32);
    a = a.wrapping_add(key as u32);
    final_mix(&mut a, &mut b, &mut c);

    ((c as u64) << 32) | (b as u64)
}

/// Hash an arbitrary byte slice with lookup3 (`hashlittle`, portable tail).
///
/// The reference implementation reads 32-bit words directly when alignment
/// allows; we always take the byte-at-a-time path, which produces the same
/// result as the reference on little-endian machines and — unlike the
/// word-reading path — the *same* result on big-endian machines too.
pub fn bob_hash_bytes(data: &[u8], seed: u32) -> u64 {
    let mut a = GOLDEN.wrapping_add(data.len() as u32).wrapping_add(seed);
    let mut b = a;
    let mut c = a;

    let mut chunks = data.chunks_exact(12);
    for block in &mut chunks {
        a = a.wrapping_add(u32::from_le_bytes([block[0], block[1], block[2], block[3]]));
        b = b.wrapping_add(u32::from_le_bytes([block[4], block[5], block[6], block[7]]));
        c = c.wrapping_add(u32::from_le_bytes([
            block[8], block[9], block[10], block[11],
        ]));
        mix(&mut a, &mut b, &mut c);
    }

    let tail = chunks.remainder();
    if tail.is_empty() {
        // lookup3: "zero length strings require no mixing".
        return ((c as u64) << 32) | (b as u64);
    }
    let mut word = [0u8; 12];
    word[..tail.len()].copy_from_slice(tail);
    a = a.wrapping_add(u32::from_le_bytes([word[0], word[1], word[2], word[3]]));
    b = b.wrapping_add(u32::from_le_bytes([word[4], word[5], word[6], word[7]]));
    c = c.wrapping_add(u32::from_le_bytes([word[8], word[9], word[10], word[11]]));
    final_mix(&mut a, &mut b, &mut c);

    ((c as u64) << 32) | (b as u64)
}

/// A seeded Bob-Hash instance: a `lookup3` function partially applied to a
/// seed. The unit every hash *family* in this workspace is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BobHasher {
    seed: u32,
}

impl BobHasher {
    /// Create a hasher with the given seed (`initval`).
    #[inline]
    pub const fn new(seed: u32) -> Self {
        Self { seed }
    }

    /// The seed this hasher was constructed with.
    #[inline]
    pub const fn seed(&self) -> u32 {
        self.seed
    }

    /// Hash a 64-bit item id.
    #[inline]
    pub fn hash_u64(&self, key: u64) -> u64 {
        bob_hash_u64(key, self.seed)
    }

    /// Hash arbitrary bytes.
    #[inline]
    pub fn hash_bytes(&self, data: &[u8]) -> u64 {
        bob_hash_bytes(data, self.seed)
    }

    /// Hash a 64-bit key into a table index in `[0, buckets)`.
    ///
    /// `buckets` must be non-zero.
    #[inline]
    pub fn index(&self, key: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0, "cannot index into an empty table");
        (self.hash_u64(key) % buckets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(bob_hash_u64(key, 7), bob_hash_u64(key, 7));
        }
    }

    #[test]
    fn seed_changes_output() {
        let k = 123456789u64;
        let h: Vec<u64> = (0..16).map(|s| bob_hash_u64(k, s)).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert_eq!(distinct.len(), 16, "independent seeds must disagree");
    }

    #[test]
    fn keys_spread_across_buckets() {
        let h = BobHasher::new(3);
        let mut counts = [0usize; 16];
        for key in 0..16_000u64 {
            counts[h.index(key, 16)] += 1;
        }
        // Sequential keys should land near-uniformly: each bucket within
        // 30% of the expected 1000.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "bucket {i} got {c} of 16000 keys — badly skewed"
            );
        }
    }

    #[test]
    fn bytes_and_u64_agree_on_structure_not_value() {
        // Not required to agree (different routines); just pin that the byte
        // variant works on the id's LE encoding deterministically.
        let k = 0x0102_0304_0506_0708u64;
        let a = bob_hash_bytes(&k.to_le_bytes(), 9);
        let b = bob_hash_bytes(&k.to_le_bytes(), 9);
        assert_eq!(a, b);
        assert_ne!(a, bob_hash_bytes(&k.to_le_bytes(), 10));
    }

    #[test]
    fn empty_slice_hashes() {
        // lookup3 returns the initialised state untouched for length 0.
        let h0 = bob_hash_bytes(&[], 0);
        let h1 = bob_hash_bytes(&[], 1);
        assert_ne!(h0, h1);
    }

    #[test]
    fn tail_lengths_all_work() {
        // Exercise every remainder length 0..12 around the 12-byte block size.
        for len in 0..=25 {
            let data: Vec<u8> = (0..len as u8).collect();
            let h = bob_hash_bytes(&data, 1);
            // Flipping any byte must change the hash (with overwhelming
            // probability; these fixed vectors are pinned as a regression).
            for i in 0..data.len() {
                let mut flipped = data.clone();
                flipped[i] ^= 0x80;
                assert_ne!(h, bob_hash_bytes(&flipped, 1), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn avalanche_on_u64_keys() {
        // Flipping a single input bit should flip roughly half of the output
        // bits on average. Loose band: 24..40 of 64.
        let mut total = 0u32;
        let trials = 64 * 16;
        for bit in 0..64 {
            for k in 0..16u64 {
                let key = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let d = bob_hash_u64(key, 5) ^ bob_hash_u64(key ^ (1 << bit), 5);
                total += d.count_ones();
            }
        }
        let avg = f64::from(total) / f64::from(trials);
        assert!(
            (24.0..=40.0).contains(&avg),
            "poor avalanche: avg {avg} bits flipped"
        );
    }
}
