//! Short fingerprints derived from full hashes.
//!
//! PIE's Space-Time Bloom Filter cells carry a small fingerprint of the
//! stored item id so that decoding can reject cells polluted by hash
//! collisions. A [`Fingerprint`] is a configurable-width (1..=32 bit) slice
//! of a Bob hash, guaranteed non-zero so that 0 can mean "empty cell".

use crate::bob::bob_hash_u64;

/// A fingerprint function: maps item ids to non-zero `bits`-wide tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    seed: u32,
    bits: u32,
}

impl Fingerprint {
    /// Create a fingerprint function producing `bits`-wide tags (1..=32).
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 32.
    pub fn new(seed: u32, bits: u32) -> Self {
        assert!(
            (1..=32).contains(&bits),
            "fingerprint width must be 1..=32 bits, got {bits}"
        );
        Self { seed, bits }
    }

    /// Tag width in bits.
    #[inline]
    pub const fn bits(&self) -> u32 {
        self.bits
    }

    /// Compute the tag of `key`. Always non-zero: an all-zero slice is
    /// remapped to 1, costing a negligible bias.
    #[inline]
    pub fn tag(&self, key: u64) -> u32 {
        let mask = if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        let t = (bob_hash_u64(key, self.seed) as u32) & mask;
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// Probability that two distinct keys share a tag (uniform model over the
    /// `2^bits - 1` non-zero tags).
    #[inline]
    pub fn collision_probability(&self) -> f64 {
        1.0 / (((1u64 << self.bits) - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_fit_width_and_nonzero() {
        for bits in [1, 4, 8, 12, 16, 32] {
            let fp = Fingerprint::new(5, bits);
            for key in 0..2_000u64 {
                let t = fp.tag(key);
                assert_ne!(t, 0);
                if bits < 32 {
                    assert!(t < (1 << bits), "tag {t} exceeds {bits} bits");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fingerprint width")]
    fn zero_width_rejected() {
        let _ = Fingerprint::new(0, 0);
    }

    #[test]
    fn wide_tags_rarely_collide() {
        let fp = Fingerprint::new(9, 16);
        let tags: std::collections::HashSet<u32> = (0..1_000u64).map(|k| fp.tag(k)).collect();
        // Birthday bound: ~1000 draws from 65535 values → expect ≥ 990 distinct.
        assert!(tags.len() >= 985, "too many collisions: {}", tags.len());
    }
}
