//! Interfaces every stream algorithm in the workspace implements, so a
//! single experiment harness can drive LTC and all baselines identically.

use crate::estimate::Estimate;
use crate::item::ItemId;

/// A one-pass stream algorithm driven record-by-record.
///
/// The harness feeds records in order and calls [`end_period`] at every
/// period boundary (after the last record of the period, before the first of
/// the next). Algorithms that track persistency use the boundary signal;
/// frequency-only algorithms may ignore it.
///
/// [`end_period`]: StreamProcessor::end_period
pub trait StreamProcessor {
    /// Process one record of the stream.
    fn insert(&mut self, id: ItemId);

    /// The current period has ended; the next record belongs to a new period.
    fn end_period(&mut self) {}

    /// The stream is over (after the final `end_period`); perform any final
    /// bookkeeping before queries. LTC harvests the last period's CLOCK
    /// flags here; most algorithms need nothing.
    fn finish(&mut self) {}

    /// Short display name for experiment tables (e.g. `"LTC"`, `"SS"`).
    fn name(&self) -> &'static str;
}

/// A [`StreamProcessor`] with a batched ingestion hot path.
///
/// Semantically `insert_batch(ids)` is *exactly* `for id in ids { insert(id) }`
/// — same final state, same statistics — but implementations may reorganise
/// the work (hash the whole batch up front, prefetch, amortise bookkeeping
/// across records) as long as the result stays bit-identical to the scalar
/// loop. The default implementation is that scalar loop, so every processor
/// gets the batched entry point for free.
pub trait BatchStreamProcessor: StreamProcessor {
    /// Process a run of records, equivalent to inserting them one by one.
    fn insert_batch(&mut self, ids: &[ItemId]) {
        for &id in ids {
            self.insert(id);
        }
    }
}

/// Point and top-k queries over the algorithm's notion of value — the
/// significance under the weights it was configured with (which degenerates
/// to frequency or persistency for α:β = 1:0 / 0:1).
pub trait SignificanceQuery {
    /// Estimated value of `id`, or `None` if the structure no longer tracks
    /// it ("this item did not appear", §III-B2).
    fn estimate(&self, id: ItemId) -> Option<f64>;

    /// The `k` items with the largest estimated value, descending.
    fn top_k(&self, k: usize) -> Vec<Estimate>;
}

/// Actual memory footprint under the workspace cost model, for reporting and
/// for asserting budget compliance in tests.
pub trait MemoryUsage {
    /// Bytes consumed under the cost model of [`crate::memory`].
    fn memory_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::top_k_of;

    /// A trivial exact processor, to pin down trait ergonomics (object
    /// safety, default method) — also used as a doc-level example.
    struct Exact {
        counts: std::collections::BTreeMap<ItemId, u64>,
    }

    impl StreamProcessor for Exact {
        fn insert(&mut self, id: ItemId) {
            *self.counts.entry(id).or_insert(0) += 1;
        }
        fn name(&self) -> &'static str {
            "Exact"
        }
    }

    impl SignificanceQuery for Exact {
        fn estimate(&self, id: ItemId) -> Option<f64> {
            self.counts.get(&id).map(|&c| c as f64)
        }
        fn top_k(&self, k: usize) -> Vec<Estimate> {
            top_k_of(
                self.counts
                    .iter()
                    .map(|(&id, &c)| Estimate::new(id, c as f64))
                    .collect(),
                k,
            )
        }
    }

    #[test]
    fn traits_are_object_safe() {
        let mut boxed: Box<dyn StreamProcessor> = Box::new(Exact {
            counts: Default::default(),
        });
        boxed.insert(1);
        boxed.insert(1);
        boxed.insert(2);
        boxed.end_period(); // default no-op
        assert_eq!(boxed.name(), "Exact");
    }

    #[test]
    fn exact_reference_behaviour() {
        let mut e = Exact {
            counts: Default::default(),
        };
        for id in [5u64, 5, 5, 9, 9, 1] {
            e.insert(id);
        }
        assert_eq!(e.estimate(5), Some(3.0));
        assert_eq!(e.estimate(42), None);
        let top = e.top_k(2);
        assert_eq!(top[0].id, 5);
        assert_eq!(top[1].id, 9);
    }
}
