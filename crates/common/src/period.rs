//! Period partitioning.
//!
//! The significant-items problem divides a stream into `T` equal periods
//! (paper §I, Definition of Significant Items). Two equally valid readings of
//! "equal" appear in the paper and we support both:
//!
//! * **count-driven** — every period contains the same number `n` of records
//!   (how the experiment datasets are pre-split, and how LTC's CLOCK step
//!   `m/n` is described in §III-B);
//! * **time-driven** — every period spans the same wall-clock length `t`
//!   (the "easily extended when the period is defined by time" variant with
//!   step `(x−y)/t·m`).

use crate::item::Timestamp;
use serde::{Deserialize, Serialize};

/// How a stream is cut into periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeriodPartition {
    /// Each period contains exactly this many records.
    ByCount {
        /// Records per period (`n` in the paper). Must be ≥ 1.
        records_per_period: u64,
    },
    /// Each period spans exactly this many timestamp units.
    ByTime {
        /// Timestamp units per period (`t` in the paper). Must be ≥ 1.
        units_per_period: u64,
    },
}

impl PeriodPartition {
    /// Count-driven partition. Panics if `records_per_period == 0`.
    pub fn by_count(records_per_period: u64) -> Self {
        assert!(records_per_period > 0, "a period must contain records");
        Self::ByCount { records_per_period }
    }

    /// Time-driven partition. Panics if `units_per_period == 0`.
    pub fn by_time(units_per_period: u64) -> Self {
        assert!(units_per_period > 0, "a period must span time");
        Self::ByTime { units_per_period }
    }

    /// The period index of a record, given its position and timestamp.
    #[inline]
    pub fn period_of(&self, record_index: u64, time: Timestamp) -> u64 {
        match *self {
            Self::ByCount { records_per_period } => record_index / records_per_period,
            Self::ByTime { units_per_period } => time / units_per_period,
        }
    }
}

/// A concrete layout: partition plus total span, answering "how many periods
/// does this stream have" — needed by ground truth and by PIE (one filter per
/// period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodLayout {
    partition: PeriodPartition,
    total_periods: u64,
}

impl PeriodLayout {
    /// Layout with exactly `total_periods` periods of `records_per_period`
    /// records each.
    pub fn count_driven(records_per_period: u64, total_periods: u64) -> Self {
        assert!(total_periods > 0, "need at least one period");
        Self {
            partition: PeriodPartition::by_count(records_per_period),
            total_periods,
        }
    }

    /// Layout covering `total_periods` periods of `units_per_period` time
    /// units each.
    pub fn time_driven(units_per_period: u64, total_periods: u64) -> Self {
        assert!(total_periods > 0, "need at least one period");
        Self {
            partition: PeriodPartition::by_time(units_per_period),
            total_periods,
        }
    }

    /// Derive a count-driven layout for a stream of `total_records` records
    /// split into `total_periods` equal periods (the paper's dataset setup).
    /// `total_records` must be divisible into non-empty periods.
    pub fn split_evenly(total_records: u64, total_periods: u64) -> Self {
        assert!(total_periods > 0, "need at least one period");
        let per = (total_records / total_periods).max(1);
        Self::count_driven(per, total_periods)
    }

    /// The partition rule.
    #[inline]
    pub const fn partition(&self) -> PeriodPartition {
        self.partition
    }

    /// Total number of periods `T`.
    #[inline]
    pub const fn total_periods(&self) -> u64 {
        self.total_periods
    }

    /// Period index of a record (clamped to the final period, so stragglers
    /// from integer division stay in-range).
    #[inline]
    pub fn period_of(&self, record_index: u64, time: Timestamp) -> u64 {
        self.partition
            .period_of(record_index, time)
            .min(self.total_periods - 1)
    }

    /// Records per period, if count-driven.
    #[inline]
    pub fn records_per_period(&self) -> Option<u64> {
        match self.partition {
            PeriodPartition::ByCount { records_per_period } => Some(records_per_period),
            PeriodPartition::ByTime { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_partition_assigns_periods() {
        let p = PeriodPartition::by_count(10);
        assert_eq!(p.period_of(0, 999), 0);
        assert_eq!(p.period_of(9, 0), 0);
        assert_eq!(p.period_of(10, 0), 1);
        assert_eq!(p.period_of(25, 0), 2);
    }

    #[test]
    fn time_partition_assigns_periods() {
        let p = PeriodPartition::by_time(100);
        assert_eq!(p.period_of(0, 0), 0);
        assert_eq!(p.period_of(12345, 99), 0);
        assert_eq!(p.period_of(0, 100), 1);
        assert_eq!(p.period_of(0, 1050), 10);
    }

    #[test]
    fn layout_clamps_to_last_period() {
        let l = PeriodLayout::count_driven(10, 3);
        assert_eq!(l.period_of(29, 0), 2);
        assert_eq!(l.period_of(35, 0), 2, "straggler clamped");
    }

    #[test]
    fn split_evenly_matches_paper_datasets() {
        // "10M items ... divide it into 1000 periods"
        let l = PeriodLayout::split_evenly(10_000_000, 1000);
        assert_eq!(l.records_per_period(), Some(10_000));
        assert_eq!(l.total_periods(), 1000);
    }

    #[test]
    #[should_panic(expected = "a period must contain records")]
    fn zero_count_rejected() {
        let _ = PeriodPartition::by_count(0);
    }

    #[test]
    #[should_panic(expected = "need at least one period")]
    fn zero_periods_rejected() {
        let _ = PeriodLayout::count_driven(5, 0);
    }
}
