//! The significance function `s = α·f + β·p` (paper Eq. 1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// User-chosen weights for frequency (`alpha`) and persistency (`beta`).
///
/// * `Weights::FREQUENT`   (α=1, β=0) — degenerate to top-k frequent items;
/// * `Weights::PERSISTENT` (α=0, β=1) — degenerate to top-k persistent items;
/// * anything else — the paper's new significant-items problem. The
///   experiments use 1:10, 1:1 and 10:1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Frequency coefficient α ≥ 0.
    pub alpha: f64,
    /// Persistency coefficient β ≥ 0.
    pub beta: f64,
}

impl Weights {
    /// α=1, β=0: pure frequency.
    pub const FREQUENT: Self = Self {
        alpha: 1.0,
        beta: 0.0,
    };

    /// α=0, β=1: pure persistency.
    pub const PERSISTENT: Self = Self {
        alpha: 0.0,
        beta: 1.0,
    };

    /// α=1, β=1: the balanced significant-items setting.
    pub const BALANCED: Self = Self {
        alpha: 1.0,
        beta: 1.0,
    };

    /// Construct weights. Both must be finite, non-negative, and not both
    /// zero (a significance that is identically zero ranks nothing).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && beta.is_finite() && alpha >= 0.0 && beta >= 0.0,
            "weights must be finite and non-negative, got α={alpha} β={beta}"
        );
        assert!(
            alpha > 0.0 || beta > 0.0,
            "at least one of α, β must be positive"
        );
        Self { alpha, beta }
    }

    /// The significance of an item with frequency `f` and persistency `p`.
    #[inline]
    pub fn significance(&self, frequency: u64, persistency: u64) -> f64 {
        self.alpha * frequency as f64 + self.beta * persistency as f64
    }

    /// True when only frequency matters (β = 0).
    #[inline]
    pub fn frequency_only(&self) -> bool {
        self.beta == 0.0
    }

    /// True when only persistency matters (α = 0).
    #[inline]
    pub fn persistency_only(&self) -> bool {
        self.alpha == 0.0
    }
}

impl Default for Weights {
    fn default() -> Self {
        Self::BALANCED
    }
}

impl fmt::Display for Weights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.alpha, self.beta)
    }
}

/// Parse the paper's `α:β` notation, e.g. `"1:10"`, `"1:0"`, `"0:1"`.
impl FromStr for Weights {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, b) = s
            .split_once(':')
            .ok_or_else(|| format!("expected `alpha:beta`, got {s:?}"))?;
        let alpha: f64 = a
            .trim()
            .parse()
            .map_err(|e| format!("bad alpha {a:?}: {e}"))?;
        let beta: f64 = b
            .trim()
            .parse()
            .map_err(|e| format!("bad beta {b:?}: {e}"))?;
        if !(alpha.is_finite() && beta.is_finite() && alpha >= 0.0 && beta >= 0.0) {
            return Err(format!("weights must be finite and non-negative: {s:?}"));
        }
        if alpha == 0.0 && beta == 0.0 {
            return Err("at least one of alpha, beta must be positive".into());
        }
        Ok(Self { alpha, beta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_is_linear() {
        let w = Weights::new(2.0, 3.0);
        assert_eq!(w.significance(0, 0), 0.0);
        assert_eq!(w.significance(5, 0), 10.0);
        assert_eq!(w.significance(0, 7), 21.0);
        assert_eq!(w.significance(5, 7), 31.0);
    }

    #[test]
    fn degenerate_detection() {
        assert!(Weights::FREQUENT.frequency_only());
        assert!(!Weights::FREQUENT.persistency_only());
        assert!(Weights::PERSISTENT.persistency_only());
        assert!(!Weights::BALANCED.frequency_only());
    }

    #[test]
    fn parses_paper_ratios() {
        for (s, a, b) in [
            ("1:0", 1.0, 0.0),
            ("0:1", 0.0, 1.0),
            ("1:1", 1.0, 1.0),
            ("1:10", 1.0, 10.0),
            ("10:1", 10.0, 1.0),
        ] {
            let w: Weights = s.parse().expect(s);
            assert_eq!((w.alpha, w.beta), (a, b), "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Weights>().is_err());
        assert!("1".parse::<Weights>().is_err());
        assert!("0:0".parse::<Weights>().is_err());
        assert!("-1:1".parse::<Weights>().is_err());
        assert!("nan:1".parse::<Weights>().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn both_zero_rejected() {
        let _ = Weights::new(0.0, 0.0);
    }

    #[test]
    fn display_roundtrips() {
        let w = Weights::new(1.0, 10.0);
        let back: Weights = w.to_string().parse().unwrap();
        assert_eq!(w, back);
    }
}
