//! The byte-cost model used for head-to-head memory budgets.
//!
//! The paper compares every algorithm at the *same* memory size (§V-C). That
//! only means something if every structure translates bytes → entries with
//! one consistent model. We follow the paper's field widths:
//!
//! * item id: 8 bytes (the paper's flow keys are 4–13 bytes; we standardise
//!   on 64-bit ids and charge everyone equally);
//! * a frequency counter: 4 bytes;
//! * an LTC persistency field: 4 bytes — a 30-bit counter plus the 2 CLOCK
//!   flag bits ("we just use two flags (two bits) for every cell", §V-G);
//! * a sketch counter: 4 bytes;
//! * a Bloom-filter bit: 1 bit.

use serde::{Deserialize, Serialize};

/// Bytes in one LTC cell: id (8) + frequency (4) + persistency-with-flags (4).
pub const LTC_CELL_BYTES: usize = 16;

/// Bytes per counter-algorithm entry (Space-Saving, Lossy Counting,
/// Misra-Gries): id (8) + count (4) + auxiliary field (4) — Space-Saving's
/// overestimation bound, Lossy Counting's Δ, Misra-Gries' padding. All three
/// are charged identically, as in the paper's setup.
pub const COUNTER_ENTRY_BYTES: usize = 16;

/// Bytes per sketch counter cell (Count-Min / CU / Count sketch).
pub const SKETCH_COUNTER_BYTES: usize = 4;

/// Bytes per min-heap entry used to track top-k alongside a sketch:
/// id (8) + value (4) + heap index bookkeeping (4).
pub const HEAP_ENTRY_BYTES: usize = 16;

/// A memory budget in bytes, with the KB convenience the paper's x-axes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// A budget of `bytes` bytes.
    #[inline]
    pub const fn bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// A budget of `kb` kilobytes (the paper's KB are 1024-byte KiB).
    #[inline]
    pub const fn kilobytes(kb: usize) -> Self {
        Self { bytes: kb * 1024 }
    }

    /// Total bytes available.
    #[inline]
    pub const fn as_bytes(&self) -> usize {
        self.bytes
    }

    /// How many entries of `entry_bytes` fit. Never returns 0: every
    /// algorithm needs at least one entry to be runnable at all.
    #[inline]
    pub const fn entries(&self, entry_bytes: usize) -> usize {
        let n = self.bytes / entry_bytes;
        if n == 0 {
            1
        } else {
            n
        }
    }

    /// Split the budget into `parts` equal sub-budgets (used by the
    /// two-structure significant-items baseline and the sketch+BF persistent
    /// adaptation, which halve memory).
    pub fn split(&self, parts: usize) -> Vec<MemoryBudget> {
        assert!(parts > 0, "cannot split into zero parts");
        vec![MemoryBudget::bytes(self.bytes / parts); parts]
    }

    /// Scale the budget by an integer factor (the paper gives PIE `T×` the
    /// default memory).
    #[inline]
    pub const fn scaled(&self, factor: usize) -> Self {
        Self {
            bytes: self.bytes * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_is_1024() {
        assert_eq!(MemoryBudget::kilobytes(10).as_bytes(), 10_240);
    }

    #[test]
    fn entries_floor_division() {
        let b = MemoryBudget::bytes(100);
        assert_eq!(b.entries(16), 6);
        assert_eq!(b.entries(4), 25);
    }

    #[test]
    fn entries_never_zero() {
        assert_eq!(MemoryBudget::bytes(1).entries(16), 1);
    }

    #[test]
    fn split_evenly() {
        let parts = MemoryBudget::kilobytes(100).split(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].as_bytes(), 51_200);
    }

    #[test]
    fn scaled_multiplies() {
        assert_eq!(
            MemoryBudget::kilobytes(50).scaled(200).as_bytes(),
            50 * 1024 * 200
        );
    }

    #[test]
    fn paper_cell_math() {
        // 10 KB of LTC cells with d=8 → w = 640/8 = 80 buckets.
        let cells = MemoryBudget::kilobytes(10).entries(LTC_CELL_BYTES);
        assert_eq!(cells, 640);
    }
}
