//! Item ids and stream records.
//!
//! The paper's items are flow/user/IP identifiers; all algorithms only ever
//! hash them, so a fixed-width integer id loses nothing. The facade crate
//! offers a hashing adapter for arbitrary `Hash` keys; everything below the
//! facade works on [`ItemId`] for speed (no allocation, 8-byte copies).

use serde::{Deserialize, Serialize};

/// A stream item identifier (e.g. a source IP, user name hash, flow 5-tuple
/// hash). 64 bits end-to-end.
pub type ItemId = u64;

/// A logical timestamp. For count-driven workloads this is simply the record
/// index; for time-driven workloads it is a scaled wall-clock value (e.g.
/// milliseconds). Units only matter relative to the period length.
pub type Timestamp = u64;

/// One record of a data stream: an item occurrence at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Which item appeared.
    pub id: ItemId,
    /// When it appeared.
    pub time: Timestamp,
}

impl StreamRecord {
    /// Construct a record.
    #[inline]
    pub const fn new(id: ItemId, time: Timestamp) -> Self {
        Self { id, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_small() {
        // Hot-path type: keep it two words (guide: shrink oft-instantiated
        // types; 16 B stays well under the 128 B memcpy threshold).
        assert_eq!(std::mem::size_of::<StreamRecord>(), 16);
    }
}
