//! Shared vocabulary for the `significant-items` workspace.
//!
//! Everything the LTC core, the baselines, the workload generators and the
//! evaluation harness need to agree on lives here:
//!
//! * [`item`] — item ids and timestamped stream records;
//! * [`period`] — how a stream is cut into the `T` equal periods of the
//!   paper's problem definition, in count-driven or time-driven form;
//! * [`significance`] — the significance function `s = α·f + β·p` and its
//!   user-facing weight type;
//! * [`traits`] — the interfaces every algorithm implements so that one
//!   experiment harness can drive LTC and all baselines identically;
//! * [`estimate`] — reported `(item, value)` pairs and top-k selection
//!   helpers;
//! * [`memory`] — the byte-cost model used for head-to-head memory budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod item;
pub mod memory;
pub mod period;
pub mod significance;
pub mod traits;

pub use estimate::{top_k_of, Estimate};
pub use item::{ItemId, StreamRecord, Timestamp};
pub use memory::MemoryBudget;
pub use period::{PeriodLayout, PeriodPartition};
pub use significance::Weights;
pub use traits::{BatchStreamProcessor, MemoryUsage, SignificanceQuery, StreamProcessor};
