//! Reported estimates and top-k selection.

use crate::item::ItemId;
use serde::{Deserialize, Serialize};

/// One reported `(item, estimated value)` pair. The value is a significance
/// (α·f̂ + β·p̂), a frequency, or a persistency, depending on the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The reported item.
    pub id: ItemId,
    /// Its estimated value.
    pub value: f64,
}

impl Estimate {
    /// Construct an estimate.
    #[inline]
    pub const fn new(id: ItemId, value: f64) -> Self {
        Self { id, value }
    }
}

/// Select the `k` largest estimates, ties broken by smaller id (so results
/// are deterministic), sorted descending by value.
///
/// Runs in `O(n log n)`; the inputs here are table scans of at most a few
/// hundred thousand cells, queried once per experiment, so a partial-select
/// optimisation would buy nothing measurable.
pub fn top_k_of(mut candidates: Vec<Estimate>, k: usize) -> Vec<Estimate> {
    candidates.sort_unstable_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .expect("estimate values must not be NaN")
            .then_with(|| a.id.cmp(&b.id))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: ItemId, v: f64) -> Estimate {
        Estimate::new(id, v)
    }

    #[test]
    fn selects_largest_k() {
        let got = top_k_of(vec![e(1, 5.0), e(2, 9.0), e(3, 1.0), e(4, 7.0)], 2);
        assert_eq!(got, vec![e(2, 9.0), e(4, 7.0)]);
    }

    #[test]
    fn ties_break_by_id() {
        let got = top_k_of(vec![e(9, 5.0), e(3, 5.0), e(7, 5.0)], 2);
        assert_eq!(got, vec![e(3, 5.0), e(7, 5.0)]);
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let got = top_k_of(vec![e(1, 1.0), e(2, 2.0)], 10);
        assert_eq!(got, vec![e(2, 2.0), e(1, 1.0)]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_of(vec![e(1, 1.0)], 0).is_empty());
    }
}
