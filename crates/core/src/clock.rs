//! The CLOCK pointer (paper §III-B1, Figure 3).
//!
//! Every cell of the lossy table is a "time slot"; a pointer sweeps the table
//! so that **each period scans every cell exactly once**. With `m` cells and
//! `n` records per period the pointer must advance `m/n` slots per record —
//! a fraction in general. The paper phrases this as a step size; we realise
//! it with an integer Bresenham accumulator, which guarantees *exactly* `m`
//! scans per `n` records with no floating-point drift:
//!
//! ```text
//! acc += m        (per record; or += Δtime·m in time-driven mode)
//! while acc >= n: scan(pos); pos = (pos+1) mod m; acc -= n
//! ```
//!
//! A property test in the core crate pins the exactly-once-per-period
//! invariant.

/// The sweep pointer over `m` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPointer {
    /// Next cell index to scan.
    pos: usize,
    /// Total cells `m`.
    total: usize,
    /// Bresenham accumulator (numerator units).
    acc: u64,
    /// Cells scanned since the last period reset.
    scanned_this_period: u64,
}

impl ClockPointer {
    /// A pointer over `total` cells, parked at slot 0.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a CLOCK needs at least one slot");
        Self {
            pos: 0,
            total,
            acc: 0,
            scanned_this_period: 0,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Next slot the pointer will scan.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Cells scanned since the period began.
    #[inline]
    pub fn scanned_this_period(&self) -> u64 {
        self.scanned_this_period
    }

    /// Advance by `numerator/denominator` of a full sweep, scanning each slot
    /// passed. Count-driven callers use `numerator = m`, `denominator = n`
    /// once per record; time-driven callers use `numerator = Δt·m`,
    /// `denominator = t`.
    #[inline]
    pub fn tick(&mut self, numerator: u64, denominator: u64, mut scan: impl FnMut(usize)) {
        debug_assert!(denominator > 0);
        self.acc += numerator;
        while self.acc >= denominator {
            self.acc -= denominator;
            // Cap at one full sweep per period: once every cell has been
            // scanned, further progress within the period is a no-op (can
            // only happen on over-long periods in time-driven mode).
            if self.scanned_this_period < self.total as u64 {
                scan(self.pos);
                self.pos = (self.pos + 1) % self.total;
                self.scanned_this_period += 1;
            } else {
                self.acc = 0;
                break;
            }
        }
    }

    /// Complete the current sweep: scan every not-yet-visited cell of this
    /// period so the pointer returns to its period-start position, then reset
    /// for the next period. Called by `end_period`; guarantees the
    /// exactly-once-per-period invariant even when a period holds fewer
    /// records than expected.
    pub fn finish_period(&mut self, mut scan: impl FnMut(usize)) {
        while self.scanned_this_period < self.total as u64 {
            scan(self.pos);
            self.pos = (self.pos + 1) % self.total;
            self.scanned_this_period += 1;
        }
        self.acc = 0;
        self.scanned_this_period = 0;
    }

    /// Scan every cell once *without* touching period state — used for the
    /// final harvest after the stream ends.
    pub fn full_sweep(&self, mut scan: impl FnMut(usize)) {
        for i in 0..self.total {
            scan((self.pos + i) % self.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `records` ticks of `m/n` and return the scan counts per slot.
    fn drive(total: usize, n: u64, records: u64) -> Vec<u32> {
        let mut clock = ClockPointer::new(total);
        let mut counts = vec![0u32; total];
        for _ in 0..records {
            clock.tick(total as u64, n, |i| counts[i] += 1);
        }
        clock.finish_period(|i| counts[i] += 1);
        counts
    }

    #[test]
    fn exactly_once_per_period_m_less_than_n() {
        // 8 cells, 100 records per period.
        let counts = drive(8, 100, 100);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn exactly_once_per_period_m_greater_than_n() {
        // 64 cells, only 10 records per period → 6.4 scans per record.
        let counts = drive(64, 10, 10);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn exactly_once_even_with_short_period() {
        // Period ends after 3 of its 10 records; finish_period covers the rest.
        let counts = drive(16, 10, 3);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn pointer_returns_to_start_each_period() {
        let mut clock = ClockPointer::new(12);
        for _period in 0..5 {
            for _ in 0..30 {
                clock.tick(12, 30, |_| {});
            }
            clock.finish_period(|_| {});
            assert_eq!(clock.position(), 0, "wrapped to the start");
        }
    }

    #[test]
    fn consecutive_periods_independent() {
        let mut clock = ClockPointer::new(8);
        let mut counts = vec![0u32; 8];
        for _period in 0..3 {
            for _ in 0..20 {
                clock.tick(8, 20, |i| counts[i] += 1);
            }
            clock.finish_period(|i| counts[i] += 1);
        }
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn time_driven_tick_scans_proportionally() {
        // m=10 slots, period t=1000 units; advancing 500 units scans 5 slots.
        let mut clock = ClockPointer::new(10);
        let mut scanned = 0;
        clock.tick(500 * 10, 1000, |_| scanned += 1);
        assert_eq!(scanned, 5);
        // The rest of the period covers the remaining 5.
        clock.tick(500 * 10, 1000, |_| scanned += 1);
        assert_eq!(scanned, 10);
    }

    #[test]
    fn overshoot_capped_at_one_sweep() {
        // Advancing 3 periods' worth of time in one tick must still scan each
        // cell at most once before the period is closed.
        let mut clock = ClockPointer::new(6);
        let mut counts = vec![0u32; 6];
        clock.tick(3_000 * 6, 1_000, |i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn full_sweep_touches_everything_once() {
        let clock = ClockPointer::new(9);
        let mut counts = [0u32; 9];
        clock.full_sweep(|i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = ClockPointer::new(0);
    }
}
