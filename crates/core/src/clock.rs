//! The CLOCK pointer (paper §III-B1, Figure 3).
//!
//! Every cell of the lossy table is a "time slot"; a pointer sweeps the table
//! so that **each period scans every cell exactly once**. With `m` cells and
//! `n` records per period the pointer must advance `m/n` slots per record —
//! a fraction in general. The paper phrases this as a step size; we realise
//! it with an integer Bresenham accumulator, which guarantees *exactly* `m`
//! scans per `n` records with no floating-point drift:
//!
//! ```text
//! acc += m        (per record; or += Δtime·m in time-driven mode)
//! while acc >= n: scan(pos); pos = (pos+1) mod m; acc -= n
//! ```
//!
//! A property test in the core crate pins the exactly-once-per-period
//! invariant.

/// The sweep pointer over `m` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPointer {
    /// Next cell index to scan.
    pos: usize,
    /// Total cells `m`.
    total: usize,
    /// Bresenham accumulator (numerator units).
    acc: u64,
    /// Cells scanned since the last period reset.
    scanned_this_period: u64,
}

impl ClockPointer {
    /// A pointer over `total` cells, parked at slot 0.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a CLOCK needs at least one slot");
        Self {
            pos: 0,
            total,
            acc: 0,
            scanned_this_period: 0,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Next slot the pointer will scan.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Cells scanned since the period began.
    #[inline]
    pub fn scanned_this_period(&self) -> u64 {
        self.scanned_this_period
    }

    /// Advance by `numerator/denominator` of a full sweep, scanning each slot
    /// passed. Count-driven callers use `numerator = m`, `denominator = n`
    /// once per record; time-driven callers use `numerator = Δt·m`,
    /// `denominator = t`.
    ///
    /// The accumulator saturates instead of wrapping, so a pathological
    /// timestamp jump (`Δt·m` near `u64::MAX`) degrades to "finish the
    /// sweep" rather than corrupting the pointer. A zero `denominator`
    /// (a period of zero records or zero time units) has no meaningful
    /// step size and panics in all build profiles.
    #[inline]
    pub fn tick(&mut self, numerator: u64, denominator: u64, mut scan: impl FnMut(usize)) {
        self.tick_ranges(numerator, denominator, |start, len| {
            for i in start..start.saturating_add(len) {
                scan(i);
            }
        });
    }

    /// [`tick`](ClockPointer::tick), but the scan callback receives whole
    /// contiguous slot runs `(start, len)` instead of single slots — at most
    /// two per call (the sweep wraps at most once, because a period's scans
    /// are capped at one sweep). The SoA table points this at a flag-lane
    /// harvest loop; emitting runs keeps that loop contiguous and
    /// vectorizable instead of re-entering per slot.
    #[inline]
    pub fn tick_ranges(
        &mut self,
        numerator: u64,
        denominator: u64,
        mut scan: impl FnMut(usize, usize),
    ) {
        assert!(
            denominator > 0,
            "CLOCK tick denominator (records or time units per period) must be positive"
        );
        self.acc = self.acc.saturating_add(numerator);
        let due = self.acc.checked_div(denominator).unwrap_or(0);
        if due == 0 {
            return;
        }
        // Cap at one full sweep per period: once every cell has been
        // scanned, further progress within the period is a no-op (can
        // only happen on over-long periods in time-driven mode).
        let remaining = (self.total as u64).saturating_sub(self.scanned_this_period);
        let steps = if due > remaining {
            self.acc = 0;
            remaining
        } else {
            // `due * denominator <= acc`, so neither op can saturate.
            self.acc = self.acc.saturating_sub(due.saturating_mul(denominator));
            due
        };
        self.emit_runs(steps, &mut scan);
        self.scanned_this_period = self.scanned_this_period.saturating_add(steps);
    }

    /// Advance the pointer by `steps` slots, reporting the ground covered as
    /// contiguous `(start, len)` runs. `steps` never exceeds `total` (the
    /// once-per-period cap), so at most two runs are emitted.
    fn emit_runs(&mut self, steps: u64, scan: &mut impl FnMut(usize, usize)) {
        let mut left = steps;
        while left > 0 {
            let to_end = self.total.saturating_sub(self.pos) as u64;
            let run = to_end.min(left) as usize;
            scan(self.pos, run);
            self.pos = self.pos.saturating_add(run);
            if self.pos >= self.total {
                self.pos = 0;
            }
            left = left.saturating_sub(run as u64);
        }
    }

    /// How many consecutive [`tick`](ClockPointer::tick)s of
    /// `numerator/denominator` are guaranteed to scan nothing from the
    /// current accumulator state. Batched callers process that many records
    /// in a tight loop (no per-record pointer bookkeeping), advance the
    /// accumulator once with [`advance_scan_free`], and only then pay for a
    /// real tick.
    ///
    /// [`advance_scan_free`]: ClockPointer::advance_scan_free
    #[inline]
    pub fn ticks_before_scan(&self, numerator: u64, denominator: u64) -> u64 {
        assert!(
            denominator > 0,
            "CLOCK tick denominator (records or time units per period) must be positive"
        );
        if numerator == 0 {
            return u64::MAX;
        }
        if self.acc >= denominator {
            return 0;
        }
        // `numerator > 0` (checked above); 0 on the unreachable division
        // failure is the conservative answer — "no tick is scan-free".
        denominator
            .saturating_sub(1)
            .saturating_sub(self.acc)
            .checked_div(numerator)
            .unwrap_or(0)
    }

    /// Advance the accumulator by `count` ticks of `numerator` known (via
    /// [`ticks_before_scan`](ClockPointer::ticks_before_scan)) to scan
    /// nothing. Equivalent to `count` calls of `tick(numerator, denominator,
    /// …)`, each of which would have scanned zero cells.
    #[inline]
    pub fn advance_scan_free(&mut self, count: u64, numerator: u64, denominator: u64) {
        debug_assert!(
            count <= self.ticks_before_scan(numerator, denominator),
            "advance_scan_free would cross a scan boundary"
        );
        // count·numerator ≤ denominator − 1 − acc, so this stays below the
        // denominator and cannot saturate.
        self.acc = self.acc.saturating_add(count.saturating_mul(numerator));
    }

    /// Complete the current sweep: scan every not-yet-visited cell of this
    /// period so the pointer returns to its period-start position, then reset
    /// for the next period. Called by `end_period`; guarantees the
    /// exactly-once-per-period invariant even when a period holds fewer
    /// records than expected.
    pub fn finish_period(&mut self, mut scan: impl FnMut(usize)) {
        self.finish_period_ranges(|start, len| {
            for i in start..start.saturating_add(len) {
                scan(i);
            }
        });
    }

    /// [`finish_period`](ClockPointer::finish_period) with contiguous
    /// `(start, len)` runs, for lane-based harvesting.
    pub fn finish_period_ranges(&mut self, mut scan: impl FnMut(usize, usize)) {
        let left = (self.total as u64).saturating_sub(self.scanned_this_period);
        self.emit_runs(left, &mut scan);
        self.acc = 0;
        self.scanned_this_period = 0;
    }

    /// Scan every cell once *without* touching period state — used for the
    /// final harvest after the stream ends.
    pub fn full_sweep(&self, mut scan: impl FnMut(usize)) {
        self.full_sweep_ranges(|start, len| {
            for i in start..start.saturating_add(len) {
                scan(i);
            }
        });
    }

    /// [`full_sweep`](ClockPointer::full_sweep) with contiguous
    /// `(start, len)` runs: the wrap-around sweep is at most two runs.
    pub fn full_sweep_ranges(&self, mut scan: impl FnMut(usize, usize)) {
        let first = self.total.saturating_sub(self.pos);
        if first > 0 {
            scan(self.pos, first);
        }
        if self.pos > 0 {
            scan(0, self.pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `records` ticks of `m/n` and return the scan counts per slot.
    fn drive(total: usize, n: u64, records: u64) -> Vec<u32> {
        let mut clock = ClockPointer::new(total);
        let mut counts = vec![0u32; total];
        for _ in 0..records {
            clock.tick(total as u64, n, |i| counts[i] += 1);
        }
        clock.finish_period(|i| counts[i] += 1);
        counts
    }

    #[test]
    fn exactly_once_per_period_m_less_than_n() {
        // 8 cells, 100 records per period.
        let counts = drive(8, 100, 100);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn exactly_once_per_period_m_greater_than_n() {
        // 64 cells, only 10 records per period → 6.4 scans per record.
        let counts = drive(64, 10, 10);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn exactly_once_even_with_short_period() {
        // Period ends after 3 of its 10 records; finish_period covers the rest.
        let counts = drive(16, 10, 3);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn pointer_returns_to_start_each_period() {
        let mut clock = ClockPointer::new(12);
        for _period in 0..5 {
            for _ in 0..30 {
                clock.tick(12, 30, |_| {});
            }
            clock.finish_period(|_| {});
            assert_eq!(clock.position(), 0, "wrapped to the start");
        }
    }

    #[test]
    fn consecutive_periods_independent() {
        let mut clock = ClockPointer::new(8);
        let mut counts = vec![0u32; 8];
        for _period in 0..3 {
            for _ in 0..20 {
                clock.tick(8, 20, |i| counts[i] += 1);
            }
            clock.finish_period(|i| counts[i] += 1);
        }
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn time_driven_tick_scans_proportionally() {
        // m=10 slots, period t=1000 units; advancing 500 units scans 5 slots.
        let mut clock = ClockPointer::new(10);
        let mut scanned = 0;
        clock.tick(500 * 10, 1000, |_| scanned += 1);
        assert_eq!(scanned, 5);
        // The rest of the period covers the remaining 5.
        clock.tick(500 * 10, 1000, |_| scanned += 1);
        assert_eq!(scanned, 10);
    }

    #[test]
    fn overshoot_capped_at_one_sweep() {
        // Advancing 3 periods' worth of time in one tick must still scan each
        // cell at most once before the period is closed.
        let mut clock = ClockPointer::new(6);
        let mut counts = vec![0u32; 6];
        clock.tick(3_000 * 6, 1_000, |i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn full_sweep_touches_everything_once() {
        let clock = ClockPointer::new(9);
        let mut counts = [0u32; 9];
        clock.full_sweep(|i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = ClockPointer::new(0);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected_in_every_profile() {
        // A period of zero records/time units has no step size; the check is
        // a hard assert (not debug_assert), so release builds panic too.
        let mut clock = ClockPointer::new(4);
        clock.tick(4, 0, |_| {});
    }

    #[test]
    fn saturating_accumulator_survives_huge_time_jumps() {
        // A corrupted or far-future timestamp produces Δt·m near u64::MAX.
        // The accumulator must saturate (not wrap) and the sweep must still
        // be capped at once per cell.
        let mut clock = ClockPointer::new(8);
        let mut counts = vec![0u32; 8];
        clock.tick(u64::MAX, 1_000, |i| counts[i] += 1);
        clock.tick(u64::MAX, 1_000, |i| counts[i] += 1);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
        // The pointer is parked where the cap left it; closing the period
        // resets cleanly and the next period scans exactly once again.
        clock.finish_period(|i| counts[i] += 1);
        let mut second = vec![0u32; 8];
        for _ in 0..16 {
            clock.tick(8, 16, |i| second[i] += 1);
        }
        clock.finish_period(|i| second[i] += 1);
        assert!(second.iter().all(|&c| c == 1), "{second:?}");
    }

    #[test]
    fn zero_record_period_closed_by_finish() {
        // A period can elapse with no records at all; finish_period alone
        // must still deliver the exactly-once sweep.
        let counts = drive(16, 10, 0);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn range_ticks_cover_the_same_slots_as_unit_ticks() {
        // The (start, len) runs must concatenate to exactly the slot
        // sequence the per-slot callback sees, for wrapping and
        // non-wrapping sweeps alike.
        for &(total, denom) in &[(8usize, 3u64), (5, 17), (16, 16), (7, 1)] {
            let mut by_slot = ClockPointer::new(total);
            let mut by_range = ClockPointer::new(total);
            for step in [1u64, 2, 5, 0, 40, 3, 100, 7] {
                let mut slots = Vec::new();
                let mut ranged = Vec::new();
                by_slot.tick(step, denom, |i| slots.push(i));
                by_range.tick_ranges(step, denom, |start, len| {
                    ranged.extend(start..start + len);
                });
                assert_eq!(slots, ranged, "total={total} denom={denom} step={step}");
                assert_eq!(by_slot, by_range, "pointer state diverged");
            }
            let mut slots = Vec::new();
            let mut ranged = Vec::new();
            by_slot.finish_period(|i| slots.push(i));
            by_range.finish_period_ranges(|start, len| ranged.extend(start..start + len));
            assert_eq!(slots, ranged);
            assert_eq!(by_slot, by_range);
        }
    }

    #[test]
    fn full_sweep_ranges_emit_at_most_two_runs() {
        let mut clock = ClockPointer::new(10);
        clock.tick(10 * 3, 10, |_| {}); // park the pointer mid-table
        assert_eq!(clock.position(), 3);
        let mut runs = Vec::new();
        clock.full_sweep_ranges(|start, len| runs.push((start, len)));
        assert_eq!(runs, vec![(3, 7), (0, 3)]);
        let covered: Vec<usize> = runs.iter().flat_map(|&(s, l)| s..s + l).collect();
        let mut sorted = covered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "each slot once");
    }

    #[test]
    fn division_stepping_matches_unit_stepping() {
        // The batched (division-based) tick must leave identical state to
        // the one-unit-at-a-time Bresenham reference for any tick split.
        fn reference_tick(
            acc: &mut u64,
            pos: &mut usize,
            scanned: &mut u64,
            total: usize,
            numerator: u64,
            denominator: u64,
            scans: &mut Vec<usize>,
        ) {
            *acc += numerator;
            while *acc >= denominator {
                *acc -= denominator;
                if *scanned < total as u64 {
                    scans.push(*pos);
                    *pos = (*pos + 1) % total;
                    *scanned += 1;
                } else {
                    *acc = 0;
                    break;
                }
            }
        }

        for &(total, denom) in &[(8usize, 3u64), (5, 17), (16, 16), (7, 1)] {
            let mut clock = ClockPointer::new(total);
            let (mut acc, mut pos, mut scanned) = (0u64, 0usize, 0u64);
            let mut got = Vec::new();
            let mut want = Vec::new();
            // A mix of small and large numerators, including period overshoot.
            for step in [1u64, 2, 5, 0, 40, 3, 100, 7] {
                clock.tick(step, denom, |i| got.push(i));
                reference_tick(
                    &mut acc,
                    &mut pos,
                    &mut scanned,
                    total,
                    step,
                    denom,
                    &mut want,
                );
                assert_eq!(got, want, "total={total} denom={denom}");
                assert_eq!(clock.position(), pos);
                assert_eq!(clock.scanned_this_period(), scanned);
            }
        }
    }
}
